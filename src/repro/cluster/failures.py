"""Failure injection: time limits and node failures.

The paper attributes SuperCloud's long-running failures to "node failures
or exceeding allocated time limits" (Sec. IV-C).  This module gives the
simulator both mechanisms:

* **time limits** — jobs whose planned runtime exceeds the partition's
  limit are cut off at the limit and terminate FAILED (the Slurm
  ``TIMEOUT`` behaviour);
* **node failures** — each node fails following a Poisson process with a
  given MTBF and is repaired after a fixed delay; a job running on a
  failing node at the failure epoch is truncated there and FAILED.

Node failures are applied to finished placements rather than woven into
the scheduling event loop: the truncation slightly over-reserves capacity
(the scheduler held the job's GPUs to its planned end), an intentional,
documented approximation that keeps queueing behaviour deterministic for
a given workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .job import JobRequest, JobStatus
from .scheduler import Placement

__all__ = ["FailureModel", "apply_time_limit", "inject_node_failures"]


@dataclass(frozen=True, slots=True)
class FailureModel:
    """Failure-injection parameters (all disabled by default)."""

    time_limit_s: float | None = None
    node_mtbf_s: float | None = None
    node_repair_s: float = 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ValueError("time_limit_s must be > 0")
        if self.node_mtbf_s is not None and self.node_mtbf_s <= 0:
            raise ValueError("node_mtbf_s must be > 0")
        if self.node_repair_s < 0:
            raise ValueError("node_repair_s must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.time_limit_s is not None or self.node_mtbf_s is not None


def apply_time_limit(jobs: list[JobRequest], time_limit_s: float) -> int:
    """Clamp runtimes to the partition limit; over-limit jobs FAIL.

    Mutates the requests in place (they are about to be scheduled with
    the clamped runtime) and returns how many were clamped.
    """
    if time_limit_s <= 0:
        raise ValueError("time_limit_s must be > 0")
    clamped = 0
    for job in jobs:
        if job.runtime > time_limit_s:
            job.runtime = time_limit_s
            job.status = JobStatus.FAILED
            job.extras["failure_cause"] = "time_limit"
            clamped += 1
    return clamped


def _failure_epochs(
    rng: np.random.Generator, horizon: float, mtbf_s: float, repair_s: float
) -> list[float]:
    """Failure times of one node over [0, horizon] (Poisson + repair)."""
    epochs: list[float] = []
    t = float(rng.exponential(mtbf_s))
    while t < horizon:
        epochs.append(t)
        t += repair_s + float(rng.exponential(mtbf_s))
    return epochs


def inject_node_failures(
    placements: list[Placement],
    model: FailureModel,
) -> int:
    """Kill jobs caught by node-failure epochs; returns how many died.

    A failure on a job's primary node strictly inside its (start, end)
    window truncates it at the epoch and marks it FAILED.  For gang jobs
    only the primary node's failures are modelled — any worker loss kills
    the gang, so this is a lower bound the caller can raise by shortening
    the MTBF.
    """
    if model.node_mtbf_s is None:
        return 0
    if not placements:
        return 0
    horizon = max(p.end_time for p in placements)
    rng = np.random.default_rng(model.seed)
    epochs_by_node: dict[str, list[float]] = {}
    killed = 0
    for placement in placements:
        node = placement.node_name
        if node not in epochs_by_node:
            epochs_by_node[node] = _failure_epochs(
                rng, horizon, model.node_mtbf_s, model.node_repair_s
            )
        hit = next(
            (
                t
                for t in epochs_by_node[node]
                if placement.start_time < t < placement.end_time
            ),
            None,
        )
        if hit is None:
            continue
        placement.end_time = hit
        placement.request.status = JobStatus.FAILED
        placement.request.extras["failure_cause"] = "node_failure"
        killed += 1
    return killed
