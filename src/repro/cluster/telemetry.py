"""GPU telemetry synthesis: behaviour profiles → sampled monitoring metrics.

SuperCloud records SM utilisation, GPU memory(-bandwidth) utilisation,
memory used and power at 100 ms granularity; Philly samples at 1 minute
(Sec. II).  The telemetry model generates a per-job utilisation time
series from the job's :class:`BehaviorProfile` and reduces it to the
summary features the traces expose (mean / variance / min / max), plus a
power series derived from SM activity.

Series are generated with numpy vectorised draws; the number of samples
per job is capped so an 8-month trace stays tractable while the summary
statistics remain faithful (sampling a stationary process more densely
does not change its moments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .job import BehaviorProfile

__all__ = ["TelemetryConfig", "TelemetrySummary", "GPUTelemetryModel"]


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """Sampling parameters of the monitoring system."""

    sample_interval_s: float = 60.0
    max_samples_per_job: int = 256
    min_samples_per_job: int = 4

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be > 0")
        if self.min_samples_per_job < 1:
            raise ValueError("min_samples_per_job must be >= 1")
        if self.max_samples_per_job < self.min_samples_per_job:
            raise ValueError("max_samples_per_job must be >= min_samples_per_job")

    def n_samples(self, runtime_s: float) -> int:
        """Number of telemetry samples recorded for a job of this length."""
        raw = int(runtime_s / self.sample_interval_s) + 1
        return int(np.clip(raw, self.min_samples_per_job, self.max_samples_per_job))


@dataclass(frozen=True, slots=True)
class TelemetrySummary:
    """Per-job reduction of the telemetry series (trace feature set)."""

    sm_util_mean: float
    sm_util_var: float
    sm_util_min: float
    sm_util_max: float
    gmem_util_mean: float
    gmem_util_var: float
    gmem_used_gb: float
    gpu_power_mean: float
    cpu_util_mean: float

    def as_dict(self) -> dict[str, float]:
        return {
            "sm_util": self.sm_util_mean,
            "sm_util_var": self.sm_util_var,
            "sm_util_min": self.sm_util_min,
            "sm_util_max": self.sm_util_max,
            "gmem_util": self.gmem_util_mean,
            "gmem_util_var": self.gmem_util_var,
            "gmem_used_gb": self.gmem_used_gb,
            "gpu_power": self.gpu_power_mean,
            "cpu_util": self.cpu_util_mean,
        }


class GPUTelemetryModel:
    """Generates and summarises telemetry series for jobs."""

    def __init__(self, config: TelemetryConfig = TelemetryConfig(), seed: int = 0):
        self.config = config
        self.rng = np.random.default_rng(seed)

    def series(self, profile: BehaviorProfile, runtime_s: float) -> dict[str, np.ndarray]:
        """Generate the raw sampled series for one job.

        SM utilisation: a truncated-normal base around ``sm_util_mean``;
        ``burstiness`` b replaces a (1-b) fraction of samples with idle
        readings while scaling the active ones up, keeping the mean —
        modelling occasional-inference jobs whose *average* is near zero
        but whose max is not.
        """
        n = self.config.n_samples(runtime_s)
        p = profile
        if p.sm_util_mean <= 0.0:
            sm = np.zeros(n)
        else:
            sm = self.rng.normal(p.sm_util_mean, p.sm_util_jitter, size=n)
            if p.burstiness > 0.0:
                active = self.rng.random(n) < max(1.0 - p.burstiness, 1e-3)
                scale = 1.0 / max(active.mean(), 1e-3)
                sm = np.where(active, sm * scale, 0.0)
        np.clip(sm, 0.0, 100.0, out=sm)

        # memory-bandwidth utilisation loosely tracks SM activity
        if p.gmem_util_mean <= 0.0:
            gmem = np.zeros(n)
        else:
            gmem = self.rng.normal(p.gmem_util_mean, max(p.sm_util_jitter / 2, 1.0), n)
        np.clip(gmem, 0.0, 100.0, out=gmem)

        # power: idle floor plus SM-proportional dynamic power
        power = p.idle_power_watts + (p.peak_power_watts - p.idle_power_watts) * (
            sm / 100.0
        )
        power += self.rng.normal(0.0, 3.0, size=n)
        np.clip(power, 0.0, None, out=power)

        cpu = self.rng.normal(p.cpu_util_mean, 5.0, size=n)
        np.clip(cpu, 0.0, 100.0, out=cpu)
        return {"sm_util": sm, "gmem_util": gmem, "gpu_power": power, "cpu_util": cpu}

    def summarize(self, profile: BehaviorProfile, runtime_s: float) -> TelemetrySummary:
        """Generate a series and reduce it to the trace feature set."""
        s = self.series(profile, runtime_s)
        sm = s["sm_util"]
        gmem = s["gmem_util"]
        # nvidia-smi reports integer percentages; job-level aggregation in
        # the traces buckets a near-zero average as "0%", so the mean/min/
        # max are rounded to whole percent (variance keeps full precision)
        return TelemetrySummary(
            sm_util_mean=float(np.round(sm.mean())),
            sm_util_var=float(sm.var()),
            sm_util_min=float(np.round(sm.min())),
            sm_util_max=float(np.round(sm.max())),
            gmem_util_mean=float(gmem.mean()),
            gmem_util_var=float(gmem.var()),
            gmem_used_gb=float(max(profile.gmem_used_gb, 0.0)),
            gpu_power_mean=float(s["gpu_power"].mean()),
            cpu_util_mean=float(s["cpu_util"].mean()),
        )
