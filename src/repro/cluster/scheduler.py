"""Discrete-event GPU-cluster scheduler (FCFS with optional backfill).

The scheduler produces the *queueing* side of the traces: submit → start
delays per job, under heterogeneous GPU pools.  It is deliberately simple
— the paper analyses production logs, not scheduling policy — but honest:
capacity is finitely accounted per node, distributed jobs gang-allocate
GPUs across nodes, and queue delay emerges from contention rather than
being sampled from a distribution.

Policy: jobs are queued FCFS; on every arrival or completion the queue is
scanned in order and each job that fits is started (with
``strict_fcfs=True`` the scan stops at the first job that does not fit,
i.e. no backfilling past the queue head).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from .job import JobRequest
from .nodes import Node

__all__ = ["Placement", "FCFSScheduler", "SchedulerStats"]


@dataclass(slots=True)
class Placement:
    """Where and when one job ran."""

    request: JobRequest
    start_time: float
    end_time: float
    node_name: str
    gpu_type: str
    #: (node index, n_gpus) pairs actually allocated (gang jobs span nodes)
    allocations: list[tuple[int, int]]


@dataclass(slots=True)
class SchedulerStats:
    """Aggregate behaviour of one scheduling run."""

    n_scheduled: int = 0
    max_queue_length: int = 0
    total_queue_delay: float = 0.0

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_delay / self.n_scheduled if self.n_scheduled else 0.0


class FCFSScheduler:
    """Event-driven scheduler over a fixed node list.

    ``policy`` selects the queue service order:

    * ``"fcfs"`` — arrival order (the default; production DL clusters);
    * ``"sjf"`` — shortest job first by requested runtime.  Exposed for
      the scheduling-policy ablation the paper's PHI1 insight motivates
      ("a job scheduler should consider the potential long execution time
      of multi-GPU jobs, especially for policies like shortest-jobs-first").
    """

    POLICIES = ("fcfs", "sjf")

    def __init__(
        self,
        nodes: list[Node],
        strict_fcfs: bool = False,
        policy: str = "fcfs",
    ):
        if not nodes:
            raise ValueError("scheduler needs at least one node")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; have {self.POLICIES}")
        self.nodes = nodes
        self.strict_fcfs = strict_fcfs
        self.policy = policy
        self._by_type: dict[str, list[Node]] = {}
        self._pos: dict[int, int] = {id(n): i for i, n in enumerate(nodes)}
        for node in nodes:
            self._by_type.setdefault(node.spec.gpu_type, []).append(node)
        # aggregate free-GPU counters for O(1) infeasibility rejection
        self._free_by_type: dict[str, int] = {
            t: sum(n.free_gpus for n in pool) for t, pool in self._by_type.items()
        }
        self._free_total: int = sum(self._free_by_type.values())

    # -- capacity ------------------------------------------------------------
    def _candidate_nodes(self, gpu_type: str | None) -> list[Node]:
        if gpu_type is None:
            return self.nodes
        return self._by_type.get(gpu_type, [])

    def _try_allocate(self, req: JobRequest) -> list[tuple[int, int]] | None:
        """Allocate GPUs (and CPU/mem on the primary node) or return None.

        Single-node placement is preferred; a distributed job gang-
        allocates GPUs greedily across nodes of the requested type.  CPU
        and memory are charged on the primary node only — worker shards of
        a distributed DL job are GPU-bound, and per-node CPU accounting
        for gangs is beyond what the traces record.
        """
        candidates = self._candidate_nodes(req.gpu_type)
        if not candidates:
            return None
        pool_free = (
            self._free_total
            if req.gpu_type is None
            else self._free_by_type.get(req.gpu_type, 0)
        )
        if pool_free < req.n_gpus:
            return None

        def charge(node: Node, n_gpus: int, cpus: int, mem: float) -> None:
            node.allocate(n_gpus, cpus, mem)
            self._free_by_type[node.spec.gpu_type] -= n_gpus
            self._free_total -= n_gpus

        # single-node fast path
        for node in candidates:
            if node.fits(req.n_gpus, req.n_cpus, req.mem_gb):
                charge(node, req.n_gpus, req.n_cpus, req.mem_gb)
                return [(self._pos[id(node)], req.n_gpus)]

        if req.n_gpus <= 1:
            return None

        # gang allocation across nodes of the pool (pool_free check passed)
        primary = next((n for n in candidates if n.free_gpus > 0), None)
        if primary is None or primary.free_cpus < req.n_cpus or primary.free_mem_gb < req.mem_gb:
            return None
        allocations: list[tuple[int, int]] = []
        remaining = req.n_gpus
        for node in candidates:
            if remaining == 0:
                break
            take = min(node.free_gpus, remaining)
            if take <= 0:
                continue
            is_primary = node is primary
            charge(
                node,
                take,
                req.n_cpus if is_primary else 0,
                req.mem_gb if is_primary else 0.0,
            )
            allocations.append((self._pos[id(node)], take))
            remaining -= take
        return allocations

    def _release(self, req: JobRequest, allocations: list[tuple[int, int]]) -> None:
        primary = True
        for node_idx, n_gpus in allocations:
            node = self.nodes[node_idx]
            node.release(
                n_gpus,
                req.n_cpus if primary else 0,
                req.mem_gb if primary else 0.0,
            )
            self._free_by_type[node.spec.gpu_type] += n_gpus
            self._free_total += n_gpus
            primary = False

    # -- event loop --------------------------------------------------------------
    def run(self, requests: list[JobRequest]) -> tuple[list[Placement], SchedulerStats]:
        """Schedule all *requests*; returns placements in job order."""
        stats = SchedulerStats()
        placements: dict[int, Placement] = {}
        counter = itertools.count()
        # event heap: (time, priority, seq, kind, payload); completions
        # (priority 0) before arrivals (priority 1) at equal times so
        # freed capacity is visible to jobs arriving that instant
        heap: list[tuple[float, int, int, str, object]] = []
        for req in sorted(requests, key=lambda r: (r.submit_time, r.job_id)):
            heapq.heappush(heap, (req.submit_time, 1, next(counter), "arrive", req))

        queue: list[JobRequest] = []

        def try_start(now: float) -> None:
            if self.policy == "fcfs":
                # single linear pass in arrival order (backfill unless strict)
                i = 0
                while i < len(queue):
                    req = queue[i]
                    allocations = self._try_allocate(req)
                    if allocations is None:
                        if self.strict_fcfs:
                            break
                        i += 1
                        continue
                    queue.pop(i)
                    _start_job(now, req, allocations)
                return
            # SJF: serve strictly by ascending runtime; one pass over the
            # sorted view suffices because freed capacity only changes at
            # completion events, not at starts
            for i in sorted(range(len(queue)), key=lambda k: queue[k].runtime):
                req = queue[i]
                allocations = self._try_allocate(req)
                if allocations is None:
                    if self.strict_fcfs:
                        break
                    continue
                queue[i] = None  # type: ignore[call-overload]
                _start_job(now, req, allocations)
            queue[:] = [r for r in queue if r is not None]

        def _start_job(now: float, req: JobRequest, allocations) -> None:
            end = now + req.runtime
            primary_node = self.nodes[allocations[0][0]]
            placement = Placement(
                request=req,
                start_time=now,
                end_time=end,
                node_name=primary_node.name,
                gpu_type=primary_node.spec.gpu_type,
                allocations=allocations,
            )
            placements[req.job_id] = placement
            stats.n_scheduled += 1
            stats.total_queue_delay += now - req.submit_time
            heapq.heappush(heap, (end, 0, next(counter), "finish", placement))

        while heap:
            now, _prio, _seq, kind, payload = heapq.heappop(heap)
            if kind == "arrive":
                queue.append(payload)  # type: ignore[arg-type]
                stats.max_queue_length = max(stats.max_queue_length, len(queue))
            else:
                placement = payload  # type: ignore[assignment]
                self._release(placement.request, placement.allocations)
            try_start(now)

        if queue:
            raise RuntimeError(
                f"{len(queue)} jobs could never be scheduled (first: "
                f"{queue[0].job_id}, {queue[0].n_gpus} × {queue[0].gpu_type!r} GPUs)"
            )
        return [placements[r.job_id] for r in requests], stats
