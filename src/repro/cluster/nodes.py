"""Cluster hardware model: nodes, GPU pools, capacity accounting.

Heterogeneity matters to the reproduction: the PAI queueing rules
(Table VIII, PAI1/PAI2) hinge on the T4 : non-T4 capacity ratio (1 : 3.5),
and Philly's "GPU 24GB Mem" item comes from its two node flavours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeSpec", "Node", "ClusterSpec", "build_nodes"]


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Immutable description of one node flavour."""

    name: str
    gpu_type: str
    n_gpus: int
    n_cpus: int
    mem_gb: float
    gpu_mem_gb: float = 16.0

    def __post_init__(self) -> None:
        if self.n_gpus < 0 or self.n_cpus <= 0 or self.mem_gb <= 0:
            raise ValueError(f"invalid capacities in NodeSpec {self.name!r}")


@dataclass(slots=True)
class Node:
    """A node with mutable free-capacity counters."""

    spec: NodeSpec
    index: int
    free_gpus: int = field(init=False)
    free_cpus: int = field(init=False)
    free_mem_gb: float = field(init=False)

    def __post_init__(self) -> None:
        self.free_gpus = self.spec.n_gpus
        self.free_cpus = self.spec.n_cpus
        self.free_mem_gb = self.spec.mem_gb

    @property
    def name(self) -> str:
        return f"{self.spec.name}-{self.index}"

    def fits(self, n_gpus: int, n_cpus: int, mem_gb: float) -> bool:
        return (
            self.free_gpus >= n_gpus
            and self.free_cpus >= n_cpus
            and self.free_mem_gb >= mem_gb
        )

    def allocate(self, n_gpus: int, n_cpus: int, mem_gb: float) -> None:
        if not self.fits(n_gpus, n_cpus, mem_gb):
            raise RuntimeError(f"allocation exceeds free capacity on {self.name}")
        self.free_gpus -= n_gpus
        self.free_cpus -= n_cpus
        self.free_mem_gb -= mem_gb

    def release(self, n_gpus: int, n_cpus: int, mem_gb: float) -> None:
        self.free_gpus += n_gpus
        self.free_cpus += n_cpus
        self.free_mem_gb += mem_gb
        if (
            self.free_gpus > self.spec.n_gpus
            or self.free_cpus > self.spec.n_cpus
            or self.free_mem_gb > self.spec.mem_gb + 1e-9
        ):
            raise RuntimeError(f"release exceeds capacity on {self.name}")


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """A cluster: how many nodes of each flavour."""

    counts: tuple[tuple[NodeSpec, int], ...]

    @classmethod
    def of(cls, *pairs: tuple[NodeSpec, int]) -> "ClusterSpec":
        return cls(tuple(pairs))

    @property
    def total_gpus(self) -> int:
        return sum(spec.n_gpus * n for spec, n in self.counts)

    def gpus_by_type(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for spec, n in self.counts:
            out[spec.gpu_type] = out.get(spec.gpu_type, 0) + spec.n_gpus * n
        return out


def build_nodes(spec: ClusterSpec) -> list[Node]:
    """Materialise the node list of a cluster spec."""
    nodes: list[Node] = []
    for node_spec, count in spec.counts:
        for i in range(count):
            nodes.append(Node(node_spec, index=i))
    return nodes
