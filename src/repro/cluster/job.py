"""Job model for the GPU-cluster simulator substrate.

The paper's traces are the *output* of production clusters plus their
monitoring stacks (Slurm, nvidia-smi, Ganglia).  We cannot replay the
proprietary inputs, so the substrate models the path those logs took:

    workload (JobRequest) → scheduler → execution + telemetry → JobRecord

A :class:`JobRequest` is what the user submits; a :class:`JobRecord` is
the merged scheduler + node-level log line the analysis pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["JobStatus", "BehaviorProfile", "JobRequest", "JobRecord"]


class JobStatus(str, Enum):
    """Terminal state of a job, following the traces' labels (Fig. 5)."""

    COMPLETED = "completed"
    FAILED = "failed"
    KILLED = "killed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class BehaviorProfile:
    """Latent execution behaviour of a job, driving its telemetry.

    These parameters are what a real job's code implies; the telemetry
    model turns them into the sampled metrics the monitoring system would
    record.  ``sm_util_mean`` in [0, 100]; ``burstiness`` in [0, 1] where
    1 means activity concentrated in short spikes (the inference pattern:
    "a job could keep a GPU memory occupied but does not use the compute
    cores", Sec. IV-B).
    """

    sm_util_mean: float = 50.0
    sm_util_jitter: float = 10.0
    burstiness: float = 0.0
    gmem_util_mean: float = 40.0
    gmem_used_gb: float = 8.0
    cpu_util_mean: float = 50.0
    idle_power_watts: float = 55.0
    peak_power_watts: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sm_util_mean <= 100.0:
            raise ValueError("sm_util_mean must be in [0, 100]")
        if not 0.0 <= self.burstiness <= 1.0:
            raise ValueError("burstiness must be in [0, 1]")


@dataclass(slots=True)
class JobRequest:
    """A job submission as the scheduler sees it."""

    job_id: int
    user: str
    submit_time: float
    runtime: float  # planned execution duration, seconds
    n_gpus: int = 1
    n_cpus: int = 1
    mem_gb: float = 16.0
    gpu_type: str | None = None  # None → "any type" (PAI's misc assignment)
    group: str | None = None
    framework: str | None = None
    model: str | None = None
    status: JobStatus = JobStatus.COMPLETED
    profile: BehaviorProfile = field(default_factory=BehaviorProfile)
    #: trace-specific extras carried through to the record (e.g. retries)
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ValueError("runtime must be >= 0")
        if self.n_gpus < 0 or self.n_cpus < 0:
            raise ValueError("resource requests must be >= 0")


@dataclass(slots=True)
class JobRecord:
    """A finished job: request fields + scheduling outcome + telemetry.

    This is the unit the paper calls a *transaction* — "each transaction
    corresponds to a unique job record in the datacenter job trace".
    """

    request: JobRequest
    start_time: float
    end_time: float
    node: str | None
    assigned_gpu_type: str | None
    telemetry: dict[str, float] = field(default_factory=dict)

    @property
    def queue_delay(self) -> float:
        return self.start_time - self.request.submit_time

    @property
    def status(self) -> JobStatus:
        return self.request.status

    def as_row(self) -> dict[str, Any]:
        """Flatten into one trace row (scheduler + node-level merged)."""
        req = self.request
        row: dict[str, Any] = {
            "job_id": req.job_id,
            "user": req.user,
            "group": req.group,
            "submit_time": req.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "queue_delay": self.queue_delay,
            "runtime": self.end_time - self.start_time,
            "n_gpus": req.n_gpus,
            "n_cpus": req.n_cpus,
            "mem_request_gb": req.mem_gb,
            "gpu_type_request": req.gpu_type,
            "gpu_type": self.assigned_gpu_type,
            "framework": req.framework,
            "model": req.model,
            "status": req.status.value,
            "node": self.node,
        }
        row.update(self.telemetry)
        row.update(req.extras)
        return row
