"""Cluster utilisation accounting from placements.

The trace generators calibrate their submission window so the binding GPU
pool runs near a target utilisation (``calibrated_duration``); this
module computes the *achieved* utilisation from the scheduler's
placements, closing the loop: tests assert the calibration lands near its
target, and benches report pool-level busy fractions alongside queue
delays (the capacity story behind the PAI1/PAI2 rules).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .nodes import ClusterSpec
from .scheduler import Placement

__all__ = ["PoolUtilization", "utilization_by_type", "busy_gpu_timeline"]


@dataclass(frozen=True, slots=True)
class PoolUtilization:
    """Achieved utilisation of one GPU pool over an interval."""

    gpu_type: str
    total_gpus: int
    gpu_seconds_used: float
    interval_s: float

    @property
    def utilization(self) -> float:
        denom = self.total_gpus * self.interval_s
        return self.gpu_seconds_used / denom if denom > 0 else 0.0


def _per_placement_gpu_type_seconds(
    placement: Placement, nodes_by_index: dict[int, str]
) -> dict[str, float]:
    duration = max(placement.end_time - placement.start_time, 0.0)
    out: dict[str, float] = {}
    for node_index, n_gpus in placement.allocations:
        gpu_type = nodes_by_index[node_index]
        out[gpu_type] = out.get(gpu_type, 0.0) + n_gpus * duration
    return out


def utilization_by_type(
    placements: list[Placement],
    cluster: ClusterSpec,
    interval_s: float | None = None,
) -> dict[str, PoolUtilization]:
    """Achieved GPU utilisation per pool.

    *interval_s* defaults to the span from the first start to the last
    end across all placements (the busy horizon).
    """
    pools = cluster.gpus_by_type()
    if not placements:
        return {
            t: PoolUtilization(t, n, 0.0, 0.0) for t, n in pools.items()
        }
    if interval_s is None:
        start = min(p.start_time for p in placements)
        end = max(p.end_time for p in placements)
        interval_s = max(end - start, 0.0)

    # node index → gpu type, reconstructed from the cluster spec order
    # (build_nodes materialises flavours in spec order)
    nodes_by_index: dict[int, str] = {}
    idx = 0
    for spec, count in cluster.counts:
        for _ in range(count):
            nodes_by_index[idx] = spec.gpu_type
            idx += 1

    used: dict[str, float] = {t: 0.0 for t in pools}
    for placement in placements:
        for gpu_type, seconds in _per_placement_gpu_type_seconds(
            placement, nodes_by_index
        ).items():
            used[gpu_type] = used.get(gpu_type, 0.0) + seconds
    return {
        t: PoolUtilization(t, pools.get(t, 0), used.get(t, 0.0), interval_s)
        for t in pools
    }


def busy_gpu_timeline(
    placements: list[Placement], resolution_s: float = 3600.0
) -> tuple[np.ndarray, np.ndarray]:
    """Busy-GPU count sampled on a regular grid (cluster-load timeline).

    Returns ``(times, busy)`` arrays; a placement using g GPUs counts g
    on every grid point inside [start, end).  O(placements + grid) via a
    difference array.
    """
    if resolution_s <= 0:
        raise ValueError("resolution_s must be > 0")
    if not placements:
        return np.asarray([0.0]), np.asarray([0.0])
    start = min(p.start_time for p in placements)
    end = max(p.end_time for p in placements)
    n_bins = max(1, int(np.ceil((end - start) / resolution_s)) + 1)
    delta = np.zeros(n_bins + 1, dtype=np.float64)
    for placement in placements:
        gpus = sum(g for _, g in placement.allocations)
        lo = int((placement.start_time - start) / resolution_s)
        hi = int(np.ceil((placement.end_time - start) / resolution_s))
        hi = min(max(hi, lo + 1), n_bins)
        delta[lo] += gpus
        delta[hi] -= gpus
    busy = np.cumsum(delta[:-1])
    times = start + resolution_s * np.arange(n_bins)
    return times, busy
