"""User population model.

Activity across users of a production cluster is heavily skewed — a few
users submit most jobs (the basis of the "frequent user" tier, Sec. III-E)
— so users draw their activity weights from a Zipf-like law.  A fraction
of the population is flagged *new*: users who joined during the trace
window, whose behaviour the SuperCloud/Philly case studies repeatedly
single out (new users → 0 % SM util, kills, failures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UserProfile", "UserPopulation"]


@dataclass(frozen=True, slots=True)
class UserProfile:
    """One user: identity, activity weight, tenure."""

    name: str
    weight: float
    is_new: bool


class UserPopulation:
    """A fixed set of users with a skewed submission-weight distribution."""

    def __init__(
        self,
        n_users: int,
        new_user_fraction: float = 0.15,
        zipf_exponent: float = 1.1,
        seed: int = 0,
        name_prefix: str = "user",
        new_user_weight_damp: float = 0.3,
    ):
        if n_users < 1:
            raise ValueError("n_users must be >= 1")
        if not 0.0 <= new_user_fraction <= 1.0:
            raise ValueError("new_user_fraction must be in [0, 1]")
        if new_user_weight_damp < 0:
            raise ValueError("new_user_weight_damp must be >= 0")
        rng = np.random.default_rng(seed)
        ranks = np.arange(1, n_users + 1, dtype=np.float64)
        weights = ranks ** (-zipf_exponent)
        weights /= weights.sum()
        is_new = rng.random(n_users) < new_user_fraction
        # the heaviest submitters have by definition been around a while —
        # exclude the top decile from being new, then damp the rest
        is_new[: max(1, n_users // 10)] = False
        weights = np.where(is_new, weights * new_user_weight_damp, weights)
        weights /= weights.sum()
        self.users = [
            UserProfile(f"{name_prefix}{i:04d}", float(weights[i]), bool(is_new[i]))
            for i in range(n_users)
        ]
        self._weights = weights
        self._rng = rng

    def __len__(self) -> int:
        return len(self.users)

    def sample_indices(
        self, n: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw *n* user indices (with replacement) proportionally to weight.

        The columnar generators keep these as integer codes into
        ``self.users`` instead of materialising profile objects.
        """
        r = rng if rng is not None else self._rng
        return r.choice(len(self.users), size=n, p=self._weights)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> list[UserProfile]:
        """Draw *n* users (with replacement) proportionally to weight."""
        return [self.users[i] for i in self.sample_indices(n, rng)]

    def new_users(self) -> list[UserProfile]:
        return [u for u in self.users if u.is_new]
