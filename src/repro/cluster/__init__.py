"""GPU-cluster simulator substrate.

Stands in for the production systems whose logs the paper analyses:
heterogeneous nodes, an FCFS(+backfill) scheduler producing queue delays,
and a telemetry model producing the nvidia-smi/Ganglia-style metrics.
"""

from .accounting import PoolUtilization, busy_gpu_timeline, utilization_by_type
from .failures import FailureModel, apply_time_limit, inject_node_failures
from .job import BehaviorProfile, JobRecord, JobRequest, JobStatus
from .nodes import ClusterSpec, Node, NodeSpec, build_nodes
from .scheduler import FCFSScheduler, Placement, SchedulerStats
from .simulator import ClusterSimulator, SimulationResult
from .telemetry import GPUTelemetryModel, TelemetryConfig, TelemetrySummary
from .users import UserPopulation, UserProfile

__all__ = [
    "JobStatus",
    "BehaviorProfile",
    "JobRequest",
    "JobRecord",
    "NodeSpec",
    "Node",
    "ClusterSpec",
    "build_nodes",
    "FCFSScheduler",
    "FailureModel",
    "PoolUtilization",
    "utilization_by_type",
    "busy_gpu_timeline",
    "apply_time_limit",
    "inject_node_failures",
    "Placement",
    "SchedulerStats",
    "ClusterSimulator",
    "SimulationResult",
    "GPUTelemetryModel",
    "TelemetryConfig",
    "TelemetrySummary",
    "UserPopulation",
    "UserProfile",
]
