"""End-to-end cluster simulation: workload → scheduler → telemetry → records.

:class:`ClusterSimulator` is the substrate's facade.  Given a cluster
spec and a workload of :class:`JobRequest` objects, it

1. schedules every job (queue delays, placements, gang allocation);
2. synthesises per-job telemetry from the job's behaviour profile;
3. merges both into :class:`JobRecord` rows — the equivalent of joining
   scheduler logs with node-level monitoring, the step the paper performs
   on real traces (Sec. III-E, "merge all the features into a single file").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..dataframe import ColumnTable
from .failures import FailureModel, apply_time_limit, inject_node_failures
from .job import JobRecord, JobRequest
from .nodes import ClusterSpec, build_nodes
from .scheduler import FCFSScheduler, SchedulerStats
from .telemetry import GPUTelemetryModel, TelemetryConfig

__all__ = ["SimulationResult", "ClusterSimulator"]


@dataclass(slots=True)
class SimulationResult:
    """Records plus scheduling aggregates for one simulated trace."""

    records: list[JobRecord]
    scheduler_stats: SchedulerStats

    def to_table(self) -> ColumnTable:
        """Flatten all job records into a single merged trace table."""
        return ColumnTable.from_records([r.as_row() for r in self.records])

    def replay(self) -> Iterator[JobRecord]:
        """Job records in completion order — the event stream an online
        consumer (e.g. the rule-serving load generator) would see.

        Batch analysis reads the table unordered; a serving pipeline sees
        jobs *as they finish*, so replay sorts by end time (ties broken by
        start time and job id for determinism).
        """
        return iter(
            sorted(
                self.records,
                key=lambda r: (r.end_time, r.start_time, r.request.job_id),
            )
        )


class ClusterSimulator:
    """Drives one full simulation run."""

    def __init__(
        self,
        cluster: ClusterSpec,
        telemetry: TelemetryConfig = TelemetryConfig(),
        seed: int = 0,
        strict_fcfs: bool = False,
        policy: str = "fcfs",
        failures: FailureModel = FailureModel(),
    ):
        self.cluster = cluster
        self.telemetry_config = telemetry
        self.seed = seed
        self.strict_fcfs = strict_fcfs
        self.policy = policy
        self.failures = failures

    def run(self, workload: list[JobRequest]) -> SimulationResult:
        """Simulate *workload* on the cluster and emit merged records."""
        if self.failures.time_limit_s is not None:
            apply_time_limit(workload, self.failures.time_limit_s)

        nodes = build_nodes(self.cluster)
        scheduler = FCFSScheduler(
            nodes, strict_fcfs=self.strict_fcfs, policy=self.policy
        )
        placements, stats = scheduler.run(workload)

        if self.failures.node_mtbf_s is not None:
            inject_node_failures(placements, self.failures)

        telemetry = GPUTelemetryModel(self.telemetry_config, seed=self.seed)
        records: list[JobRecord] = []
        for placement in placements:
            req = placement.request
            # telemetry covers the time the job actually ran (truncations
            # from node failures shorten the sampled window)
            observed = max(placement.end_time - placement.start_time, 0.0)
            summary = telemetry.summarize(req.profile, observed)
            records.append(
                JobRecord(
                    request=req,
                    start_time=placement.start_time,
                    end_time=placement.end_time,
                    node=placement.node_name,
                    assigned_gpu_type=placement.gpu_type,
                    telemetry=summary.as_dict(),
                )
            )
        return SimulationResult(records=records, scheduler_stats=stats)
