"""Partitioned frequent-itemset mining (SON / Savasere-Omiecinski-Navathe).

The paper's related-work section points at distributed rule mining on
Spark clusters as the scaling path for larger traces (Sec. VI).  The SON
algorithm is the canonical two-phase scheme those systems implement:

1. **Local phase** — split the database into partitions; mine each
   partition at the *same relative* support threshold.  Any globally
   frequent itemset must be frequent in at least one partition (a
   pigeonhole argument), so the union of local results is a complete
   candidate set.
2. **Global phase** — count every candidate exactly over the full
   database and keep those meeting the global threshold.

Phase 1 parallelises embarrassingly; phase 2 is a vectorised bitmap count
here.  Results are bit-exact against single-machine FP-Growth, which the
test suite property-checks.

This module provides the two SON phase primitives that
:class:`repro.engine.backends.ProcessBackend` (and its threaded sibling)
execute; the historical :func:`son_mine` entry point is now a deprecated
shim over that backend.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from ..core.bitmap import PackedBitmaps, kernel_timer
from ..core.itemsets import FrequentItemsets
from ..core.mining import ALGORITHMS, MiningConfig
from ..core.transactions import TransactionDatabase

__all__ = ["son_mine", "count_candidates", "local_candidates"]

#: parent database for fork-inherited workers; set by ProcessBackend right
#: before it creates its fork-context pool and cleared right after.  Forked
#: children see the parent's fully built packed bitmaps through
#: copy-on-write pages instead of unpickling (or re-deriving) partitions.
_FORK_DB: TransactionDatabase | None = None


def local_candidates(
    part: TransactionDatabase,
    min_support: float,
    max_len: int | None,
    algorithm: str = "fpgrowth",
) -> set[frozenset[int]]:
    """Phase-1 worker: locally frequent itemsets of one partition."""
    miner = ALGORITHMS[algorithm]
    return set(miner(part, min_support, max_len))


def _forked_local_candidates(
    start: int,
    stop: int,
    min_support: float,
    max_len: int | None,
    algorithm: str,
) -> set[frozenset[int]]:
    """Phase-1 worker for fork-based pools: partition by transaction range.

    Runs in a forked child where :data:`_FORK_DB` is the parent's database
    (inherited, not pickled).  The partition is a zero-copy
    :meth:`~repro.core.transactions.TransactionDatabase.txn_range` view;
    because SON partition bounds are 64-aligned, the view also inherits a
    word-slice of the parent's packed bitmaps, so the child never rebuilds
    a vertical representation.
    """
    if _FORK_DB is None:  # pragma: no cover - guards misuse outside the pool
        raise RuntimeError("_forked_local_candidates called without _FORK_DB")
    part = _FORK_DB.txn_range(start, stop)
    return local_candidates(part, min_support, max_len, algorithm)


def count_candidates(
    db: TransactionDatabase,
    candidates: Iterable[frozenset[int]],
    bitmaps: PackedBitmaps | None = None,
) -> dict[frozenset[int], int]:
    """Exact global support counts of *candidates* via packed bitsets.

    Pass precomputed *bitmaps* (``db.bitmaps()``) to reuse one build
    across several counting passes — the engine does this so phase-2
    counting shares the memoised bitmaps instead of resolving them per
    call.  Counting time lands in the ``bitmap-count`` kernel counter.
    """
    if bitmaps is None:
        bitmaps = db.bitmaps()
    with kernel_timer("bitmap-count"):
        return bitmaps.counts_for(candidates)


def son_mine(
    db: TransactionDatabase,
    min_support: float = 0.05,
    max_len: int | None = 5,
    n_partitions: int = 4,
    n_workers: int = 1,
    algorithm: str = "fpgrowth",
) -> FrequentItemsets:
    """Deprecated shim: SON mining now lives in the engine layer.

    Use ``MiningEngine(backend="process", n_workers=..., n_partitions=...)``
    (or the ``--backend process`` CLI flag) instead.  This wrapper stays
    for one release and delegates to the same
    :class:`~repro.engine.backends.ProcessBackend` implementation, so
    results remain bit-exact with previous versions.
    """
    warnings.warn(
        "son_mine is deprecated; route through repro.engine.MiningEngine"
        " with backend='process' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # imported lazily: the engine layer sits above repro.parallel
    from ..engine.backends import ProcessBackend

    backend = ProcessBackend(n_workers=n_workers, n_partitions=n_partitions)
    config = MiningConfig(
        min_support=min_support, max_len=max_len, algorithm=algorithm
    )
    return backend.mine(db, config)
