"""Partitioned frequent-itemset mining (SON / Savasere-Omiecinski-Navathe).

The paper's related-work section points at distributed rule mining on
Spark clusters as the scaling path for larger traces (Sec. VI).  The SON
algorithm is the canonical two-phase scheme those systems implement:

1. **Local phase** — split the database into partitions; mine each
   partition at the *same relative* support threshold.  Any globally
   frequent itemset must be frequent in at least one partition (a
   pigeonhole argument), so the union of local results is a complete
   candidate set.
2. **Global phase** — count every candidate exactly over the full
   database and keep those meeting the global threshold.

Phase 1 parallelises embarrassingly; phase 2 is a vectorised bitmap count
here.  Results are bit-exact against single-machine FP-Growth, which the
test suite property-checks.

This module provides the two SON phase primitives that
:class:`repro.engine.backends.ProcessBackend` (and its threaded sibling)
execute; the historical :func:`son_mine` entry point is now a deprecated
shim over that backend.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.itemsets import FrequentItemsets
from ..core.mining import ALGORITHMS, MiningConfig
from ..core.transactions import TransactionDatabase

__all__ = ["son_mine", "count_candidates", "local_candidates"]


def local_candidates(
    part: TransactionDatabase,
    min_support: float,
    max_len: int | None,
    algorithm: str = "fpgrowth",
) -> set[frozenset[int]]:
    """Phase-1 worker: locally frequent itemsets of one partition."""
    miner = ALGORITHMS[algorithm]
    return set(miner(part, min_support, max_len))


def count_candidates(
    db: TransactionDatabase,
    candidates: set[frozenset[int]],
    vertical: np.ndarray | None = None,
) -> dict[frozenset[int], int]:
    """Exact global support counts of *candidates* via vertical bitmaps.

    Pass a precomputed *vertical* occurrence matrix (``db.vertical()``)
    to reuse one bitmap build across several counting passes — the engine
    does this so phase-2 counting shares the memoised bitmap instead of
    recomputing it per call.
    """
    if vertical is None:
        vertical = db.vertical()
    out: dict[frozenset[int], int] = {}
    for itemset in candidates:
        ids = sorted(itemset)
        mask = vertical[ids[0]]
        for i in ids[1:]:
            mask = mask & vertical[i]
        out[itemset] = int(mask.sum())
    return out


def son_mine(
    db: TransactionDatabase,
    min_support: float = 0.05,
    max_len: int | None = 5,
    n_partitions: int = 4,
    n_workers: int = 1,
    algorithm: str = "fpgrowth",
) -> FrequentItemsets:
    """Deprecated shim: SON mining now lives in the engine layer.

    Use ``MiningEngine(backend="process", n_workers=..., n_partitions=...)``
    (or the ``--backend process`` CLI flag) instead.  This wrapper stays
    for one release and delegates to the same
    :class:`~repro.engine.backends.ProcessBackend` implementation, so
    results remain bit-exact with previous versions.
    """
    warnings.warn(
        "son_mine is deprecated; route through repro.engine.MiningEngine"
        " with backend='process' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # imported lazily: the engine layer sits above repro.parallel
    from ..engine.backends import ProcessBackend

    backend = ProcessBackend(n_workers=n_workers, n_partitions=n_partitions)
    config = MiningConfig(
        min_support=min_support, max_len=max_len, algorithm=algorithm
    )
    return backend.mine(db, config)
