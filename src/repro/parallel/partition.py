"""Partitioned frequent-itemset mining (SON / Savasere-Omiecinski-Navathe).

The paper's related-work section points at distributed rule mining on
Spark clusters as the scaling path for larger traces (Sec. VI).  The SON
algorithm is the canonical two-phase scheme those systems implement:

1. **Local phase** — split the database into partitions; mine each
   partition at the *same relative* support threshold.  Any globally
   frequent itemset must be frequent in at least one partition (a
   pigeonhole argument), so the union of local results is a complete
   candidate set.
2. **Global phase** — count every candidate exactly over the full
   database and keep those meeting the global threshold.

Phase 1 parallelises embarrassingly; phase 2 is a vectorised bitmap count
here.  Results are bit-exact against single-machine FP-Growth, which the
test suite property-checks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.itemsets import FrequentItemsets
from ..core.mining import ALGORITHMS
from ..core.transactions import TransactionDatabase

__all__ = ["son_mine", "count_candidates", "local_candidates"]


def local_candidates(
    part: TransactionDatabase,
    min_support: float,
    max_len: int | None,
    algorithm: str = "fpgrowth",
) -> set[frozenset[int]]:
    """Phase-1 worker: locally frequent itemsets of one partition."""
    miner = ALGORITHMS[algorithm]
    return set(miner(part, min_support, max_len))


def count_candidates(
    db: TransactionDatabase, candidates: set[frozenset[int]]
) -> dict[frozenset[int], int]:
    """Exact global support counts of *candidates* via vertical bitmaps."""
    vertical = db.vertical()
    out: dict[frozenset[int], int] = {}
    for itemset in candidates:
        ids = sorted(itemset)
        mask = vertical[ids[0]]
        for i in ids[1:]:
            mask = mask & vertical[i]
        out[itemset] = int(mask.sum())
    return out


def son_mine(
    db: TransactionDatabase,
    min_support: float = 0.05,
    max_len: int | None = 5,
    n_partitions: int = 4,
    n_workers: int = 1,
    algorithm: str = "fpgrowth",
) -> FrequentItemsets:
    """Mine frequent itemsets with the two-phase SON scheme.

    With ``n_workers > 1`` phase 1 runs in a process pool (fork-based,
    POSIX); ``n_workers=1`` runs the same partitioned algorithm serially,
    which is what the soundness tests exercise deterministically.

    The result is identical to running :func:`fpgrowth` on the whole
    database — SON changes the execution plan, not the answer.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    n = len(db)
    if n == 0:
        return FrequentItemsets({}, db.vocabulary, 0, min_support, max_len)

    parts = db.split(n_partitions)
    if n_workers == 1 or len(parts) == 1:
        locals_ = [
            local_candidates(part, min_support, max_len, algorithm) for part in parts
        ]
    else:
        with ProcessPoolExecutor(max_workers=min(n_workers, len(parts))) as pool:
            locals_ = list(
                pool.map(
                    local_candidates,
                    parts,
                    [min_support] * len(parts),
                    [max_len] * len(parts),
                    [algorithm] * len(parts),
                )
            )

    candidates: set[frozenset[int]] = set()
    for c in locals_:
        candidates |= c

    counts = count_candidates(db, candidates)
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))
    frequent = {s: c for s, c in counts.items() if c >= min_count}
    return FrequentItemsets(frequent, db.vocabulary, n, min_support, max_len)
