"""Partitioned frequent-itemset mining (SON / Savasere-Omiecinski-Navathe).

The paper's related-work section points at distributed rule mining on
Spark clusters as the scaling path for larger traces (Sec. VI).  The SON
algorithm is the canonical two-phase scheme those systems implement:

1. **Local phase** — split the database into partitions; mine each
   partition at the *same relative* support threshold.  Any globally
   frequent itemset must be frequent in at least one partition (a
   pigeonhole argument), so the union of local results is a complete
   candidate set.
2. **Global phase** — count every candidate exactly over the full
   database and keep those meeting the global threshold.

Phase 1 parallelises embarrassingly; phase 2 is a vectorised bitmap count
here.  Results are bit-exact against single-machine FP-Growth, which the
test suite property-checks.

This module provides the two SON phase primitives that
:class:`repro.engine.backends.ProcessBackend` (and its threaded sibling)
execute; the historical :func:`son_mine` entry point is now a deprecated
shim over that backend.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from ..core.bitmap import PackedBitmaps, kernel_timer
from ..core.itemsets import FrequentItemsets
from ..core.mining import ALGORITHMS, MiningConfig
from ..core.transactions import TransactionDatabase

__all__ = ["son_mine", "count_candidates", "local_candidates", "shm_local_candidates"]

#: per-worker-process cache of attached databases, by segment name; one
#: pool worker mines several spans of the same database, so the segment
#: is attached (and its manifest parsed) exactly once per process
_ATTACHED: dict[str, TransactionDatabase] = {}


def local_candidates(
    part: TransactionDatabase,
    min_support: float,
    max_len: int | None,
    algorithm: str = "fpgrowth",
) -> set[frozenset[int]]:
    """Phase-1 worker: locally frequent itemsets of one partition."""
    miner = ALGORITHMS[algorithm]
    return set(miner(part, min_support, max_len))


def shm_local_candidates(
    segment: str,
    start: int,
    stop: int,
    min_support: float,
    max_len: int | None,
    algorithm: str,
) -> set[frozenset[int]]:
    """Phase-1 worker for shared-memory pools: attach, slice, mine.

    Runs under *any* start method (spawn included): the worker attaches
    the published database as read-only zero-copy views — memoised per
    process in :data:`_ATTACHED`, since a pool worker mines many spans —
    and takes a :meth:`~repro.core.transactions.TransactionDatabase.txn_range`
    view of its span.  SON partition bounds are 64-aligned, so the view
    inherits a word-slice of the *published* packed bitmaps and the
    child never rebuilds a vertical representation — the same zero-copy
    property fork inheritance used to provide, without fork.
    """
    db = _ATTACHED.get(segment)
    if db is None:
        from ..shm.database import attach_database

        db = attach_database(segment)
        _ATTACHED[segment] = db
    part = db.txn_range(start, stop)
    return local_candidates(part, min_support, max_len, algorithm)


def count_candidates(
    db: TransactionDatabase,
    candidates: Iterable[frozenset[int]],
    bitmaps: PackedBitmaps | None = None,
) -> dict[frozenset[int], int]:
    """Exact global support counts of *candidates* via packed bitsets.

    Pass precomputed *bitmaps* (``db.bitmaps()``) to reuse one build
    across several counting passes — the engine does this so phase-2
    counting shares the memoised bitmaps instead of resolving them per
    call.  Counting time lands in the ``bitmap-count`` kernel counter.
    """
    if bitmaps is None:
        bitmaps = db.bitmaps()
    with kernel_timer("bitmap-count"):
        return bitmaps.counts_for(candidates)


def son_mine(
    db: TransactionDatabase,
    min_support: float = 0.05,
    max_len: int | None = 5,
    n_partitions: int = 4,
    n_workers: int = 1,
    algorithm: str = "fpgrowth",
) -> FrequentItemsets:
    """Deprecated shim: SON mining now lives in the engine layer.

    Use ``MiningEngine(backend="process", n_workers=..., n_partitions=...)``
    (or the ``--backend process`` CLI flag) instead.  This wrapper stays
    for one release and delegates to the same
    :class:`~repro.engine.backends.ProcessBackend` implementation, so
    results remain bit-exact with previous versions.
    """
    warnings.warn(
        "son_mine is deprecated; route through repro.engine.MiningEngine"
        " with backend='process' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # imported lazily: the engine layer sits above repro.parallel
    from ..engine.backends import ProcessBackend

    backend = ProcessBackend(n_workers=n_workers, n_partitions=n_partitions)
    config = MiningConfig(
        min_support=min_support, max_len=max_len, algorithm=algorithm
    )
    return backend.mine(db, config)
