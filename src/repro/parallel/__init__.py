"""Parallel / partitioned mining primitives (SON two-phase scheme).

The phase functions here are executed by the engine's partitioned
backends (:mod:`repro.engine.backends`); ``son_mine`` is a deprecated
shim kept for one release — new code routes through
:class:`repro.engine.MiningEngine` with ``backend="process"``.
"""

from .partition import count_candidates, local_candidates, son_mine
from .rulegen import parallel_generate_rule_table, parallel_generate_rules

__all__ = [
    "son_mine",
    "count_candidates",
    "local_candidates",
    "parallel_generate_rules",
    "parallel_generate_rule_table",
]
