"""Parallel / partitioned mining (SON two-phase scheme)."""

from .partition import count_candidates, local_candidates, son_mine
from .rulegen import parallel_generate_rules

__all__ = [
    "son_mine",
    "count_candidates",
    "local_candidates",
    "parallel_generate_rules",
]
