"""Parallel rule generation.

Rule generation enumerates every antecedent/consequent split of every
frequent itemset — for the PAI trace that is tens of thousands of
candidate rules, a pure-Python hot spot.  The work is embarrassingly
parallel across *itemsets* (each split only needs the shared support
table), so this module shards the itemset list over a process pool via
:func:`generate_rules`'s ``expand_only`` hook and merges the per-chunk
rule lists.

Results are exactly serial :func:`generate_rules` output (same rules,
same deterministic order), which the tests assert.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.itemsets import FrequentItemsets
from ..core.rules import AssociationRule, generate_rules

__all__ = ["parallel_generate_rules"]


def _chunk_rules(payload) -> list[AssociationRule]:
    """Worker: expand one chunk of itemsets against the full table."""
    itemsets, min_lift, min_confidence, keywords, chunk = payload
    return generate_rules(
        itemsets,
        min_lift=min_lift,
        min_confidence=min_confidence,
        keyword_ids=keywords,
        expand_only=chunk,
    )


def parallel_generate_rules(
    itemsets: FrequentItemsets,
    min_lift: float = 1.5,
    min_confidence: float = 0.0,
    keyword_ids=None,
    n_workers: int = 2,
    n_chunks: int | None = None,
) -> list[AssociationRule]:
    """Generate rules from *itemsets* with a process pool.

    Semantics identical to serial :func:`generate_rules`;
    ``n_workers=1`` runs the chunked path in-process (the deterministic
    test target).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    counts = itemsets.counts
    expandable = [s for s in counts if len(s) >= 2]
    if keyword_ids is not None:
        keywords = frozenset(keyword_ids)
        expandable = [s for s in expandable if s & keywords]
    else:
        keywords = None
    if not expandable:
        return []

    # deterministic chunking: stable order before splitting
    expandable.sort(key=lambda s: (len(s), sorted(s)))
    n_chunks = n_chunks or max(n_workers, 1)
    n_chunks = max(1, min(n_chunks, len(expandable)))
    bounds = np.linspace(0, len(expandable), n_chunks + 1).astype(int)
    chunks = [
        expandable[bounds[i] : bounds[i + 1]]
        for i in range(n_chunks)
        if bounds[i + 1] > bounds[i]
    ]
    payloads = [
        (itemsets, min_lift, min_confidence, keywords, chunk) for chunk in chunks
    ]
    if n_workers == 1 or len(chunks) == 1:
        partials = [_chunk_rules(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(n_workers, len(chunks))) as pool:
            partials = list(pool.map(_chunk_rules, payloads))

    merged: list[AssociationRule] = [r for part in partials for r in part]
    merged.sort(
        key=lambda r: (
            -r.lift,
            -r.confidence,
            -r.support,
            str(sorted(r.antecedent)),
            str(sorted(r.consequent)),
        )
    )
    return merged
