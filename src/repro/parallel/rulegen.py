"""Parallel rule generation.

Rule generation enumerates every antecedent/consequent split of every
frequent itemset — for the PAI trace that is tens of thousands of
candidate rules.  The work is embarrassingly parallel across *itemsets*
(each split only needs the shared support table), so this module shards
the itemset list over a process pool via the ``expand_only`` hook of the
columnar kernel and merges the per-chunk
:class:`~repro.core.ruletable.RuleTable` results by concatenation — a
handful of array copies per chunk instead of pickling tens of thousands
of rule objects back from the workers.

Results are exactly serial :func:`generate_rule_table` /
:func:`generate_rules` output (same rules, same deterministic order),
which the tests assert.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.itemsets import FrequentItemsets
from ..core.rules import AssociationRule, generate_rule_table
from ..core.ruletable import RuleTable

__all__ = ["parallel_generate_rules", "parallel_generate_rule_table"]


def _chunk_table(payload) -> RuleTable:
    """Worker: expand one chunk of itemsets against the full table."""
    itemsets, min_lift, min_confidence, keywords, chunk = payload
    return generate_rule_table(
        itemsets,
        min_lift=min_lift,
        min_confidence=min_confidence,
        keyword_ids=keywords,
        expand_only=chunk,
    )


def parallel_generate_rule_table(
    itemsets: FrequentItemsets,
    min_lift: float = 1.5,
    min_confidence: float = 0.0,
    keyword_ids=None,
    n_workers: int = 2,
    n_chunks: int | None = None,
) -> RuleTable:
    """Generate the columnar rule table from *itemsets* with a process pool.

    Semantics identical to serial :func:`generate_rule_table`;
    ``n_workers=1`` runs the chunked path in-process (the deterministic
    test target).  Per-chunk tables arrive sorted with their tie-break
    strings cached, so the merge is a concatenation plus one global
    canonical re-sort.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    counts = itemsets.counts
    expandable = [s for s in counts if len(s) >= 2]
    if keyword_ids is not None:
        keywords = frozenset(keyword_ids)
        expandable = [s for s in expandable if s & keywords]
    else:
        keywords = None
    if not expandable:
        return RuleTable.empty(itemsets.vocabulary)

    # deterministic chunking: stable order before splitting
    expandable.sort(key=lambda s: (len(s), sorted(s)))
    n_chunks = n_chunks or max(n_workers, 1)
    n_chunks = max(1, min(n_chunks, len(expandable)))
    bounds = np.linspace(0, len(expandable), n_chunks + 1).astype(int)
    chunks = [
        expandable[bounds[i] : bounds[i + 1]]
        for i in range(n_chunks)
        if bounds[i + 1] > bounds[i]
    ]
    payloads = [
        (itemsets, min_lift, min_confidence, keywords, chunk) for chunk in chunks
    ]
    if n_workers == 1 or len(chunks) == 1:
        partials = [_chunk_table(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(n_workers, len(chunks))) as pool:
            partials = list(pool.map(_chunk_table, payloads))

    return RuleTable.concat(partials).sort_canonical()


def parallel_generate_rules(
    itemsets: FrequentItemsets,
    min_lift: float = 1.5,
    min_confidence: float = 0.0,
    keyword_ids=None,
    n_workers: int = 2,
    n_chunks: int | None = None,
) -> list[AssociationRule]:
    """Generate rules from *itemsets* with a process pool.

    Semantics identical to serial :func:`generate_rules`; the historical
    list-of-objects API over :func:`parallel_generate_rule_table`.
    """
    return parallel_generate_rule_table(
        itemsets,
        min_lift=min_lift,
        min_confidence=min_confidence,
        keyword_ids=keyword_ids,
        n_workers=n_workers,
        n_chunks=n_chunks,
    ).to_rules()
