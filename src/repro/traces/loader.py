"""Persisting and re-loading generated traces.

Generated traces round-trip through CSV so experiments can pin a dataset
(a "release" of the synthetic trace, mirroring how the paper's SuperCloud
trace is published as files) and so external tools can consume it.
Loading validates the schema against the trace's expected columns and
restores the boolean flag columns the analysis needs.
"""

from __future__ import annotations

import os

from ..dataframe import BooleanColumn, ColumnTable, NumericColumn, read_csv, write_csv
from .registry import get_trace

__all__ = ["save_trace", "load_trace", "REQUIRED_COLUMNS"]

#: columns every saved trace must carry to be analysable by its preprocessor
REQUIRED_COLUMNS: dict[str, tuple[str, ...]] = {
    "pai": (
        "user", "group", "queue_delay", "runtime", "n_gpus", "cpu_request",
        "mem_request", "gpu_type_req", "framework", "status", "mem_used_gb",
        "gmem_used_gb", "sm_util", "cpu_util", "multi_task", "failed",
    ),
    "supercloud": (
        "user", "queue_delay", "runtime", "sm_util", "sm_util_var",
        "gmem_util", "gmem_util_var", "gmem_used_gb", "gpu_power",
        "cpu_util", "mem_used_gb", "is_new_user", "failed", "killed",
    ),
    "philly": (
        "user", "queue_delay", "runtime", "n_gpus", "gpu_type", "sm_util",
        "sm_util_min", "sm_util_max", "cpu_util", "num_attempts",
        "is_new_user", "multi_gpu", "retried", "gpu_24gb", "failed", "killed",
    ),
}

#: columns that must come back as booleans after the CSV round trip
_FLAG_COLUMNS = (
    "failed", "killed", "multi_task", "multi_gpu", "retried",
    "gpu_24gb", "is_new_user",
)


def save_trace(table: ColumnTable, path: str | os.PathLike) -> None:
    """Write a generated trace table to CSV."""
    write_csv(table, path)


def load_trace(path: str | os.PathLike, trace: str | None = None) -> ColumnTable:
    """Load a trace CSV; with *trace* given, validate its schema.

    Boolean flag columns that the CSV reader parsed as 0/1 numerics are
    restored to booleans, so a loaded trace behaves identically to a
    freshly generated one under the preprocessors.
    """
    table = read_csv(path)
    if trace is not None:
        definition = get_trace(trace)
        missing = [
            c for c in REQUIRED_COLUMNS[definition.name] if c not in table
        ]
        if missing:
            raise ValueError(
                f"CSV at {os.fspath(path)!r} is missing {definition.display_name} "
                f"columns: {missing}"
            )
    for name in _FLAG_COLUMNS:
        if name in table:
            column = table[name]
            if isinstance(column, NumericColumn) and not column.isna().any():
                values = column.values
                if set(values.tolist()) <= {0.0, 1.0}:
                    table.add_column(name, BooleanColumn(values.astype(bool)))
    return table
