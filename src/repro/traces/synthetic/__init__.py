"""Synthetic trace generators with planted associations (DESIGN.md §2)."""

from .base import Archetype, ArchetypeMixer
from .pai import PAI_KEYWORDS, PAIConfig, generate_pai, pai_preprocessor
from .philly import PHILLY_KEYWORDS, PhillyConfig, generate_philly, philly_preprocessor
from .supercloud import (
    SUPERCLOUD_KEYWORDS,
    SuperCloudConfig,
    generate_supercloud,
    supercloud_preprocessor,
)

__all__ = [
    "Archetype",
    "ArchetypeMixer",
    "PAIConfig",
    "generate_pai",
    "pai_preprocessor",
    "PAI_KEYWORDS",
    "SuperCloudConfig",
    "generate_supercloud",
    "supercloud_preprocessor",
    "SUPERCLOUD_KEYWORDS",
    "PhillyConfig",
    "generate_philly",
    "philly_preprocessor",
    "PHILLY_KEYWORDS",
]
