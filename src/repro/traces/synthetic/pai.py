"""Synthetic Alibaba-PAI trace (Sec. II, Tables II, V, VIII).

PAI is an MLaaS cloud: heterogeneous GPUs (T4 / P100 / V100 plus a
miscellaneous low-end pool for unspecified requests), ~850k tasks over two
months, the highest failure rate of the three traces, and ~46 % of jobs
with 0 % GPU SM utilisation (Fig. 4).

The generator plants the paper's PAI findings through six archetypes:

=====================  ======  =====================================================
archetype              weight  drives
=====================  ======  =====================================================
debug_template         0.30    Table II C1–C5/A1–A3: frequent users submitting
                               low-customisation Tensorflow jobs (Std CPU/mem
                               request, GPU type unspecified) that never touch
                               the GPU; Fig. 4's near-zero SM mass
debug_template (cont.)         also Table V A2 (failed ↔ underutilised overlap)
bulk_failer            0.12    Table V C1–C3/A1: one heavy user's frequent job
                               group failing before the model loads
                               (GMem Used = 0GB, Mem Used low)
production_train       0.33    healthy background mass; non-T4 queue pressure
                               (Table VIII PAI2)
recsys_serving         0.10    Table VIII PAI3: RecSys → T4 + Multiple Tasks;
                               PAI1 (T4 → short queue)
nlp_train              0.07    Table VIII PAI4: low CPU + high SM → NLP
distributed_flaky      0.08    Table V C4–C5: mid-size GPU gangs failing with
                               0 GB GPU memory used
=====================  ======  =====================================================

Queue-delay structure (PAI1/PAI2) is *not* planted: it emerges from the
discrete-event scheduler run over a cluster whose T4 : non-T4 capacity
ratio matches the paper's 1 : 3.5, with the non-T4 pools driven near
saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cluster import (
    BehaviorProfile,
    ClusterSimulator,
    ClusterSpec,
    JobRequest,
    NodeSpec,
    TelemetryConfig,
    UserPopulation,
    UserProfile,
)
from ...core.bitmap import kernel_timer
from ...dataframe import BooleanColumn, ColumnTable, NumericColumn
from ...preprocess import (
    BinningSpec,
    FeatureSpec,
    GroupingSpec,
    TierSpec,
    TracePreprocessor,
)
from .base import (
    Archetype,
    ArchetypeMixer,
    BatchContext,
    CatBlock,
    calibrated_duration,
    categorical_choice,
    categorical_codes,
    lognormal_runtime,
    lognormal_runtime_batch,
    poisson_arrivals,
    status_choice,
    status_codes,
)

__all__ = ["PAIConfig", "generate_pai", "pai_preprocessor", "PAI_KEYWORDS"]

#: keyword items for the PAI case studies
PAI_KEYWORDS = {
    "underutilization": "SM Util = 0%",
    "failure": "Failed",
    "queue_short": "Queue = Bin1",
    "recsys": "Model = RecSys",
    "nlp": "Model = NLP",
}

#: standard (default) request values — the paper infers 600 CPU cores is
#: "the default or standard CPU request count" covering ~50 % of jobs
STD_CPU_REQUEST = 600.0
STD_MEM_REQUEST = 29.0  # GB


@dataclass(frozen=True, slots=True)
class PAIConfig:
    """Scale and seed of a generated PAI trace."""

    n_jobs: int = 20_000
    n_users: int = 400
    n_groups: int = 150
    seed: int = 7
    #: target utilisation of the *binding* (non-T4) GPU pools
    congestion: float = 0.92
    use_scheduler: bool = True
    #: draw the trace as numpy column blocks instead of per-job objects —
    #: the ingest fast path; requires ``use_scheduler=False`` (the
    #: object-per-job path stays the oracle for the simulator)
    columnar: bool = False

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.columnar and self.use_scheduler:
            raise ValueError(
                "columnar generation bypasses the scheduler; "
                "use PAIConfig(columnar=True, use_scheduler=False)"
            )


def _pai_cluster() -> ClusterSpec:
    """T4 : non-T4 GPU ratio 1 : 3.5 (Sec. IV-D) plus a misc pool."""
    return ClusterSpec.of(
        (NodeSpec("misc", "MISC", n_gpus=4, n_cpus=96, mem_gb=512, gpu_mem_gb=8), 40),
        (NodeSpec("t4", "T4", n_gpus=8, n_cpus=96, mem_gb=512, gpu_mem_gb=16), 20),
        (NodeSpec("v100", "V100", n_gpus=8, n_cpus=96, mem_gb=512, gpu_mem_gb=32), 40),
        (NodeSpec("p100", "P100", n_gpus=8, n_cpus=96, mem_gb=512, gpu_mem_gb=16), 30),
    )


# --------------------------------------------------------------------------
# archetype samplers
# --------------------------------------------------------------------------

def _base_extras(
    gpu_type_label: str,
    mem_used_gb: float,
    multi_task: bool,
    model: str | None,
) -> dict:
    return {
        "gpu_type_req": gpu_type_label,
        "mem_used_gb": mem_used_gb,
        "multi_task": multi_task,
        "model_name": model,
    }


def _debug_template(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Low-customisation template job: requests a GPU, never uses it."""
    n_gpus = int(categorical_choice(rng, {1: 0.75, 2: 0.25}))
    return JobRequest(
        job_id=job_id,
        user=user.name,
        submit_time=0.0,
        runtime=lognormal_runtime(rng, median_s=120.0, sigma=0.8, max_s=3600),
        n_gpus=n_gpus,
        n_cpus=int(STD_CPU_REQUEST),
        mem_gb=STD_MEM_REQUEST,
        gpu_type=None,  # unspecified → misc pool
        group=f"group{int(rng.integers(0, 12)):03d}",  # few, busy groups
        framework="Tensorflow",
        status=status_choice(rng, p_failed=0.30),
        profile=BehaviorProfile(
            sm_util_mean=0.0,
            gmem_util_mean=0.0,
            gmem_used_gb=float(rng.uniform(0.0, 0.4)),
            cpu_util_mean=float(rng.uniform(1.0, 8.0)),
        ),
        extras=_base_extras("None", mem_used_gb=float(rng.uniform(0.2, 2.0)),
                            multi_task=False, model=None),
    )


def _bulk_failer(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """One heavy user's job group failing before the model loads (Table V)."""
    return JobRequest(
        job_id=job_id,
        user="user0000",  # the single dominant submitter (Sec. IV-C: "one
        # user submitting a large number of jobs")
        submit_time=0.0,
        runtime=lognormal_runtime(rng, median_s=60.0, sigma=0.5, max_s=900),
        n_gpus=int(categorical_choice(rng, {1: 0.7, 2: 0.3})),
        n_cpus=int(rng.integers(20, 80)),  # far below Std → "CPU Request = Bin1"
        mem_gb=STD_MEM_REQUEST,
        gpu_type=None,
        group="group000",
        framework="Tensorflow",
        status=status_choice(rng, p_failed=0.95),
        profile=BehaviorProfile(
            sm_util_mean=0.0,
            gmem_util_mean=0.0,
            gmem_used_gb=0.0,  # exact 0 GB: fails before load (import error)
            cpu_util_mean=float(rng.uniform(1.0, 6.0)),
        ),
        extras=_base_extras("None", mem_used_gb=float(rng.uniform(0.1, 1.0)),
                            multi_task=False, model=None),
    )


def _production_train(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Healthy training job with explicit resource customisation."""
    gpu_type = categorical_choice(rng, {"V100": 0.55, "P100": 0.45})
    framework = categorical_choice(
        rng, {"Tensorflow": 0.45, "PyTorch": 0.45, "Other Framework": 0.10}
    )
    model = categorical_choice(
        rng, {None: 0.62, "resnet": 0.14, "vgg": 0.09, "inception": 0.07, "bert": 0.08}
    )
    return JobRequest(
        job_id=job_id,
        user=user.name,
        submit_time=0.0,
        runtime=lognormal_runtime(rng, median_s=4200.0, sigma=1.1, max_s=1e5),
        n_gpus=int(categorical_choice(rng, {8: 0.5, 16: 0.3, 32: 0.2})),
        n_cpus=int(rng.integers(100, 1200)),
        mem_gb=float(rng.uniform(32, 256)),
        gpu_type=gpu_type,
        group=f"group{int(rng.integers(12, 150)):03d}",
        framework=framework,
        status=status_choice(rng, p_failed=0.08),
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(35, 90)),
            gmem_util_mean=float(rng.uniform(25, 70)),
            gmem_used_gb=float(rng.uniform(4, 28)),
            cpu_util_mean=float(rng.uniform(25, 80)),
        ),
        extras=_base_extras(gpu_type, mem_used_gb=float(rng.uniform(8, 120)),
                            multi_task=bool(rng.random() < 0.3), model=model),
    )


def _recsys_serving(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Recommender jobs: T4 GPUs, many parallel tasks (Table VIII PAI3)."""
    model = categorical_choice(rng, {"ctr": 0.5, "din": 0.3, "dien": 0.2})
    gpu_type = "T4" if rng.random() < 0.9 else "V100"
    return JobRequest(
        job_id=job_id,
        user=user.name,
        submit_time=0.0,
        runtime=lognormal_runtime(rng, median_s=1800.0, sigma=0.9, max_s=4e4),
        n_gpus=int(categorical_choice(rng, {2: 0.5, 4: 0.35, 8: 0.15})),
        n_cpus=int(rng.integers(100, 600)),
        mem_gb=float(rng.uniform(16, 64)),
        gpu_type=gpu_type,
        group=f"group{int(rng.integers(12, 150)):03d}",
        framework=categorical_choice(rng, {"Tensorflow": 0.7, "PyTorch": 0.3}),
        status=status_choice(rng, p_failed=0.06),
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(8, 35)),
            gmem_util_mean=float(rng.uniform(10, 40)),
            gmem_used_gb=float(rng.uniform(2, 12)),
            cpu_util_mean=float(rng.uniform(20, 60)),
        ),
        extras=_base_extras(
            gpu_type,
            mem_used_gb=float(rng.uniform(4, 48)),
            multi_task=bool(rng.random() < 0.92),
            model=model,
        ),
    )


def _nlp_train(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Language-model training: GPU-bound, CPU-light (Table VIII PAI4)."""
    model = categorical_choice(rng, {"bert": 0.5, "nmt": 0.25, "xlnet": 0.25})
    gpu_type = categorical_choice(rng, {"V100": 0.8, "P100": 0.2})
    return JobRequest(
        job_id=job_id,
        user=user.name,
        submit_time=0.0,
        runtime=lognormal_runtime(rng, median_s=9000.0, sigma=1.0, max_s=2e5),
        n_gpus=int(categorical_choice(rng, {8: 0.4, 16: 0.35, 32: 0.25})),
        n_cpus=int(rng.integers(50, 250)),
        mem_gb=float(rng.uniform(32, 128)),
        gpu_type=gpu_type,
        group=f"group{int(rng.integers(12, 150)):03d}",
        framework=categorical_choice(rng, {"Tensorflow": 0.5, "PyTorch": 0.5}),
        status=status_choice(rng, p_failed=0.10),
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(88, 100)),  # SM Util = Bin4
            gmem_util_mean=float(rng.uniform(50, 90)),
            gmem_used_gb=float(rng.uniform(12, 31)),
            cpu_util_mean=float(rng.uniform(1, 10)),  # CPU Util = Bin1
        ),
        extras=_base_extras(gpu_type, mem_used_gb=float(rng.uniform(8, 64)),
                            multi_task=bool(rng.random() < 0.3), model=model),
    )


def _distributed_flaky(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Mid-size GPU gangs that fail at launch (Table V C4/C5).

    "A user requests a decent number of GPUs … but does not properly use
    the GPU cores and memory."
    """
    failed = rng.random() < 0.80
    idle = failed or rng.random() < 0.5
    gpu_type = categorical_choice(rng, {"V100": 0.5, "P100": 0.3, None: 0.2})
    return JobRequest(
        job_id=job_id,
        user=user.name,
        submit_time=0.0,
        runtime=lognormal_runtime(rng, median_s=600.0, sigma=0.9, max_s=2e4),
        n_gpus=int(rng.integers(25, 100)),
        n_cpus=int(rng.integers(100, 900)),
        mem_gb=float(rng.uniform(32, 128)),
        gpu_type=gpu_type,
        group=f"group{int(rng.integers(12, 150)):03d}",
        framework=categorical_choice(rng, {"Tensorflow": 0.6, "PyTorch": 0.4}),
        status=(
            status_choice(rng, p_failed=1.0)
            if failed
            else status_choice(rng, p_failed=0.0)
        ),
        profile=BehaviorProfile(
            sm_util_mean=0.0 if idle else float(rng.uniform(20, 60)),
            gmem_util_mean=0.0 if idle else float(rng.uniform(15, 50)),
            gmem_used_gb=0.0 if idle else float(rng.uniform(4, 24)),
            cpu_util_mean=float(rng.uniform(2, 20)),
        ),
        extras=_base_extras(
            gpu_type if gpu_type is not None else "None",
            mem_used_gb=float(rng.uniform(0.5, 8.0)),
            multi_task=False,
            model=None,
        ),
    )


# --------------------------------------------------------------------------
# batched (columnar) archetype samplers — numpy twins of the per-job
# samplers above, drawing each archetype's whole row block at once; the
# per-job samplers remain the oracle for the scheduler/simulator path
# --------------------------------------------------------------------------

def _group_block(
    rng: np.random.Generator, n: int, lo: int, hi: int
) -> CatBlock:
    """Uniform group draw over ``group{lo:03d}..group{hi-1:03d}``."""
    codes = (rng.integers(lo, hi, size=n) - lo).astype(np.int32)
    return CatBlock(codes, [f"group{i:03d}" for i in range(lo, hi)])


def _debug_template_batch(rng: np.random.Generator, ctx: BatchContext) -> dict:
    n = ctx.n
    return {
        "runtime": lognormal_runtime_batch(rng, n, median_s=120.0, sigma=0.8, max_s=3600),
        "n_gpus": np.where(rng.random(n) < 0.75, 1.0, 2.0),
        "cpu_request": np.full(n, STD_CPU_REQUEST),
        "mem_request": np.full(n, STD_MEM_REQUEST),
        "gpu_type_req": CatBlock.full(n, "None"),
        "framework": CatBlock.full(n, "Tensorflow"),
        "model_name": CatBlock.full(n, None),
        "status": status_codes(rng, n, p_failed=0.30),
        "group": _group_block(rng, n, 0, 12),
        "mem_used_gb": rng.uniform(0.2, 2.0, n),
        "gmem_used_gb": rng.uniform(0.0, 0.4, n),
        "sm_util": np.zeros(n),
        "cpu_util": rng.uniform(1.0, 8.0, n),
        "multi_task": np.zeros(n, dtype=bool),
    }


def _bulk_failer_batch(rng: np.random.Generator, ctx: BatchContext) -> dict:
    n = ctx.n
    return {
        "user": CatBlock.full(n, "user0000"),  # the single dominant submitter
        "runtime": lognormal_runtime_batch(rng, n, median_s=60.0, sigma=0.5, max_s=900),
        "n_gpus": np.where(rng.random(n) < 0.7, 1.0, 2.0),
        "cpu_request": rng.integers(20, 80, size=n).astype(np.float64),
        "mem_request": np.full(n, STD_MEM_REQUEST),
        "gpu_type_req": CatBlock.full(n, "None"),
        "framework": CatBlock.full(n, "Tensorflow"),
        "model_name": CatBlock.full(n, None),
        "status": status_codes(rng, n, p_failed=0.95),
        "group": CatBlock.full(n, "group000"),
        "mem_used_gb": rng.uniform(0.1, 1.0, n),
        "gmem_used_gb": np.zeros(n),  # exact 0 GB: fails before load
        "sm_util": np.zeros(n),
        "cpu_util": rng.uniform(1.0, 6.0, n),
        "multi_task": np.zeros(n, dtype=bool),
    }


def _production_train_batch(rng: np.random.Generator, ctx: BatchContext) -> dict:
    n = ctx.n
    return {
        "runtime": lognormal_runtime_batch(rng, n, median_s=4200.0, sigma=1.1, max_s=1e5),
        "n_gpus": np.asarray([8.0, 16.0, 32.0])[
            rng.choice(3, size=n, p=[0.5, 0.3, 0.2])
        ],
        "cpu_request": rng.integers(100, 1200, size=n).astype(np.float64),
        "mem_request": rng.uniform(32, 256, n),
        "gpu_type_req": categorical_codes(rng, n, {"V100": 0.55, "P100": 0.45}),
        "framework": categorical_codes(
            rng, n, {"Tensorflow": 0.45, "PyTorch": 0.45, "Other Framework": 0.10}
        ),
        "model_name": categorical_codes(
            rng,
            n,
            {None: 0.62, "resnet": 0.14, "vgg": 0.09, "inception": 0.07, "bert": 0.08},
        ),
        "status": status_codes(rng, n, p_failed=0.08),
        "group": _group_block(rng, n, 12, 150),
        "mem_used_gb": rng.uniform(8, 120, n),
        "gmem_used_gb": rng.uniform(4, 28, n),
        "sm_util": np.round(rng.uniform(35, 90, n)),
        "cpu_util": rng.uniform(25, 80, n),
        "multi_task": rng.random(n) < 0.3,
    }


def _recsys_serving_batch(rng: np.random.Generator, ctx: BatchContext) -> dict:
    n = ctx.n
    return {
        "runtime": lognormal_runtime_batch(rng, n, median_s=1800.0, sigma=0.9, max_s=4e4),
        "n_gpus": np.asarray([2.0, 4.0, 8.0])[
            rng.choice(3, size=n, p=[0.5, 0.35, 0.15])
        ],
        "cpu_request": rng.integers(100, 600, size=n).astype(np.float64),
        "mem_request": rng.uniform(16, 64, n),
        "gpu_type_req": categorical_codes(rng, n, {"T4": 0.9, "V100": 0.1}),
        "framework": categorical_codes(rng, n, {"Tensorflow": 0.7, "PyTorch": 0.3}),
        "model_name": categorical_codes(rng, n, {"ctr": 0.5, "din": 0.3, "dien": 0.2}),
        "status": status_codes(rng, n, p_failed=0.06),
        "group": _group_block(rng, n, 12, 150),
        "mem_used_gb": rng.uniform(4, 48, n),
        "gmem_used_gb": rng.uniform(2, 12, n),
        "sm_util": np.round(rng.uniform(8, 35, n)),
        "cpu_util": rng.uniform(20, 60, n),
        "multi_task": rng.random(n) < 0.92,
    }


def _nlp_train_batch(rng: np.random.Generator, ctx: BatchContext) -> dict:
    n = ctx.n
    return {
        "runtime": lognormal_runtime_batch(rng, n, median_s=9000.0, sigma=1.0, max_s=2e5),
        "n_gpus": np.asarray([8.0, 16.0, 32.0])[
            rng.choice(3, size=n, p=[0.4, 0.35, 0.25])
        ],
        "cpu_request": rng.integers(50, 250, size=n).astype(np.float64),
        "mem_request": rng.uniform(32, 128, n),
        "gpu_type_req": categorical_codes(rng, n, {"V100": 0.8, "P100": 0.2}),
        "framework": categorical_codes(rng, n, {"Tensorflow": 0.5, "PyTorch": 0.5}),
        "model_name": categorical_codes(
            rng, n, {"bert": 0.5, "nmt": 0.25, "xlnet": 0.25}
        ),
        "status": status_codes(rng, n, p_failed=0.10),
        "group": _group_block(rng, n, 12, 150),
        "mem_used_gb": rng.uniform(8, 64, n),
        "gmem_used_gb": rng.uniform(12, 31, n),
        "sm_util": np.round(rng.uniform(88, 100, n)),  # SM Util = Bin4
        "cpu_util": rng.uniform(1, 10, n),  # CPU Util = Bin1
        "multi_task": rng.random(n) < 0.3,
    }


def _distributed_flaky_batch(rng: np.random.Generator, ctx: BatchContext) -> dict:
    n = ctx.n
    failed = rng.random(n) < 0.80
    idle = failed | (rng.random(n) < 0.5)
    gpu_type = categorical_codes(rng, n, {"V100": 0.5, "P100": 0.3, None: 0.2})
    # unspecified requests render as the explicit "None" label in the table
    req_categories = [*gpu_type.categories, "None"]
    req_codes = np.where(
        gpu_type.codes >= 0, gpu_type.codes, np.int32(len(gpu_type.categories))
    ).astype(np.int32)
    status = CatBlock(
        failed.astype(np.int32), ["completed", "failed"]
    )
    return {
        "runtime": lognormal_runtime_batch(rng, n, median_s=600.0, sigma=0.9, max_s=2e4),
        "n_gpus": rng.integers(25, 100, size=n).astype(np.float64),
        "cpu_request": rng.integers(100, 900, size=n).astype(np.float64),
        "mem_request": rng.uniform(32, 128, n),
        "gpu_type_req": CatBlock(req_codes, req_categories),
        "framework": categorical_codes(rng, n, {"Tensorflow": 0.6, "PyTorch": 0.4}),
        "model_name": CatBlock.full(n, None),
        "status": status,
        "group": _group_block(rng, n, 12, 150),
        "mem_used_gb": rng.uniform(0.5, 8.0, n),
        "gmem_used_gb": np.where(idle, 0.0, rng.uniform(4, 24, n)),
        "sm_util": np.where(idle, 0.0, np.round(rng.uniform(20, 60, n))),
        "cpu_util": rng.uniform(2, 20, n),
        "multi_task": np.zeros(n, dtype=bool),
    }


def _pai_archetypes() -> list[Archetype]:
    return [
        Archetype(
            "debug_template", 0.30, _debug_template,
            new_user_multiplier=1.3, batch_sampler=_debug_template_batch,
        ),
        Archetype(
            "bulk_failer", 0.12, _bulk_failer,
            new_user_multiplier=0.1, batch_sampler=_bulk_failer_batch,
        ),
        Archetype(
            "production_train", 0.33, _production_train,
            batch_sampler=_production_train_batch,
        ),
        Archetype(
            "recsys_serving", 0.10, _recsys_serving,
            batch_sampler=_recsys_serving_batch,
        ),
        Archetype("nlp_train", 0.07, _nlp_train, batch_sampler=_nlp_train_batch),
        Archetype(
            "distributed_flaky", 0.08, _distributed_flaky,
            batch_sampler=_distributed_flaky_batch,
        ),
    ]


# --------------------------------------------------------------------------
# generation
# --------------------------------------------------------------------------

def generate_pai(config: PAIConfig = PAIConfig()) -> ColumnTable:
    """Generate a merged PAI job table (one row per job/task)."""
    if config.columnar:
        return _generate_pai_columnar(config)
    users = UserPopulation(
        config.n_users, new_user_fraction=0.12, seed=config.seed, name_prefix="user"
    )
    mixer = ArchetypeMixer(_pai_archetypes(), users, seed=config.seed)
    jobs = mixer.sample_jobs(config.n_jobs)

    cluster = _pai_cluster()
    for job in jobs:
        # preserve the logical request quotas before placement adjustments
        job.extras["cpu_request"] = float(job.n_cpus)
        job.extras["mem_request"] = float(job.mem_gb)
        # route unspecified-type jobs to the misc pool (PAI assigns "a
        # miscellaneous low-end GPU type", Sec. II)
        if job.gpu_type is None:
            job.gpu_type = "MISC"
        # PAI CPU/memory requests are logical quotas far above node size;
        # scale them down for placement so they never gate GPU allocation
        job.n_cpus = min(job.n_cpus, 90)
        job.mem_gb = min(job.mem_gb, 256.0)

    duration = calibrated_duration(
        jobs,
        total_gpus=sum(
            n for t, n in cluster.gpus_by_type().items() if t in ("V100", "P100")
        ),
        target_utilization=config.congestion,
    )
    rng = np.random.default_rng(config.seed + 1)
    poisson_arrivals(rng, jobs, duration)

    telemetry_config = TelemetryConfig(sample_interval_s=30.0, max_samples_per_job=64)
    if config.use_scheduler:
        sim = ClusterSimulator(cluster, telemetry=telemetry_config, seed=config.seed + 2)
        result = sim.run(jobs)
        table = result.to_table()
    else:
        # fast path for tests: queue delays drawn per pool instead of
        # emerging from the discrete-event scheduler
        table = _direct_table(jobs, telemetry_config, rng)
    return _finalize_pai_table(table)


def _generate_pai_columnar(config: PAIConfig) -> ColumnTable:
    """Columnar fast path: the whole trace as numpy column blocks.

    Statistically equivalent to the object-per-job fast path
    (``use_scheduler=False``) — same archetype mixture, distributions and
    schema — but drawn batch-at-a-time with no per-job Python objects.
    Queue delays are sampled per pool like :func:`_direct_table`: short
    for the T4/misc pools, long for the congested non-T4 pools.
    """
    with kernel_timer("ingest-generate"):
        users = UserPopulation(
            config.n_users, new_user_fraction=0.12, seed=config.seed, name_prefix="user"
        )
        mixer = ArchetypeMixer(_pai_archetypes(), users, seed=config.seed)
        table = mixer.sample_columns(config.n_jobs)

        rng = np.random.default_rng(config.seed + 1)
        gpu_req = table["gpu_type_req"]
        fast = gpu_req.equals_scalar("None") | gpu_req.equals_scalar("T4")
        delay = rng.exponential(1.0, len(table)) * np.where(fast, 120.0, 7200.0)
        table.add_column("queue_delay", NumericColumn(delay))
        return _finalize_pai_table(table)


def _direct_table(
    jobs: list[JobRequest],
    telemetry_config: TelemetryConfig,
    rng: np.random.Generator,
) -> ColumnTable:
    from ...cluster import GPUTelemetryModel, JobRecord

    model = GPUTelemetryModel(telemetry_config, seed=17)
    rows = []
    for job in jobs:
        mean_delay = 120.0 if job.gpu_type in ("T4", "MISC") else 7200.0
        delay = float(rng.exponential(mean_delay))
        summary = model.summarize(job.profile, job.runtime)
        record = JobRecord(
            request=job,
            start_time=job.submit_time + delay,
            end_time=job.submit_time + delay + job.runtime,
            node=None,
            assigned_gpu_type=job.gpu_type,
            telemetry=summary.as_dict(),
        )
        rows.append(record.as_row())
    return ColumnTable.from_records(rows)


def _finalize_pai_table(table: ColumnTable) -> ColumnTable:
    """Select/rename the analysis columns of the merged PAI table."""
    out = table.select(
        [
            "job_id",
            "user",
            "group",
            "queue_delay",
            "runtime",
            "n_gpus",
            "cpu_request",
            "mem_request",
            "gpu_type_req",
            "framework",
            "model_name",
            "status",
            "mem_used_gb",
            "gmem_used_gb",
            "sm_util",
            "cpu_util",
            "multi_task",
            "archetype",
        ]
    )
    out.add_column("failed", BooleanColumn(table["status"].equals_scalar("failed")))
    return out


def pai_preprocessor(include_model: bool = False) -> TracePreprocessor:
    """The Sec. III-E pipeline configured for the PAI schema.

    With ``include_model=True`` the (mostly-NaN) model column is encoded
    too — used after dropping unlabeled rows for the Table VIII analysis.
    """
    quart = BinningSpec()
    features = [
        FeatureSpec("user_tier", kind="label"),
        FeatureSpec("group_tier", kind="label"),
        FeatureSpec("n_gpus", item_feature="GPU Request", binning=quart),
        FeatureSpec(
            "cpu_request",
            item_feature="CPU Request",
            binning=BinningSpec(std_label="Std", std_threshold=0.3),
        ),
        FeatureSpec(
            "mem_request",
            item_feature="Mem Request",
            binning=BinningSpec(std_label="Std", std_threshold=0.3),
        ),
        FeatureSpec("gpu_type_req", item_feature="GPU Type"),
        FeatureSpec("framework", kind="label"),
        FeatureSpec("mem_used_gb", item_feature="Memory Used", binning=quart),
        FeatureSpec(
            "gmem_used_gb",
            item_feature="GMem Used",
            binning=BinningSpec(zero_label="0GB"),
        ),
        FeatureSpec(
            "sm_util", item_feature="SM Util", binning=BinningSpec(zero_label="0%")
        ),
        FeatureSpec("cpu_util", item_feature="CPU Util", binning=quart),
        FeatureSpec("runtime", item_feature="Runtime", binning=quart),
        FeatureSpec("queue_delay", item_feature="Queue", binning=quart),
        FeatureSpec("multi_task", kind="flag", true_label="Multiple Tasks"),
        FeatureSpec("failed", kind="flag", true_label="Failed"),
    ]
    if include_model:
        features.append(FeatureSpec("model_name", item_feature="Model"))
    return TracePreprocessor(
        features=features,
        tier_specs=[
            TierSpec(
                "user",
                "user_tier",
                frequent_label="Freq User",
                moderate_label="Moderate User",
                rare_label="Rare User",
            ),
            TierSpec(
                "group",
                "group_tier",
                frequent_label="Freq Group",
                moderate_label="Moderate Group",
                rare_label="Rare Group",
            ),
        ],
        grouping_specs=[
            GroupingSpec(
                "gpu_type_req", {"P100": "None T4", "V100": "None T4"}
            ),
            GroupingSpec(
                "model_name",
                {
                    "resnet": "CV", "vgg": "CV", "inception": "CV",
                    "bert": "NLP", "nmt": "NLP", "xlnet": "NLP",
                    "ctr": "RecSys", "din": "RecSys", "dien": "RecSys",
                },
            ),
        ]
        if include_model
        else [GroupingSpec("gpu_type_req", {"P100": "None T4", "V100": "None T4"})],
    )
