"""Synthetic Microsoft Philly trace (Sec. II, Tables IV, VII, PHI1).

Philly: 14 virtual clusters over two GPU flavours (12 GB / 24 GB memory),
1-minute monitoring granularity — hence the min/max SM-utilisation
features — and an automatic retry mechanism that re-attempts failed jobs
(the "Num Attempts > 1" item).  ~14 % of jobs are multi-GPU.

Archetypes and the findings they plant:

================  ======  =====================================================
archetype         weight  drives
================  ======  =====================================================
debug             0.30    Table IV C1–C2/A1: zero SM (min and mean), low CPU,
                          short runtime; Fig. 4's ~35 % near-zero mass
single_train      0.42    healthy background
multi_gpu_train   0.14    Table VII C1 (multi-GPU ≈ 2.5× failure rate) and
                          PHI1 (multi-GPU → long runtime)
retry_failer      0.08    Table VII A1/A2: failed jobs with min SM = 0 that
                          got automatic retries, some failing late
new-user boost    —       Table VII C2: new users ≈ 2.5× failure, applied as
                          archetype re-weighting plus a direct failure boost
idle_hold         0.06    24 GB-node underutilisation slice (Table IV A1)
================  ======  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cluster import (
    BehaviorProfile,
    ClusterSimulator,
    ClusterSpec,
    JobRequest,
    JobStatus,
    NodeSpec,
    TelemetryConfig,
    UserPopulation,
    UserProfile,
)
from ...dataframe import BooleanColumn, ColumnTable
from ...preprocess import BinningSpec, FeatureSpec, TierSpec, TracePreprocessor
from .base import (
    Archetype,
    ArchetypeMixer,
    calibrated_duration,
    categorical_choice,
    lognormal_runtime,
    poisson_arrivals,
    status_choice,
)

__all__ = ["PhillyConfig", "generate_philly", "philly_preprocessor", "PHILLY_KEYWORDS"]

PHILLY_KEYWORDS = {
    "underutilization": "SM Util = 0%",
    "failure": "Failed",
    "multi_gpu": "Multi-GPU",
}


@dataclass(frozen=True, slots=True)
class PhillyConfig:
    """Scale and seed of a generated Philly trace."""

    n_jobs: int = 12_000
    n_users: int = 320
    seed: int = 13
    target_utilization: float = 0.7
    use_scheduler: bool = True

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")


def _philly_cluster() -> ClusterSpec:
    """Two anonymous GPU flavours, named by their memory size."""
    return ClusterSpec.of(
        (NodeSpec("g12", "GPU12GB", n_gpus=8, n_cpus=64, mem_gb=256, gpu_mem_gb=12), 20),
        (NodeSpec("g24", "GPU24GB", n_gpus=8, n_cpus=64, mem_gb=512, gpu_mem_gb=24), 12),
    )


def _shell(
    rng: np.random.Generator,
    user: UserProfile,
    job_id: int,
    runtime: float,
    n_gpus: int,
    status: JobStatus,
    profile: BehaviorProfile,
    attempts: int,
    gpu_pool: str,
) -> JobRequest:
    return JobRequest(
        job_id=job_id,
        user=user.name,
        submit_time=0.0,
        runtime=runtime,
        n_gpus=n_gpus,
        n_cpus=int(rng.integers(2, 24)),
        mem_gb=float(rng.uniform(8, 64)),
        gpu_type=gpu_pool,
        group=f"vc{int(rng.integers(0, 14)):02d}",  # virtual cluster
        framework=None,
        status=status,
        profile=profile,
        extras={"num_attempts": attempts, "is_new_user": user.is_new},
    )


def _boost_failure(user: UserProfile, status: JobStatus, rng: np.random.Generator) -> JobStatus:
    """New users' jobs flip to failed more often (Table VII C2)."""
    if user.is_new and status == JobStatus.COMPLETED and rng.random() < 0.28:
        return JobStatus.FAILED
    return status


def _debug(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    status = _boost_failure(
        user, status_choice(rng, p_failed=0.10, p_killed=0.22), rng
    )
    return _shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=420.0, sigma=0.9, max_s=7200),
        n_gpus=1,
        status=status,
        profile=BehaviorProfile(
            sm_util_mean=0.0,
            sm_util_jitter=0.0,
            gmem_util_mean=0.0,
            gmem_used_gb=float(rng.uniform(0.0, 1.0)),
            cpu_util_mean=float(rng.uniform(0.5, 8.0)),
        ),
        attempts=1,
        gpu_pool=categorical_choice(rng, {"GPU12GB": 0.6, "GPU24GB": 0.4}),
    )


def _single_train(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    status = _boost_failure(
        user, status_choice(rng, p_failed=0.08, p_killed=0.12), rng
    )
    return _shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=5400.0, sigma=1.1, max_s=4e5),
        n_gpus=1,
        status=status,
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(25, 90)),
            sm_util_jitter=float(rng.uniform(5, 20)),
            gmem_util_mean=float(rng.uniform(20, 70)),
            gmem_used_gb=float(rng.uniform(2, 11)),
            cpu_util_mean=float(rng.uniform(15, 70)),
        ),
        # some retries succeed — "failed jobs do not always get another
        # attempt" and, symmetrically, not every retried job stays failed
        attempts=2 if rng.random() < 0.06 else 1,
        gpu_pool=categorical_choice(rng, {"GPU12GB": 0.65, "GPU24GB": 0.35}),
    )


def _multi_gpu_train(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Distributed training: one worker's failure kills the gang (VII C1)."""
    status = _boost_failure(
        user, status_choice(rng, p_failed=0.46, p_killed=0.08), rng
    )
    failed = status == JobStatus.FAILED
    return _shell(
        rng, user, job_id,
        # PHI1: multi-GPU jobs tend to run very long
        runtime=lognormal_runtime(rng, median_s=40_000.0, sigma=1.0, max_s=8e5),
        n_gpus=int(categorical_choice(rng, {2: 0.45, 4: 0.3, 8: 0.2, 16: 0.05})),
        status=status,
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(20, 80)),
            sm_util_jitter=float(rng.uniform(10, 25)),
            gmem_util_mean=float(rng.uniform(15, 60)),
            gmem_used_gb=float(rng.uniform(4, 22)),
            cpu_util_mean=float(rng.uniform(10, 60)),
        ),
        attempts=int(rng.integers(2, 4)) if failed and rng.random() < 0.5 else 1,
        gpu_pool=categorical_choice(rng, {"GPU12GB": 0.5, "GPU24GB": 0.5}),
    )


def _retry_failer(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Failures Philly auto-retried; min SM hits 0 during crash loops."""
    long_tail = rng.random() < 0.45
    return _shell(
        rng, user, job_id,
        runtime=(
            lognormal_runtime(rng, median_s=120_000.0, sigma=0.5, max_s=9e5)
            if long_tail
            else lognormal_runtime(rng, median_s=1800.0, sigma=0.9, max_s=4e4)
        ),
        n_gpus=1,
        status=JobStatus.FAILED,
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(1.0, 20.0)),
            sm_util_jitter=2.0,
            burstiness=0.6,  # crash loops: min SM = 0 within some minute
            gmem_util_mean=float(rng.uniform(2, 20)),
            gmem_used_gb=float(rng.uniform(1, 10)),
            cpu_util_mean=float(rng.uniform(3, 25)),
        ),
        attempts=int(rng.integers(2, 6)) if rng.random() < 0.7 else 1,
        gpu_pool=categorical_choice(rng, {"GPU12GB": 0.55, "GPU24GB": 0.45}),
    )


def _idle_hold(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Idle jobs parked on the 24 GB flavour (Table IV A1)."""
    status = _boost_failure(
        user, status_choice(rng, p_failed=0.12, p_killed=0.18), rng
    )
    return _shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=1200.0, sigma=0.9, max_s=4e4),
        n_gpus=1,
        status=status,
        profile=BehaviorProfile(
            sm_util_mean=0.0,
            sm_util_jitter=0.0,
            gmem_util_mean=0.0,
            gmem_used_gb=float(rng.uniform(0.0, 2.0)),
            cpu_util_mean=float(rng.uniform(0.5, 6.0)),
        ),
        attempts=1,
        gpu_pool="GPU24GB",
    )


def _philly_archetypes() -> list[Archetype]:
    return [
        Archetype("debug", 0.30, _debug, new_user_multiplier=2.0),
        Archetype("single_train", 0.42, _single_train, new_user_multiplier=0.6),
        Archetype("multi_gpu_train", 0.14, _multi_gpu_train, new_user_multiplier=0.5),
        Archetype("retry_failer", 0.08, _retry_failer, new_user_multiplier=1.5),
        Archetype("idle_hold", 0.06, _idle_hold, new_user_multiplier=1.5),
    ]


def generate_philly(config: PhillyConfig = PhillyConfig()) -> ColumnTable:
    """Generate a merged Philly job table."""
    users = UserPopulation(
        config.n_users,
        # Table VII C2 needs new-user jobs at ≈ 20 % of submissions so the
        # {New User, Failed} pair clears the 5 % support floor
        new_user_fraction=0.55,
        seed=config.seed,
        name_prefix="phuser",
        new_user_weight_damp=1.0,
    )
    mixer = ArchetypeMixer(_philly_archetypes(), users, seed=config.seed)
    jobs = mixer.sample_jobs(config.n_jobs)

    cluster = _philly_cluster()
    duration = calibrated_duration(
        jobs, total_gpus=cluster.total_gpus, target_utilization=config.target_utilization
    )
    rng = np.random.default_rng(config.seed + 1)
    poisson_arrivals(rng, jobs, duration)

    telemetry = TelemetryConfig(sample_interval_s=60.0, max_samples_per_job=256)
    if config.use_scheduler:
        sim = ClusterSimulator(cluster, telemetry=telemetry, seed=config.seed + 2)
        table = sim.run(jobs).to_table()
    else:
        from ...cluster import GPUTelemetryModel, JobRecord

        model = GPUTelemetryModel(telemetry, seed=config.seed + 2)
        rows = []
        for job in jobs:
            summary = model.summarize(job.profile, job.runtime)
            record = JobRecord(
                request=job,
                start_time=job.submit_time + float(rng.exponential(600.0)),
                end_time=job.submit_time + job.runtime,
                node=None,
                assigned_gpu_type=job.gpu_type,
                telemetry=summary.as_dict(),
            )
            rows.append(record.as_row())
        table = ColumnTable.from_records(rows)
    return _finalize_philly_table(table)


def _finalize_philly_table(table: ColumnTable) -> ColumnTable:
    out = table.select(
        [
            "job_id",
            "user",
            "group",
            "queue_delay",
            "runtime",
            "n_gpus",
            "gpu_type",
            "status",
            "sm_util",
            "sm_util_min",
            "sm_util_max",
            "cpu_util",
            "gmem_used_gb",
            "num_attempts",
            "is_new_user",
            "archetype",
        ]
    ).rename({"group": "vc"})
    status = table["status"]
    out.add_column("failed", BooleanColumn(status.equals_scalar("failed")))
    out.add_column("killed", BooleanColumn(status.equals_scalar("killed")))
    n_gpus = table["n_gpus"].values
    out.add_column("multi_gpu", (n_gpus > 1).astype(bool))
    attempts = table["num_attempts"].values
    out.add_column("retried", (attempts > 1).astype(bool))
    out.add_column(
        "gpu_24gb", BooleanColumn(table["gpu_type"].equals_scalar("GPU24GB"))
    )
    return out


def philly_preprocessor() -> TracePreprocessor:
    """The Sec. III-E pipeline configured for the Philly schema."""
    quart = BinningSpec()
    features = [
        FeatureSpec("user_tier", kind="label"),
        FeatureSpec("is_new_user", kind="flag", true_label="New User"),
        FeatureSpec(
            "sm_util", item_feature="SM Util", binning=BinningSpec(zero_label="0%")
        ),
        FeatureSpec(
            "sm_util_min",
            item_feature="Min SM Util",
            binning=BinningSpec(zero_label="0%"),
        ),
        FeatureSpec("sm_util_max", item_feature="Max SM Util", binning=quart),
        FeatureSpec("cpu_util", item_feature="CPU Util", binning=quart),
        FeatureSpec("runtime", item_feature="Runtime", binning=quart),
        FeatureSpec("queue_delay", item_feature="Queue", binning=quart),
        FeatureSpec("multi_gpu", kind="flag", true_label="Multi-GPU"),
        FeatureSpec("gpu_24gb", kind="flag", true_label="GPU 24GB Mem"),
        FeatureSpec("retried", kind="flag", true_label="Num Attempts > 1"),
        FeatureSpec("failed", kind="flag", true_label="Failed"),
        FeatureSpec("killed", kind="flag", true_label="Job Killed"),
    ]
    return TracePreprocessor(
        features=features,
        tier_specs=[
            TierSpec(
                "user",
                "user_tier",
                frequent_label="Freq User",
                moderate_label="Moderate User",
                rare_label="Rare User",
            )
        ],
    )
