"""Synthetic MIT SuperCloud trace (Sec. II, Tables III, VI, CIR1).

SuperCloud is a homogeneous cluster (2× V100 per node) for AI research:
98k jobs over 8 months, GPU metrics sampled at 100 ms — which is why the
trace uniquely exposes *variance* features (SM Util Var, GMem Util Var)
and GPU power, and why the paper can separate always-idle GPUs (A1) from
bursty inference jobs that hold memory but rarely compute (A2).

Archetypes and the findings they plant:

=================  ======  ====================================================
archetype          weight  drives
=================  ======  ====================================================
idle_gpu           0.10    Tables III C1–C2/A1: SM util exactly 0, low GMem
                           util & variance, idle power, low CPU; Fig. 4's
                           ~10 % near-zero mass
new_user_debug     0.08    III C3 (new user → idle GPU) and CIR1 (new user →
                           job killed), boosted for new users
normal_train       0.55    healthy background
inference_hold     0.07    III A2: average SM ≈ 0 with bursts; GPU memory
                           stays occupied ("common for model inference")
long_failer        0.08    VI A2: failures after very long runtimes (node
                           failures / time-limit kills)
low_util_failer    0.12    VI C1–C2/A1: low GMem-util + low-CPU jobs roughly
                           twice as likely to fail
=================  ======  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cluster import (
    BehaviorProfile,
    ClusterSimulator,
    ClusterSpec,
    JobRequest,
    NodeSpec,
    TelemetryConfig,
    UserPopulation,
    UserProfile,
)
from ...dataframe import BooleanColumn, ColumnTable
from ...preprocess import BinningSpec, FeatureSpec, TierSpec, TracePreprocessor
from .base import (
    Archetype,
    ArchetypeMixer,
    calibrated_duration,
    categorical_choice,
    lognormal_runtime,
    poisson_arrivals,
    status_choice,
)

__all__ = [
    "SuperCloudConfig",
    "generate_supercloud",
    "supercloud_preprocessor",
    "SUPERCLOUD_KEYWORDS",
]

SUPERCLOUD_KEYWORDS = {
    "underutilization": "SM Util = 0%",
    "failure": "Failed",
    "killed": "Job Killed",
}


@dataclass(frozen=True, slots=True)
class SuperCloudConfig:
    """Scale and seed of a generated SuperCloud trace."""

    n_jobs: int = 12_000
    n_users: int = 310
    seed: int = 11
    target_utilization: float = 0.6
    use_scheduler: bool = True

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")


def _supercloud_cluster() -> ClusterSpec:
    """Homogeneous: every node two V100s, two Xeon 6248 (40 cores)."""
    return ClusterSpec.of(
        (NodeSpec("node", "V100", n_gpus=2, n_cpus=80, mem_gb=384, gpu_mem_gb=32), 112),
    )


def _request_shell(
    rng: np.random.Generator,
    user: UserProfile,
    job_id: int,
    runtime: float,
    n_gpus: int,
    status,
    profile: BehaviorProfile,
    mem_used_gb: float,
) -> JobRequest:
    return JobRequest(
        job_id=job_id,
        user=user.name,
        submit_time=0.0,
        runtime=runtime,
        n_gpus=n_gpus,
        n_cpus=int(rng.integers(4, 40)),
        mem_gb=float(rng.uniform(8, 128)),
        gpu_type="V100",
        group=None,
        framework=categorical_choice(
            rng, {"PyTorch": 0.5, "Tensorflow": 0.35, "Other Framework": 0.15}
        ),
        status=status,
        profile=profile,
        extras={"mem_used_gb": mem_used_gb, "is_new_user": user.is_new},
    )


def _idle_gpu(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """GPU requested, never touched: zero SM, idle memory and power."""
    return _request_shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=300.0, sigma=0.9, max_s=7200),
        n_gpus=1,
        # the whole low-GMem-util quartile fails at an elevated rate —
        # the paper's Table VI C1 (conf 0.25, lift ~1.9) aggregates over
        # exactly this mixed population
        status=status_choice(rng, p_failed=0.28, p_killed=0.10),
        profile=BehaviorProfile(
            sm_util_mean=0.0,
            sm_util_jitter=0.0,
            gmem_util_mean=0.0,
            gmem_used_gb=float(rng.uniform(0.0, 0.5)),
            cpu_util_mean=float(rng.uniform(0.5, 6.0)),
            idle_power_watts=float(rng.uniform(40, 60)),
        ),
        mem_used_gb=float(rng.uniform(0.5, 4.0)),
    )


def _new_user_debug(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """New users feeling the system out: idle GPUs, frequent manual kills."""
    idle = rng.random() < 0.5
    return _request_shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=240.0, sigma=0.8, max_s=3600),
        n_gpus=1,
        status=status_choice(rng, p_failed=0.15, p_killed=0.52),
        profile=BehaviorProfile(
            sm_util_mean=0.0 if idle else float(rng.uniform(3, 15)),
            sm_util_jitter=0.0 if idle else 3.0,
            gmem_util_mean=0.0 if idle else float(rng.uniform(2, 10)),
            gmem_used_gb=float(rng.uniform(0.0, 2.0)),
            cpu_util_mean=float(rng.uniform(1.0, 10.0)),
        ),
        mem_used_gb=float(rng.uniform(0.5, 6.0)),
    )


def _normal_train(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Healthy research training jobs."""
    return _request_shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=7200.0, sigma=1.2, max_s=6e5),
        n_gpus=int(categorical_choice(rng, {1: 0.97, 2: 0.03})),
        status=status_choice(rng, p_failed=0.07, p_killed=0.10),
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(30, 95)),
            sm_util_jitter=float(rng.uniform(5, 15)),
            gmem_util_mean=float(rng.uniform(20, 75)),
            gmem_used_gb=float(rng.uniform(4, 30)),
            cpu_util_mean=float(rng.uniform(20, 80)),
        ),
        mem_used_gb=float(rng.uniform(8, 192)),
    )


def _inference_hold(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Occasional-inference server: memory held, SMs mostly idle, bursty.

    Mean SM utilisation rounds to ~0 but the variance is high and GPU
    memory used is substantial — the job class behind rule A2's missing
    "low memory" characteristic.
    """
    return _request_shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=36000.0, sigma=0.8, max_s=6e5),
        n_gpus=1,
        status=status_choice(rng, p_failed=0.05, p_killed=0.15),
        profile=BehaviorProfile(
            sm_util_mean=0.45,  # integer-rounded job average reads as 0 %
            sm_util_jitter=0.1,
            burstiness=0.97,  # activity concentrated in rare spikes
            gmem_util_mean=float(rng.uniform(1, 6)),
            gmem_used_gb=float(rng.uniform(8, 28)),  # memory held
            cpu_util_mean=float(rng.uniform(2, 15)),
        ),
        mem_used_gb=float(rng.uniform(4, 32)),
    )


def _long_failer(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Jobs that die late: node failures or exceeded time limits (VI A2)."""
    return _request_shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=100_000.0, sigma=0.5, max_s=1.2e6),
        n_gpus=1,
        status=status_choice(rng, p_failed=0.60, p_killed=0.05),
        profile=BehaviorProfile(
            sm_util_mean=float(rng.uniform(40, 90)),
            gmem_util_mean=float(rng.uniform(25, 70)),
            gmem_used_gb=float(rng.uniform(8, 30)),
            cpu_util_mean=float(rng.uniform(20, 70)),
        ),
        mem_used_gb=float(rng.uniform(16, 256)),
    )


def _low_util_failer(rng: np.random.Generator, user: UserProfile, job_id: int) -> JobRequest:
    """Struggling jobs: every utilisation channel low, elevated failures."""
    idle = rng.random() < 0.15
    return _request_shell(
        rng, user, job_id,
        runtime=lognormal_runtime(rng, median_s=1800.0, sigma=1.0, max_s=1e5),
        n_gpus=1,
        status=status_choice(rng, p_failed=0.38, p_killed=0.12),
        profile=BehaviorProfile(
            sm_util_mean=0.0 if idle else float(rng.uniform(2, 12)),
            sm_util_jitter=0.0 if idle else 2.0,
            gmem_util_mean=float(rng.uniform(0.5, 5.0)),
            gmem_used_gb=float(rng.uniform(0.2, 3.0)),
            cpu_util_mean=float(rng.uniform(1, 8)),
            idle_power_watts=float(rng.uniform(40, 60)),
        ),
        mem_used_gb=float(rng.uniform(1, 16)),
    )


def _supercloud_archetypes() -> list[Archetype]:
    # weights calibrated so that: near-zero SM mass ≈ 10–13 % (Fig. 4),
    # failed ≈ 13 % and killed ≈ 12–15 % (Fig. 5), and the low-GMem-util /
    # failure overlap clears the 5 % support floor (Table VI C1)
    return [
        Archetype("idle_gpu", 0.05, _idle_gpu, new_user_multiplier=2.0),
        Archetype("new_user_debug", 0.05, _new_user_debug, new_user_multiplier=10.0),
        Archetype("normal_train", 0.66, _normal_train, new_user_multiplier=0.5),
        Archetype("inference_hold", 0.03, _inference_hold),
        Archetype("long_failer", 0.11, _long_failer, new_user_multiplier=0.4),
        Archetype("low_util_failer", 0.10, _low_util_failer),
    ]


def generate_supercloud(config: SuperCloudConfig = SuperCloudConfig()) -> ColumnTable:
    """Generate a merged SuperCloud job table."""
    users = UserPopulation(
        config.n_users,
        # CIR1 needs new-user jobs to clear the 5 % support floor when
        # intersected with kills: P(job from new user) ≈ 0.19 (the top
        # decile of submitters is never new, so the raw fraction is high)
        new_user_fraction=0.62,
        seed=config.seed,
        name_prefix="scuser",
        new_user_weight_damp=1.0,
    )
    mixer = ArchetypeMixer(_supercloud_archetypes(), users, seed=config.seed)
    jobs = mixer.sample_jobs(config.n_jobs)

    cluster = _supercloud_cluster()
    duration = calibrated_duration(
        jobs, total_gpus=cluster.total_gpus, target_utilization=config.target_utilization
    )
    rng = np.random.default_rng(config.seed + 1)
    poisson_arrivals(rng, jobs, duration)

    # 100 ms sampling: high effective sample counts per job, capped
    telemetry = TelemetryConfig(sample_interval_s=0.1, max_samples_per_job=512)
    if config.use_scheduler:
        sim = ClusterSimulator(cluster, telemetry=telemetry, seed=config.seed + 2)
        table = sim.run(jobs).to_table()
    else:
        from ...cluster import GPUTelemetryModel, JobRecord

        model = GPUTelemetryModel(telemetry, seed=config.seed + 2)
        rows = []
        for job in jobs:
            summary = model.summarize(job.profile, job.runtime)
            record = JobRecord(
                request=job,
                start_time=job.submit_time + float(rng.exponential(300.0)),
                end_time=job.submit_time + job.runtime,
                node=None,
                assigned_gpu_type="V100",
                telemetry=summary.as_dict(),
            )
            rows.append(record.as_row())
        table = ColumnTable.from_records(rows)
    return _finalize_supercloud_table(table)


def _finalize_supercloud_table(table: ColumnTable) -> ColumnTable:
    out = table.select(
        [
            "job_id",
            "user",
            "queue_delay",
            "runtime",
            "n_gpus",
            "n_cpus",
            "framework",
            "status",
            "mem_used_gb",
            "sm_util",
            "sm_util_var",
            "gmem_util",
            "gmem_util_var",
            "gmem_used_gb",
            "gpu_power",
            "cpu_util",
            "is_new_user",
            "archetype",
        ]
    )
    status = table["status"]
    out.add_column("failed", BooleanColumn(status.equals_scalar("failed")))
    out.add_column("killed", BooleanColumn(status.equals_scalar("killed")))
    return out


def supercloud_preprocessor() -> TracePreprocessor:
    """The Sec. III-E pipeline configured for the SuperCloud schema."""
    quart = BinningSpec()
    features = [
        FeatureSpec("user_tier", kind="label"),
        FeatureSpec("is_new_user", kind="flag", true_label="New User"),
        FeatureSpec(
            "sm_util", item_feature="SM Util", binning=BinningSpec(zero_label="0%")
        ),
        FeatureSpec("sm_util_var", item_feature="SM Util Var", binning=quart),
        FeatureSpec("gmem_util", item_feature="GMem Util", binning=quart),
        FeatureSpec("gmem_util_var", item_feature="GMem Util Var", binning=quart),
        FeatureSpec(
            "gmem_used_gb",
            item_feature="GMem Used",
            binning=BinningSpec(zero_label="0GB"),
        ),
        FeatureSpec("gpu_power", item_feature="GPU Power", binning=quart),
        FeatureSpec("cpu_util", item_feature="CPU Util", binning=quart),
        FeatureSpec("mem_used_gb", item_feature="Memory Used", binning=quart),
        FeatureSpec("runtime", item_feature="Runtime", binning=quart),
        FeatureSpec("failed", kind="flag", true_label="Failed"),
        FeatureSpec("killed", kind="flag", true_label="Job Killed"),
    ]
    return TracePreprocessor(
        features=features,
        tier_specs=[
            TierSpec(
                "user",
                "user_tier",
                frequent_label="Freq User",
                moderate_label="Moderate User",
                rare_label="Rare User",
            )
        ],
    )
