"""Shared machinery for the synthetic trace generators.

Association rule mining only observes the joint distribution of one-hot
items, so a generator that plants the paper's conditional probabilities
reproduces the paper's rule *shapes* (which antecedents imply which
consequents, the ordering of lifts) — the substitution argument recorded
in DESIGN.md.

Each trace generator defines a set of :class:`Archetype` objects — latent
job classes like "debug/template job" or "distributed flaky job" — whose
mixture induces the associations.  The machinery here handles:

* archetype sampling with per-user modifiers (new users skew toward
  debug-style archetypes);
* heavy-tailed runtime draws (log-normal, the standard fit for cluster
  job runtimes);
* self-calibrating arrival processes: the submission window is derived
  from total GPU demand and a target utilisation, so scheduler-produced
  queue delays are meaningful at any generated scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ...cluster.job import JobRequest, JobStatus
from ...cluster.users import UserPopulation, UserProfile

__all__ = [
    "Archetype",
    "ArchetypeMixer",
    "lognormal_runtime",
    "categorical_choice",
    "status_choice",
    "poisson_arrivals",
    "calibrated_duration",
]


@dataclass(frozen=True, slots=True)
class Archetype:
    """A latent job class: mixture weight + a sampler for its jobs.

    ``sampler(rng, user, job_id) -> JobRequest`` draws one job of this
    class (submit_time left 0; arrival assignment happens afterwards).
    ``new_user_multiplier`` scales this archetype's weight for new users,
    planting the user-tenure associations of the case studies.
    """

    name: str
    weight: float
    sampler: Callable[[np.random.Generator, UserProfile, int], JobRequest]
    new_user_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("archetype weight must be >= 0")
        if self.new_user_multiplier < 0:
            raise ValueError("new_user_multiplier must be >= 0")


class ArchetypeMixer:
    """Samples jobs from an archetype mixture over a user population."""

    def __init__(
        self,
        archetypes: Sequence[Archetype],
        users: UserPopulation,
        seed: int = 0,
    ):
        if not archetypes:
            raise ValueError("at least one archetype is required")
        total = sum(a.weight for a in archetypes)
        if total <= 0:
            raise ValueError("archetype weights must sum to > 0")
        self.archetypes = list(archetypes)
        self.users = users
        self.rng = np.random.default_rng(seed)
        self._base_weights = np.asarray([a.weight / total for a in archetypes])
        self._new_weights = self._base_weights * np.asarray(
            [a.new_user_multiplier for a in archetypes]
        )
        new_total = self._new_weights.sum()
        if new_total <= 0:
            raise ValueError("new-user archetype weights must sum to > 0")
        self._new_weights = self._new_weights / new_total

    def sample_jobs(self, n_jobs: int) -> list[JobRequest]:
        """Draw *n_jobs* (archetype, user) pairs and run the samplers."""
        users = self.users.sample(n_jobs, self.rng)
        jobs: list[JobRequest] = []
        k = len(self.archetypes)
        for job_id, user in enumerate(users):
            weights = self._new_weights if user.is_new else self._base_weights
            arch = self.archetypes[int(self.rng.choice(k, p=weights))]
            job = arch.sampler(self.rng, user, job_id)
            job.extras.setdefault("archetype", arch.name)
            jobs.append(job)
        return jobs


def lognormal_runtime(
    rng: np.random.Generator,
    median_s: float,
    sigma: float = 1.0,
    min_s: float = 5.0,
    max_s: float | None = None,
) -> float:
    """Heavy-tailed runtime draw around a median, clamped to [min, max]."""
    value = float(rng.lognormal(np.log(median_s), sigma))
    if max_s is not None:
        value = min(value, max_s)
    return max(value, min_s)


def categorical_choice(
    rng: np.random.Generator, options: dict[Any, float]
) -> Any:
    """Weighted choice from a {label: weight} dict (weights normalised)."""
    labels = list(options)
    weights = np.asarray([options[l] for l in labels], dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("choice weights must sum to > 0")
    return labels[int(rng.choice(len(labels), p=weights / total))]


def status_choice(
    rng: np.random.Generator,
    p_failed: float,
    p_killed: float = 0.0,
) -> JobStatus:
    """Draw a terminal status from failure/kill probabilities."""
    if p_failed + p_killed > 1.0 + 1e-9:
        raise ValueError("p_failed + p_killed must be <= 1")
    u = rng.random()
    if u < p_failed:
        return JobStatus.FAILED
    if u < p_failed + p_killed:
        return JobStatus.KILLED
    return JobStatus.COMPLETED


def calibrated_duration(
    jobs: Sequence[JobRequest], total_gpus: int, target_utilization: float = 0.75
) -> float:
    """Submission-window length that hits a target mean GPU utilisation.

    ``sum(gpus × runtime) / (total_gpus × duration) = target`` — solving
    for duration keeps contention (and hence queue-delay structure)
    scale-invariant when the generated job count changes.
    """
    if total_gpus <= 0:
        raise ValueError("total_gpus must be > 0")
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError("target_utilization must be in (0, 1]")
    demand = sum(max(j.n_gpus, 1) * j.runtime for j in jobs)
    return demand / (total_gpus * target_utilization)


def poisson_arrivals(
    rng: np.random.Generator, jobs: Sequence[JobRequest], duration_s: float
) -> None:
    """Assign uniform-order-statistics submit times over [0, duration].

    (For a Poisson process conditioned on its count, arrival times are
    uniform order statistics — cheaper than summing exponential gaps.)
    """
    times = np.sort(rng.uniform(0.0, duration_s, size=len(jobs)))
    for job, t in zip(jobs, times):
        job.submit_time = float(t)


def diurnal_arrivals(
    rng: np.random.Generator,
    jobs: Sequence[JobRequest],
    duration_s: float,
    peak_ratio: float = 3.0,
    peak_hour: float = 15.0,
) -> None:
    """Assign submit times with a day/night intensity cycle.

    Production submission rates follow working hours; modelling them as a
    sinusoidal non-homogeneous Poisson process with peak-to-trough ratio
    *peak_ratio* (peak at *peak_hour* local time) reproduces the diurnal
    queue-delay structure trace studies report.  Sampling is by thinning:
    uniform candidates are accepted with probability λ(t)/λmax.
    """
    if peak_ratio < 1.0:
        raise ValueError("peak_ratio must be >= 1")
    if not jobs:
        return
    day = 86_400.0
    amplitude = (peak_ratio - 1.0) / (peak_ratio + 1.0)
    phase = 2.0 * np.pi * peak_hour / 24.0

    def intensity(t: np.ndarray) -> np.ndarray:
        return 1.0 + amplitude * np.cos(2.0 * np.pi * t / day - phase)

    accepted: list[np.ndarray] = []
    need = len(jobs)
    lam_max = 1.0 + amplitude
    while need > 0:
        candidates = rng.uniform(0.0, duration_s, size=max(2 * need, 64))
        keep = rng.uniform(0.0, lam_max, size=candidates.size) < intensity(candidates)
        batch = candidates[keep][:need]
        accepted.append(batch)
        need -= batch.size
    times = np.sort(np.concatenate(accepted))
    for job, t in zip(jobs, times):
        job.submit_time = float(t)
