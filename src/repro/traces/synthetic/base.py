"""Shared machinery for the synthetic trace generators.

Association rule mining only observes the joint distribution of one-hot
items, so a generator that plants the paper's conditional probabilities
reproduces the paper's rule *shapes* (which antecedents imply which
consequents, the ordering of lifts) — the substitution argument recorded
in DESIGN.md.

Each trace generator defines a set of :class:`Archetype` objects — latent
job classes like "debug/template job" or "distributed flaky job" — whose
mixture induces the associations.  The machinery here handles:

* archetype sampling with per-user modifiers (new users skew toward
  debug-style archetypes);
* heavy-tailed runtime draws (log-normal, the standard fit for cluster
  job runtimes);
* self-calibrating arrival processes: the submission window is derived
  from total GPU demand and a target utilisation, so scheduler-produced
  queue delays are meaningful at any generated scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ...cluster.job import JobRequest, JobStatus
from ...cluster.users import UserPopulation, UserProfile
from ...dataframe import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    ColumnTable,
    NumericColumn,
)

__all__ = [
    "Archetype",
    "ArchetypeMixer",
    "BatchContext",
    "CatBlock",
    "lognormal_runtime",
    "lognormal_runtime_batch",
    "categorical_choice",
    "categorical_codes",
    "status_choice",
    "status_codes",
    "poisson_arrivals",
    "calibrated_duration",
]


@dataclass(frozen=True, slots=True)
class CatBlock:
    """A categorical column block: int codes into a category list.

    The columnar samplers' counterpart of a string column — ``-1`` codes
    mark missing values.  Blocks from different archetypes are merged by
    remapping their categories into one shared list.
    """

    codes: np.ndarray
    categories: list[str]

    @classmethod
    def full(cls, n: int, label: str | None) -> "CatBlock":
        """A constant block: every row is *label* (None → all missing)."""
        if label is None:
            return cls(np.full(n, -1, dtype=np.int32), [])
        return cls(np.zeros(n, dtype=np.int32), [label])


@dataclass(frozen=True, slots=True)
class BatchContext:
    """Per-archetype context handed to a batched sampler.

    ``job_ids`` are the global row indices this archetype was assigned;
    ``is_new`` flags which of those rows belong to new users.
    """

    n: int
    job_ids: np.ndarray
    is_new: np.ndarray


#: a batched sampler: (rng, ctx) → column name → block for ctx.n rows;
#: float/int arrays become numeric columns, bool arrays boolean columns,
#: CatBlock categorical columns
BatchSampler = Callable[
    [np.random.Generator, BatchContext], dict[str, "np.ndarray | CatBlock"]
]


@dataclass(frozen=True, slots=True)
class Archetype:
    """A latent job class: mixture weight + a sampler for its jobs.

    ``sampler(rng, user, job_id) -> JobRequest`` draws one job of this
    class (submit_time left 0; arrival assignment happens afterwards).
    ``new_user_multiplier`` scales this archetype's weight for new users,
    planting the user-tenure associations of the case studies.
    ``batch_sampler``, when provided, draws all of the archetype's jobs
    at once as numpy column blocks — the columnar fast path used by
    :meth:`ArchetypeMixer.sample_columns`; the per-job ``sampler`` stays
    the oracle for the scheduler/simulator path.
    """

    name: str
    weight: float
    sampler: Callable[[np.random.Generator, UserProfile, int], JobRequest]
    new_user_multiplier: float = 1.0
    batch_sampler: BatchSampler | None = None

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("archetype weight must be >= 0")
        if self.new_user_multiplier < 0:
            raise ValueError("new_user_multiplier must be >= 0")


class ArchetypeMixer:
    """Samples jobs from an archetype mixture over a user population."""

    def __init__(
        self,
        archetypes: Sequence[Archetype],
        users: UserPopulation,
        seed: int = 0,
    ):
        if not archetypes:
            raise ValueError("at least one archetype is required")
        total = sum(a.weight for a in archetypes)
        if total <= 0:
            raise ValueError("archetype weights must sum to > 0")
        self.archetypes = list(archetypes)
        self.users = users
        self.rng = np.random.default_rng(seed)
        self._base_weights = np.asarray([a.weight / total for a in archetypes])
        self._new_weights = self._base_weights * np.asarray(
            [a.new_user_multiplier for a in archetypes]
        )
        new_total = self._new_weights.sum()
        if new_total <= 0:
            raise ValueError("new-user archetype weights must sum to > 0")
        self._new_weights = self._new_weights / new_total

    def sample_jobs(self, n_jobs: int) -> list[JobRequest]:
        """Draw *n_jobs* (archetype, user) pairs and run the samplers."""
        users = self.users.sample(n_jobs, self.rng)
        jobs: list[JobRequest] = []
        k = len(self.archetypes)
        for job_id, user in enumerate(users):
            weights = self._new_weights if user.is_new else self._base_weights
            arch = self.archetypes[int(self.rng.choice(k, p=weights))]
            job = arch.sampler(self.rng, user, job_id)
            job.extras.setdefault("archetype", arch.name)
            jobs.append(job)
        return jobs

    def sample_columns(self, n_jobs: int) -> ColumnTable:
        """Columnar counterpart of :meth:`sample_jobs`: no per-job Python.

        Draws users and archetype assignments as whole arrays, runs each
        archetype's ``batch_sampler`` once over its assigned rows, and
        merges the blocks with masked fills into a :class:`ColumnTable`
        (``job_id``, ``user``, ``archetype`` plus whatever the samplers
        emit).  All archetypes share this mixer's RNG stream, like the
        per-job path.  Samplers may override the default ``user`` column
        for their rows (e.g. a single dominant submitter).
        """
        missing = [a.name for a in self.archetypes if a.batch_sampler is None]
        if missing:
            raise ValueError(
                f"archetypes {missing} have no batch_sampler; "
                "columnar generation is unavailable for this trace"
            )
        rng = self.rng
        user_idx = self.users.sample_indices(n_jobs, rng)
        is_new_by_user = np.asarray(
            [u.is_new for u in self.users.users], dtype=bool
        )
        is_new = is_new_by_user[user_idx]
        k = len(self.archetypes)
        arch = np.empty(n_jobs, dtype=np.int32)
        old = ~is_new
        arch[old] = rng.choice(k, size=int(old.sum()), p=self._base_weights)
        arch[is_new] = rng.choice(k, size=int(is_new.sum()), p=self._new_weights)

        order: list[str] = ["job_id", "user", "archetype"]
        numeric: dict[str, np.ndarray] = {
            "job_id": np.arange(n_jobs, dtype=np.float64)
        }
        boolean: dict[str, np.ndarray] = {}
        cat_codes: dict[str, np.ndarray] = {
            "user": user_idx.astype(np.int32),
            "archetype": arch,
        }
        cat_categories: dict[str, list[str]] = {
            "user": [u.name for u in self.users.users],
            "archetype": [a.name for a in self.archetypes],
        }
        cat_index: dict[str, dict[str, int]] = {
            name: {c: i for i, c in enumerate(cats)}
            for name, cats in cat_categories.items()
        }

        def _fill(name: str, rows: np.ndarray, block: "np.ndarray | CatBlock") -> None:
            if isinstance(block, CatBlock):
                if name in numeric or name in boolean:
                    raise TypeError(f"column {name!r} mixes block types")
                if name not in cat_codes:
                    cat_codes[name] = np.full(n_jobs, -1, dtype=np.int32)
                    cat_categories[name] = []
                    cat_index[name] = {}
                    order.append(name)
                index = cat_index[name]
                categories = cat_categories[name]
                remap = np.empty(len(block.categories) + 1, dtype=np.int32)
                remap[-1] = -1  # block code -1 stays missing
                for i, cat in enumerate(block.categories):
                    code = index.get(cat)
                    if code is None:
                        code = len(categories)
                        index[cat] = code
                        categories.append(cat)
                    remap[i] = code
                cat_codes[name][rows] = remap[np.asarray(block.codes, dtype=np.int64)]
                return
            block = np.asarray(block)
            if block.dtype.kind == "b":
                if name in numeric or name in cat_codes:
                    raise TypeError(f"column {name!r} mixes block types")
                if name not in boolean:
                    boolean[name] = np.zeros(n_jobs, dtype=bool)
                    order.append(name)
                boolean[name][rows] = block
            elif block.dtype.kind in "iuf":
                if name in boolean or name in cat_codes:
                    raise TypeError(f"column {name!r} mixes block types")
                if name not in numeric:
                    numeric[name] = np.full(n_jobs, np.nan, dtype=np.float64)
                    order.append(name)
                numeric[name][rows] = block.astype(np.float64, copy=False)
            else:
                raise TypeError(
                    f"column {name!r}: unsupported block dtype {block.dtype!r}"
                )

        for i, archetype in enumerate(self.archetypes):
            rows = np.flatnonzero(arch == i)
            if rows.size == 0:
                continue
            ctx = BatchContext(n=int(rows.size), job_ids=rows, is_new=is_new[rows])
            blocks = archetype.batch_sampler(rng, ctx)
            for name, block in blocks.items():
                _fill(name, rows, block)

        columns: dict[str, Column] = {}
        for name in order:
            if name in numeric:
                columns[name] = NumericColumn(numeric[name])
            elif name in boolean:
                columns[name] = BooleanColumn(boolean[name])
            else:
                columns[name] = CategoricalColumn(
                    cat_codes[name], cat_categories[name]
                )
        return ColumnTable(columns)


def lognormal_runtime(
    rng: np.random.Generator,
    median_s: float,
    sigma: float = 1.0,
    min_s: float = 5.0,
    max_s: float | None = None,
) -> float:
    """Heavy-tailed runtime draw around a median, clamped to [min, max]."""
    value = float(rng.lognormal(np.log(median_s), sigma))
    if max_s is not None:
        value = min(value, max_s)
    return max(value, min_s)


def lognormal_runtime_batch(
    rng: np.random.Generator,
    n: int,
    median_s: float,
    sigma: float = 1.0,
    min_s: float = 5.0,
    max_s: float | None = None,
) -> np.ndarray:
    """Batched :func:`lognormal_runtime`: *n* clamped heavy-tailed draws."""
    values = rng.lognormal(np.log(median_s), sigma, size=n)
    if max_s is not None:
        np.minimum(values, max_s, out=values)
    np.maximum(values, min_s, out=values)
    return values


def categorical_choice(
    rng: np.random.Generator, options: dict[Any, float]
) -> Any:
    """Weighted choice from a {label: weight} dict (weights normalised)."""
    labels = list(options)
    weights = np.asarray([options[l] for l in labels], dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("choice weights must sum to > 0")
    return labels[int(rng.choice(len(labels), p=weights / total))]


def categorical_codes(
    rng: np.random.Generator, n: int, options: dict[Any, float]
) -> CatBlock:
    """Batched :func:`categorical_choice`: *n* weighted label draws.

    ``None`` labels are drawn with their weight but encode as missing
    (code ``-1``), matching the per-job samplers that emit None values.
    """
    labels = list(options)
    weights = np.asarray([options[l] for l in labels], dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("choice weights must sum to > 0")
    draws = rng.choice(len(labels), size=n, p=weights / total).astype(np.int32)
    categories = [str(l) for l in labels if l is not None]
    if len(categories) != len(labels):
        remap = np.empty(len(labels), dtype=np.int32)
        next_code = 0
        for i, label in enumerate(labels):
            if label is None:
                remap[i] = -1
            else:
                remap[i] = next_code
                next_code += 1
        draws = remap[draws]
    return CatBlock(draws, categories)


def status_choice(
    rng: np.random.Generator,
    p_failed: float,
    p_killed: float = 0.0,
) -> JobStatus:
    """Draw a terminal status from failure/kill probabilities."""
    if p_failed + p_killed > 1.0 + 1e-9:
        raise ValueError("p_failed + p_killed must be <= 1")
    u = rng.random()
    if u < p_failed:
        return JobStatus.FAILED
    if u < p_failed + p_killed:
        return JobStatus.KILLED
    return JobStatus.COMPLETED


def status_codes(
    rng: np.random.Generator,
    n: int,
    p_failed: float,
    p_killed: float = 0.0,
) -> CatBlock:
    """Batched :func:`status_choice`: *n* terminal-status draws."""
    if p_failed + p_killed > 1.0 + 1e-9:
        raise ValueError("p_failed + p_killed must be <= 1")
    u = rng.random(n)
    codes = np.zeros(n, dtype=np.int32)
    codes[u < p_failed + p_killed] = 2
    codes[u < p_failed] = 1
    return CatBlock(
        codes,
        [JobStatus.COMPLETED.value, JobStatus.FAILED.value, JobStatus.KILLED.value],
    )


def calibrated_duration(
    jobs: Sequence[JobRequest], total_gpus: int, target_utilization: float = 0.75
) -> float:
    """Submission-window length that hits a target mean GPU utilisation.

    ``sum(gpus × runtime) / (total_gpus × duration) = target`` — solving
    for duration keeps contention (and hence queue-delay structure)
    scale-invariant when the generated job count changes.
    """
    if total_gpus <= 0:
        raise ValueError("total_gpus must be > 0")
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError("target_utilization must be in (0, 1]")
    demand = sum(max(j.n_gpus, 1) * j.runtime for j in jobs)
    return demand / (total_gpus * target_utilization)


def poisson_arrivals(
    rng: np.random.Generator, jobs: Sequence[JobRequest], duration_s: float
) -> None:
    """Assign uniform-order-statistics submit times over [0, duration].

    (For a Poisson process conditioned on its count, arrival times are
    uniform order statistics — cheaper than summing exponential gaps.)
    """
    times = np.sort(rng.uniform(0.0, duration_s, size=len(jobs)))
    for job, t in zip(jobs, times):
        job.submit_time = float(t)


def diurnal_arrivals(
    rng: np.random.Generator,
    jobs: Sequence[JobRequest],
    duration_s: float,
    peak_ratio: float = 3.0,
    peak_hour: float = 15.0,
) -> None:
    """Assign submit times with a day/night intensity cycle.

    Production submission rates follow working hours; modelling them as a
    sinusoidal non-homogeneous Poisson process with peak-to-trough ratio
    *peak_ratio* (peak at *peak_hour* local time) reproduces the diurnal
    queue-delay structure trace studies report.  Sampling is by thinning:
    uniform candidates are accepted with probability λ(t)/λmax.
    """
    if peak_ratio < 1.0:
        raise ValueError("peak_ratio must be >= 1")
    if not jobs:
        return
    day = 86_400.0
    amplitude = (peak_ratio - 1.0) / (peak_ratio + 1.0)
    phase = 2.0 * np.pi * peak_hour / 24.0

    def intensity(t: np.ndarray) -> np.ndarray:
        return 1.0 + amplitude * np.cos(2.0 * np.pi * t / day - phase)

    accepted: list[np.ndarray] = []
    need = len(jobs)
    lam_max = 1.0 + amplitude
    while need > 0:
        candidates = rng.uniform(0.0, duration_s, size=max(2 * need, 64))
        keep = rng.uniform(0.0, lam_max, size=candidates.size) < intensity(candidates)
        batch = candidates[keep][:need]
        accepted.append(batch)
        need -= batch.size
    times = np.sort(np.concatenate(accepted))
    for job, t in zip(jobs, times):
        job.submit_time = float(t)
