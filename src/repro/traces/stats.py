"""Descriptive trace characterisation.

Trace-analysis papers (this one's Sec. II plus the studies it cites)
open with descriptive statistics before any mining: job counts, user
activity concentration, utilisation and runtime distributions, failure
shares.  This module computes that overview for any job table with the
standard column names, backing Table I and sanity checks in benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..dataframe import ColumnTable, value_counts

__all__ = ["TraceStats", "characterize", "gini"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed).

    Used on per-user job counts: production traces show high submission
    concentration (the basis of the "frequent user" tier).
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("gini of an empty sample")
    if (arr < 0).any():
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * arr).sum() / (n * total)) - (n + 1.0) / n)


@dataclass(frozen=True, slots=True)
class TraceStats:
    """One trace's descriptive overview."""

    n_jobs: int
    n_users: int
    user_gini: float
    status_shares: dict[str, float]
    sm_util_zero_share: float
    runtime_median_s: float
    runtime_p90_s: float
    queue_median_s: float
    gpu_request_mean: float

    def render(self) -> str:
        statuses = ", ".join(
            f"{k}: {v:.1%}" for k, v in sorted(self.status_shares.items())
        )
        return "\n".join(
            [
                f"jobs            : {self.n_jobs}",
                f"users           : {self.n_users} (gini {self.user_gini:.2f})",
                f"exit status     : {statuses}",
                f"SM util = 0%    : {self.sm_util_zero_share:.1%}",
                f"runtime         : median {self.runtime_median_s:.0f}s, "
                f"p90 {self.runtime_p90_s:.0f}s",
                f"queue delay     : median {self.queue_median_s:.0f}s",
                f"mean GPU request: {self.gpu_request_mean:.2f}",
            ]
        )


def characterize(table: ColumnTable) -> TraceStats:
    """Compute the descriptive overview of a job table.

    Requires ``user``, ``status``, ``sm_util``, ``runtime`` and
    ``queue_delay`` columns; ``n_gpus`` is optional (defaults to 1 per
    job, the SuperCloud case).
    """
    for required in ("user", "status", "sm_util", "runtime", "queue_delay"):
        if required not in table:
            raise ValueError(f"characterize needs a {required!r} column")
    per_user = np.asarray([count for _, count in value_counts(table, "user")])
    statuses = Counter(table["status"].to_list())
    n = len(table)
    sm = table["sm_util"].values
    runtime = table["runtime"].values
    queue = table["queue_delay"].values
    if "n_gpus" in table:
        gpu_mean = float(np.nanmean(table["n_gpus"].values))
    else:
        gpu_mean = 1.0
    return TraceStats(
        n_jobs=n,
        n_users=int(per_user.size),
        user_gini=gini(per_user),
        status_shares={k: v / n for k, v in statuses.items()},
        sm_util_zero_share=float(np.mean(sm == 0)),
        runtime_median_s=float(np.nanmedian(runtime)),
        runtime_p90_s=float(np.nanquantile(runtime, 0.9)),
        queue_median_s=float(np.nanmedian(queue)),
        gpu_request_mean=gpu_mean,
    )
