"""Registry of the three studied traces.

Bundles each trace's generator, its configured Sec. III-E preprocessor and
its case-study keywords behind one name, so examples and benchmarks can be
written trace-generically — the portability property the paper claims for
the workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..dataframe import ColumnTable
from ..preprocess import TracePreprocessor
from .synthetic.pai import PAI_KEYWORDS, PAIConfig, generate_pai, pai_preprocessor
from .synthetic.philly import (
    PHILLY_KEYWORDS,
    PhillyConfig,
    generate_philly,
    philly_preprocessor,
)
from .synthetic.supercloud import (
    SUPERCLOUD_KEYWORDS,
    SuperCloudConfig,
    generate_supercloud,
    supercloud_preprocessor,
)

__all__ = ["TraceDefinition", "TRACES", "get_trace", "list_traces"]


@dataclass(frozen=True, slots=True)
class TraceDefinition:
    """Everything needed to analyse one trace end to end."""

    name: str
    display_name: str
    operator: str
    generate: Callable[..., ColumnTable]
    config_cls: type
    make_preprocessor: Callable[[], TracePreprocessor]
    keywords: dict[str, str]
    #: reference scale of the real trace (Table I), for the overview bench
    paper_jobs: int
    paper_users: int
    paper_gpus: int
    paper_duration: str

    def generate_scaled(self, n_jobs: int | None = None, **overrides: Any) -> ColumnTable:
        """Generate the trace at a chosen scale (paper-default otherwise)."""
        if n_jobs is not None:
            overrides["n_jobs"] = n_jobs
        config = self.config_cls(**overrides)
        return self.generate(config)


TRACES: dict[str, TraceDefinition] = {
    "pai": TraceDefinition(
        name="pai",
        display_name="PAI",
        operator="Alibaba",
        generate=generate_pai,
        config_cls=PAIConfig,
        make_preprocessor=pai_preprocessor,
        keywords=PAI_KEYWORDS,
        paper_jobs=850_000,
        paper_users=1242,
        paper_gpus=6000,
        paper_duration="2 months",
    ),
    "supercloud": TraceDefinition(
        name="supercloud",
        display_name="SuperCloud",
        operator="MIT",
        generate=generate_supercloud,
        config_cls=SuperCloudConfig,
        make_preprocessor=supercloud_preprocessor,
        keywords=SUPERCLOUD_KEYWORDS,
        paper_jobs=98_000,
        paper_users=310,
        paper_gpus=450,
        paper_duration="8 months",
    ),
    "philly": TraceDefinition(
        name="philly",
        display_name="Philly",
        operator="Microsoft",
        generate=generate_philly,
        config_cls=PhillyConfig,
        make_preprocessor=philly_preprocessor,
        keywords=PHILLY_KEYWORDS,
        paper_jobs=100_000,
        paper_users=319,
        paper_gpus=2500,
        paper_duration="75 days",
    ),
}


def get_trace(name: str) -> TraceDefinition:
    """Look up a trace by name ('pai', 'supercloud', 'philly')."""
    try:
        return TRACES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown trace {name!r}; have {sorted(TRACES)}") from None


def list_traces() -> list[str]:
    return sorted(TRACES)
