"""Trace substrate: synthetic generators for PAI, SuperCloud and Philly.

The public GPU traces the paper analyses are not shipped with this
repository (no network access), so each trace is replaced by a calibrated
synthetic generator running through the cluster-simulator substrate; see
DESIGN.md §2 for the substitution argument.
"""

from .loader import load_trace, save_trace
from .registry import TRACES, TraceDefinition, get_trace, list_traces
from .stats import TraceStats, characterize, gini
from .synthetic.pai import PAI_KEYWORDS, PAIConfig, generate_pai, pai_preprocessor
from .synthetic.philly import (
    PHILLY_KEYWORDS,
    PhillyConfig,
    generate_philly,
    philly_preprocessor,
)
from .synthetic.supercloud import (
    SUPERCLOUD_KEYWORDS,
    SuperCloudConfig,
    generate_supercloud,
    supercloud_preprocessor,
)

__all__ = [
    "TraceDefinition",
    "TRACES",
    "get_trace",
    "list_traces",
    "save_trace",
    "load_trace",
    "TraceStats",
    "characterize",
    "gini",
    "PAIConfig",
    "generate_pai",
    "pai_preprocessor",
    "PAI_KEYWORDS",
    "SuperCloudConfig",
    "generate_supercloud",
    "supercloud_preprocessor",
    "SUPERCLOUD_KEYWORDS",
    "PhillyConfig",
    "generate_philly",
    "philly_preprocessor",
    "PHILLY_KEYWORDS",
]
