"""Evaluation utilities for rule-based prediction.

Provides the train/test protocol the paper's takeaways imply: mine rules
on one slice of the trace, predict the target on a held-out slice, and
report the standard binary-classification metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.transactions import TransactionDatabase

__all__ = ["ClassificationReport", "evaluate_predictions", "split_database"]


@dataclass(frozen=True, slots=True)
class ClassificationReport:
    """Confusion matrix plus the derived rates."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def n(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.n if self.n else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def base_rate(self) -> float:
        """Positive share — the no-skill precision baseline."""
        return (self.tp + self.fn) / self.n if self.n else 0.0

    def __str__(self) -> str:
        return (
            f"n={self.n} base_rate={self.base_rate:.3f} "
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f} accuracy={self.accuracy:.3f}"
        )


def evaluate_predictions(
    predicted: np.ndarray, actual: np.ndarray
) -> ClassificationReport:
    """Confusion matrix of two boolean arrays."""
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    return ClassificationReport(
        tp=int((predicted & actual).sum()),
        fp=int((predicted & ~actual).sum()),
        tn=int((~predicted & ~actual).sum()),
        fn=int((~predicted & actual).sum()),
    )


def split_database(
    db: TransactionDatabase, train_fraction: float = 0.7, seed: int = 0
) -> tuple[TransactionDatabase, TransactionDatabase]:
    """Random train/test split of a transaction database.

    The split is by transaction (job), with a shuffled permutation so
    arrival-time structure does not leak across the boundary.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    n = len(db)
    order = np.random.default_rng(seed).permutation(n)
    cut = int(round(train_fraction * n))
    if cut == 0 or cut == n:
        raise ValueError("split leaves an empty side; adjust train_fraction")
    return db.sample(order[:cut].tolist()), db.sample(order[cut:].tolist())
