"""Rule-based prediction — validating the paper's classifier takeaways."""

from .classifier import ClassifierRule, RuleClassifier
from .evaluation import ClassificationReport, evaluate_predictions, split_database

__all__ = [
    "RuleClassifier",
    "ClassifierRule",
    "ClassificationReport",
    "evaluate_predictions",
    "split_database",
]
