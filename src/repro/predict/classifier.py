"""Rule-based classification from mined association rules.

The paper's takeaways repeatedly point from *rules* to *predictors*:

* PAI underutilisation: "a prediction model can be used to identify jobs
  that tend to underutilize GPU cores at the job submission stage" —
  the antecedents of the C-rules are submission-time features;
* PAI failure: "the presence of multiple strong rules indicates that a
  simple rule-based or tree-based classifier will suffice";
* SuperCloud/Philly failure: "more complex models such as neural networks
  will be needed" — i.e. a rule-based classifier should do *poorly*.

:class:`RuleClassifier` implements the classic CBA-style scheme: keep the
rules whose consequent is exactly the target item, order them by
(confidence, lift, support), and classify a transaction as positive if
any kept rule's antecedent is contained in it.  The default class is
negative.  This is deliberately the *simple* classifier the paper talks
about — the point of the prediction bench is to measure where it is and
is not sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.items import Item, as_item
from ..core.rules import AssociationRule
from ..core.transactions import TransactionDatabase

__all__ = ["RuleClassifier", "ClassifierRule"]


@dataclass(frozen=True, slots=True)
class ClassifierRule:
    """One decision rule: antecedent item ids plus its training metrics."""

    antecedent_ids: frozenset[int]
    antecedent: frozenset[Item]
    confidence: float
    lift: float
    support: float

    def __str__(self) -> str:
        items = ", ".join(i.render() for i in sorted(self.antecedent))
        return f"[{items}] (conf={self.confidence:.2f}, lift={self.lift:.2f})"


class RuleClassifier:
    """Predict a target item from association rules (CBA-style)."""

    def __init__(self, target: Item | str, rules: Sequence[ClassifierRule]):
        self.target = as_item(target)
        #: strongest-first decision list
        self.rules = sorted(
            rules, key=lambda r: (-r.confidence, -r.lift, -r.support)
        )

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"RuleClassifier(target={self.target.render()!r}, n_rules={len(self)})"

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_rules(
        cls,
        rules: Iterable[AssociationRule],
        target: Item | str,
        allowed_features: Iterable[str] | None = None,
        min_confidence: float = 0.0,
        max_rules: int | None = None,
    ) -> "RuleClassifier":
        """Build from mined rules.

        Keeps rules whose consequent is exactly ``{target}``.  With
        *allowed_features*, antecedents using any other feature are
        dropped — pass the submission-time feature names to get the
        paper's "predict at the job submission stage" setting.
        """
        target_item = as_item(target)
        allowed = set(allowed_features) if allowed_features is not None else None
        kept: list[ClassifierRule] = []
        for rule in rules:
            if rule.consequent != frozenset({target_item}):
                continue
            if rule.confidence < min_confidence:
                continue
            if allowed is not None and not all(
                i.feature in allowed for i in rule.antecedent
            ):
                continue
            kept.append(
                ClassifierRule(
                    antecedent_ids=rule.antecedent_ids,
                    antecedent=rule.antecedent,
                    confidence=rule.confidence,
                    lift=rule.lift,
                    support=rule.support,
                )
            )
        kept.sort(key=lambda r: (-r.confidence, -r.lift, -r.support))
        if max_rules is not None:
            kept = kept[:max_rules]
        return cls(target_item, kept)

    # -- prediction --------------------------------------------------------------
    def predict_transaction(self, item_ids: frozenset[int] | set[int]) -> bool:
        """True if any decision rule's antecedent is contained in the set."""
        ids = frozenset(item_ids)
        return any(rule.antecedent_ids <= ids for rule in self.rules)

    def matching_rule(
        self, item_ids: frozenset[int] | set[int]
    ) -> ClassifierRule | None:
        """The strongest rule that fires, or None — the *explanation* of a
        positive prediction (the interpretability contract)."""
        ids = frozenset(item_ids)
        for rule in self.rules:
            if rule.antecedent_ids <= ids:
                return rule
        return None

    def predict(self, db: TransactionDatabase) -> np.ndarray:
        """Vectorised prediction for every transaction of *db*.

        Each decision rule is one AND over packed occurrence bitsets;
        the classifier is the OR of its rules, unpacked to booleans once
        at the end.
        """
        n = len(db)
        out = np.zeros(n, dtype=bool)
        if not self.rules:
            return out
        bitmaps = db.bitmaps()
        n_items = db.n_items
        acc = None
        for rule in self.rules:
            ids = sorted(rule.antecedent_ids)
            if any(i >= n_items for i in ids):
                continue  # item never occurs in this database
            mask = bitmaps.and_words(ids)
            acc = mask if acc is None else acc | mask
        if acc is None:
            return out
        return bitmaps.to_bool(acc)

    def labels(self, db: TransactionDatabase) -> np.ndarray:
        """Ground-truth labels: does the transaction contain the target?"""
        target_id = db.vocabulary.get_id(self.target)
        if target_id is None:
            return np.zeros(len(db), dtype=bool)
        bitmaps = db.bitmaps()
        return bitmaps.to_bool(bitmaps.row(target_id))
