"""Privacy-preserving mining (Sec. VI integration point)."""

from .dp import DPConfig, DPMiningResult, dp_mine_frequent_itemsets, recovery_f1

__all__ = ["DPConfig", "DPMiningResult", "dp_mine_frequent_itemsets", "recovery_f1"]
