"""Differentially private frequent-itemset release.

The paper positions privacy-preserving rule mining as adjacent work its
pipeline can absorb: "since our pruning techniques are applied after the
rules are generated, we can integrate the other works into the workflow"
(Sec. VI).  This module provides the standard central-DP mechanism for
that integration point: Laplace-noised support counts over a fixed
candidate family, released once.

Model
-----
Each transaction is one job owned by one user-entity; neighbouring
databases differ in one transaction.  Releasing the support counts of a
fixed set of ``k`` candidate itemsets has L1 sensitivity ``k`` (one
transaction changes each count by at most 1), so adding Laplace noise of
scale ``k / ε`` to every count gives ε-differential privacy for the whole
release.  Working over the *mined candidates at a lowered threshold* (the
usual practice) keeps ``k`` small enough to be useful.

The quality trade-off is exactly what the ablation bench measures: as ε
shrinks, noisy counts cross the support threshold in both directions and
rule recovery degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.itemsets import FrequentItemsets
from ..core.mining import ALGORITHMS, MiningConfig
from ..core.transactions import TransactionDatabase

__all__ = ["DPConfig", "DPMiningResult", "dp_mine_frequent_itemsets", "recovery_f1"]


@dataclass(frozen=True, slots=True)
class DPConfig:
    """Privacy parameters of one release."""

    epsilon: float = 1.0
    #: candidate itemsets are mined at ``candidate_fraction × min_support``
    #: so borderline-frequent sets can survive positive noise
    candidate_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if not 0.0 < self.candidate_fraction <= 1.0:
            raise ValueError("candidate_fraction must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class DPMiningResult:
    """A private release plus its accounting."""

    itemsets: FrequentItemsets
    epsilon: float
    n_candidates: int
    noise_scale: float


def dp_mine_frequent_itemsets(
    db: TransactionDatabase,
    config: MiningConfig = MiningConfig(),
    privacy: DPConfig = DPConfig(),
) -> DPMiningResult:
    """Release an ε-DP frequent-itemset table.

    1. mine candidates at the lowered threshold (non-private step over
       the curator's data — standard central-DP setting);
    2. add Laplace(k/ε) noise to every candidate count;
    3. keep candidates whose *noisy* count clears the real threshold.

    Released counts are the noisy ones (clipped into [0, |D|]), so any
    downstream rule metric is computed purely from private quantities.
    """
    n = len(db)
    miner = ALGORITHMS[config.algorithm]
    candidate_support = config.min_support * privacy.candidate_fraction
    candidates = miner(db, candidate_support, config.max_len)
    k = len(candidates)
    if k == 0:
        empty = FrequentItemsets({}, db.vocabulary, n, config.min_support, config.max_len)
        return DPMiningResult(empty, privacy.epsilon, 0, 0.0)

    scale = k / privacy.epsilon
    rng = np.random.default_rng(privacy.seed)
    noise = rng.laplace(0.0, scale, size=k)
    min_count = max(1, int(np.ceil(config.min_support * n - 1e-9)))

    released: dict[frozenset[int], int] = {}
    for (itemset, count), eps_noise in zip(sorted(candidates.items(), key=lambda p: sorted(p[0])), noise):
        noisy = count + eps_noise
        if noisy >= min_count:
            released[itemset] = int(np.clip(round(noisy), 0, n))
    return DPMiningResult(
        itemsets=FrequentItemsets(
            released, db.vocabulary, n, config.min_support, config.max_len
        ),
        epsilon=privacy.epsilon,
        n_candidates=k,
        noise_scale=scale,
    )


def recovery_f1(
    private: FrequentItemsets, reference: FrequentItemsets
) -> float:
    """F1 of the private itemset *family* against the non-private one."""
    released = set(private.counts)
    truth = set(reference.counts)
    if not released and not truth:
        return 1.0
    tp = len(released & truth)
    precision = tp / len(released) if released else 0.0
    recall = tp / len(truth) if truth else 0.0
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
