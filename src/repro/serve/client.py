"""Client API and load generator for the rule-serving subsystem.

:class:`RuleServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.service` over one connection; :func:`replay_traffic`
drives many clients concurrently against a service, replaying the
simulator-backed synthetic traces (PAI / SuperCloud / Philly) as if jobs
were arriving live — the workload shape the benchmark harness measures.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass, field

from ..traces import get_trace
from .service import MAX_LINE_BYTES

__all__ = [
    "ServiceError",
    "RuleServiceClient",
    "trace_transactions",
    "ReplayStats",
    "replay_traffic",
]


class ServiceError(RuntimeError):
    """The service answered with an error record."""

    def __init__(self, code: str, detail: str, retry_after: float | None = None):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


class RuleServiceClient:
    """One connection to a :class:`~repro.serve.service.RuleService`.

    :meth:`request` (and the :meth:`match`/:meth:`healthz`/:meth:`metrics`
    wrappers) are strictly sequential — one response awaited per send.
    The service also supports pipelining: :meth:`send` many requests
    before draining their responses with :meth:`receive` (answers come
    back in request order), which is how :func:`replay_traffic` keeps the
    service's batcher saturated.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "RuleServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "RuleServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def send(self, payload: dict) -> int:
        """Pipelined send: write one request, return its assigned id.

        Pair each :meth:`send` with a later :meth:`receive`; the service
        answers a connection's requests in order.
        """
        self._next_id += 1
        request_id = self._next_id
        self._writer.write(
            json.dumps({**payload, "id": request_id}).encode() + b"\n"
        )
        await self._writer.drain()
        return request_id

    async def receive(self) -> dict:
        """Read the next response object (raw — error records included)."""
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    async def request(self, payload: dict) -> dict:
        """Send one request object, await its response object."""
        await self.send(payload)
        response = await self.receive()
        if response.get("type") == "error":
            raise ServiceError(
                response.get("error", "unknown"),
                response.get("detail", ""),
                response.get("retry_after"),
            )
        return response

    async def match(
        self, transaction: list[str], explain: bool = False
    ) -> dict:
        """Match one job; returns the ``match_result`` response object."""
        request: dict = {"type": "match", "transaction": list(transaction)}
        if explain:
            request["explain"] = True
        return await self.request(request)

    async def healthz(self) -> dict:
        return await self.request({"type": "healthz"})

    async def metrics(self) -> dict:
        return await self.request({"type": "metrics"})


def trace_transactions(
    trace: str, n_jobs: int, seed: int | None = None
) -> list[list[str]]:
    """Replayable job transactions from a synthetic trace.

    Generates *n_jobs* jobs of the named trace (the generators run the
    cluster-simulator substrate underneath), pushes them through the
    trace's Sec. III-E preprocessor, and renders each resulting
    transaction as the item strings the wire protocol carries.
    """
    definition = get_trace(trace)
    overrides = {} if seed is None else {"seed": seed}
    table = definition.generate_scaled(n_jobs=n_jobs, **overrides)
    db = definition.make_preprocessor().run(table).database
    return [
        sorted(str(item) for item in txn) for txn in db.iter_item_transactions()
    ]


@dataclass(slots=True)
class ReplayStats:
    """Outcome of one load-generation run."""

    n_requests: int = 0
    n_fired: int = 0
    n_retried: int = 0
    n_failed: int = 0
    seconds: float = 0.0
    fired_rules: dict[int, int] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        return self.n_requests / self.seconds if self.seconds > 0 else 0.0

    def render(self) -> str:
        return (
            f"{self.n_requests} requests in {self.seconds:.2f}s "
            f"({self.requests_per_second:,.0f} req/s), "
            f"{self.n_fired} rule firings, {self.n_retried} retries after "
            f"backpressure, {self.n_failed} failed"
        )


async def replay_traffic(
    host: str,
    port: int,
    transactions: list[list[str]],
    *,
    concurrency: int = 8,
    window: int = 32,
    max_retries: int = 20,
) -> ReplayStats:
    """Replay *transactions* against a running service.

    Each of *concurrency* workers opens its own connection and pipelines
    its share of the jobs, keeping up to *window* requests in flight
    before draining responses (the service answers in request order).
    ``overloaded`` rejections are honoured by backing off for the
    advertised ``retry_after`` and re-sending (up to *max_retries* times
    per job) — the cooperative half of the backpressure contract.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    stats = ReplayStats()

    async def worker(jobs: list[list[str]]) -> None:
        async with await RuleServiceClient.connect(host, port) as client:
            todo = deque((transaction, 0) for transaction in jobs)
            inflight: dict[int, tuple[list[str], int]] = {}
            while todo or inflight:
                while todo and len(inflight) < window:
                    transaction, attempts = todo.popleft()
                    request_id = await client.send(
                        {"type": "match", "transaction": transaction}
                    )
                    inflight[request_id] = (transaction, attempts)
                response = await client.receive()
                transaction, attempts = inflight.pop(response.get("id"))
                if response.get("type") == "error":
                    if (
                        response.get("error") == "overloaded"
                        and attempts < max_retries
                    ):
                        stats.n_retried += 1
                        await asyncio.sleep(response.get("retry_after") or 0.01)
                        todo.appendleft((transaction, attempts + 1))
                    else:
                        stats.n_failed += 1
                    continue
                stats.n_requests += 1
                stats.n_fired += len(response["fired"])
                for match in response["fired"]:
                    rule_id = match["rule_id"]
                    stats.fired_rules[rule_id] = (
                        stats.fired_rules.get(rule_id, 0) + 1
                    )

    shards = [transactions[i::concurrency] for i in range(concurrency)]
    started = time.perf_counter()
    await asyncio.gather(*(worker(shard) for shard in shards if shard))
    stats.seconds = time.perf_counter() - started
    return stats
