"""Client API and load generator for the rule-serving subsystem.

:class:`RuleServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.service` over one connection; :func:`replay_traffic`
drives many clients concurrently against a service, replaying the
simulator-backed synthetic traces (PAI / SuperCloud / Philly) as if jobs
were arriving live — the workload shape the benchmark harness measures.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass, field

from ..traces import get_trace
from .service import MAX_LINE_BYTES

__all__ = [
    "ServiceError",
    "RuleServiceClient",
    "trace_transactions",
    "ReplayStats",
    "replay_traffic",
    "replay_traffic_multiprocess",
]


class ServiceError(RuntimeError):
    """The service answered with an error record."""

    def __init__(self, code: str, detail: str, retry_after: float | None = None):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


class RuleServiceClient:
    """One connection to a :class:`~repro.serve.service.RuleService`.

    :meth:`request` (and the :meth:`match`/:meth:`healthz`/:meth:`metrics`
    wrappers) are strictly sequential — one response awaited per send.
    The service also supports pipelining: :meth:`send` many requests
    before draining their responses with :meth:`receive` (answers come
    back in request order), which is how :func:`replay_traffic` keeps the
    service's batcher saturated.

    Backpressure is handled *inside* :meth:`request`: a retriable
    rejection (``overloaded``, or any error carrying a ``retry_after``
    hint, such as the router's ``shard_timeout``) is retried with
    bounded exponential backoff — the hint doubled per attempt, capped
    at *backoff_cap_s*, at most *max_retries* times — instead of
    surfacing to the caller.  Callers only see :class:`ServiceError`
    for terminal errors or once the retry budget is exhausted; pass
    ``max_retries=0`` to observe rejections directly.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_retries: int = 8,
        backoff_cap_s: float = 1.0,
    ):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self.max_retries = max_retries
        self.backoff_cap_s = backoff_cap_s
        self.n_retried = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_retries: int = 8,
        backoff_cap_s: float = 1.0,
    ) -> "RuleServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(
            reader,
            writer,
            max_retries=max_retries,
            backoff_cap_s=backoff_cap_s,
        )

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "RuleServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def send(self, payload: dict) -> int:
        """Pipelined send: write one request, return its assigned id.

        Pair each :meth:`send` with a later :meth:`receive`; the service
        answers a connection's requests in order.
        """
        self._next_id += 1
        request_id = self._next_id
        self._writer.write(
            json.dumps({**payload, "id": request_id}).encode() + b"\n"
        )
        await self._writer.drain()
        return request_id

    async def receive(self) -> dict:
        """Read the next response object (raw — error records included)."""
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    async def request(self, payload: dict) -> dict:
        """Send one request object, await its response object.

        Retriable rejections are absorbed by backoff-and-resend (see
        the class docstring); anything else raises :class:`ServiceError`.
        """
        attempt = 0
        while True:
            await self.send(payload)
            response = await self.receive()
            if response.get("type") != "error":
                return response
            retry_after = response.get("retry_after")
            retriable = (
                response.get("error") == "overloaded"
                or retry_after is not None
            )
            if not retriable or attempt >= self.max_retries:
                raise ServiceError(
                    response.get("error", "unknown"),
                    response.get("detail", ""),
                    retry_after,
                )
            self.n_retried += 1
            delay = min(
                (retry_after or 0.01) * (2**attempt), self.backoff_cap_s
            )
            attempt += 1
            await asyncio.sleep(delay)

    async def match(
        self, transaction: list[str], explain: bool = False
    ) -> dict:
        """Match one job; returns the ``match_result`` response object."""
        request: dict = {"type": "match", "transaction": list(transaction)}
        if explain:
            request["explain"] = True
        return await self.request(request)

    async def healthz(self) -> dict:
        return await self.request({"type": "healthz"})

    async def metrics(self) -> dict:
        return await self.request({"type": "metrics"})


def trace_transactions(
    trace: str, n_jobs: int, seed: int | None = None
) -> list[list[str]]:
    """Replayable job transactions from a synthetic trace.

    Generates *n_jobs* jobs of the named trace (the generators run the
    cluster-simulator substrate underneath), pushes them through the
    trace's Sec. III-E preprocessor, and renders each resulting
    transaction as the item strings the wire protocol carries.
    """
    definition = get_trace(trace)
    overrides = {} if seed is None else {"seed": seed}
    table = definition.generate_scaled(n_jobs=n_jobs, **overrides)
    db = definition.make_preprocessor().run(table).database
    return [
        sorted(str(item) for item in txn) for txn in db.iter_item_transactions()
    ]


@dataclass(slots=True)
class ReplayStats:
    """Outcome of one load-generation run."""

    n_requests: int = 0
    n_fired: int = 0
    n_retried: int = 0
    n_failed: int = 0
    seconds: float = 0.0
    fired_rules: dict[int, int] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        return self.n_requests / self.seconds if self.seconds > 0 else 0.0

    def render(self) -> str:
        return (
            f"{self.n_requests} requests in {self.seconds:.2f}s "
            f"({self.requests_per_second:,.0f} req/s), "
            f"{self.n_fired} rule firings, {self.n_retried} retries after "
            f"backpressure, {self.n_failed} failed"
        )


async def replay_traffic(
    host: str,
    port: int,
    transactions: list[list[str]],
    *,
    concurrency: int = 8,
    window: int = 32,
    max_retries: int = 20,
) -> ReplayStats:
    """Replay *transactions* against a running service.

    Each of *concurrency* workers opens its own connection and pipelines
    its share of the jobs, keeping up to *window* requests in flight
    before draining responses (the service answers in request order).
    ``overloaded`` rejections are honoured by backing off for the
    advertised ``retry_after`` and re-sending (up to *max_retries* times
    per job) — the cooperative half of the backpressure contract.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    stats = ReplayStats()

    async def worker(jobs: list[list[str]]) -> None:
        async with await RuleServiceClient.connect(host, port) as client:
            todo = deque((transaction, 0) for transaction in jobs)
            inflight: dict[int, tuple[list[str], int]] = {}
            while todo or inflight:
                while todo and len(inflight) < window:
                    transaction, attempts = todo.popleft()
                    request_id = await client.send(
                        {"type": "match", "transaction": transaction}
                    )
                    inflight[request_id] = (transaction, attempts)
                response = await client.receive()
                transaction, attempts = inflight.pop(response.get("id"))
                if response.get("type") == "error":
                    retriable = (
                        response.get("error") == "overloaded"
                        or response.get("retry_after") is not None
                    )
                    if retriable and attempts < max_retries:
                        stats.n_retried += 1
                        await asyncio.sleep(response.get("retry_after") or 0.01)
                        todo.appendleft((transaction, attempts + 1))
                    else:
                        stats.n_failed += 1
                    continue
                stats.n_requests += 1
                stats.n_fired += len(response["fired"])
                for match in response["fired"]:
                    rule_id = match["rule_id"]
                    stats.fired_rules[rule_id] = (
                        stats.fired_rules.get(rule_id, 0) + 1
                    )

    shards = [transactions[i::concurrency] for i in range(concurrency)]
    started = time.perf_counter()
    await asyncio.gather(*(worker(shard) for shard in shards if shard))
    stats.seconds = time.perf_counter() - started
    return stats


def _replay_in_process(
    host: str,
    port: int,
    transactions: list[list[str]],
    concurrency: int,
    window: int,
    max_retries: int,
) -> dict:
    """Child-process entry for :func:`replay_traffic_multiprocess`."""
    stats = asyncio.run(
        replay_traffic(
            host,
            port,
            transactions,
            concurrency=concurrency,
            window=window,
            max_retries=max_retries,
        )
    )
    return {
        "n_requests": stats.n_requests,
        "n_fired": stats.n_fired,
        "n_retried": stats.n_retried,
        "n_failed": stats.n_failed,
        "fired_rules": stats.fired_rules,
    }


def replay_traffic_multiprocess(
    host: str,
    port: int,
    transactions: list[list[str]],
    *,
    processes: int = 2,
    concurrency: int = 8,
    window: int = 32,
    max_retries: int = 20,
) -> ReplayStats:
    """Saturation load generation: :func:`replay_traffic` across processes.

    A single asyncio load generator tops out on its own core well before
    a multi-shard service does, which would make the generator — not the
    cluster — the thing a benchmark measures.  This splits the jobs over
    *processes* worker processes, each running its own event loop, and
    merges the stats; ``seconds`` is the parent's wall clock around the
    whole fan-out.  Synchronous by design (benchmarks call it from plain
    code while the cluster runs in separate processes).
    """
    if processes <= 1:
        return asyncio.run(
            replay_traffic(
                host,
                port,
                transactions,
                concurrency=concurrency,
                window=window,
                max_retries=max_retries,
            )
        )
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    shards = [transactions[i::processes] for i in range(processes)]
    stats = ReplayStats()
    started = time.perf_counter()
    # spawn, not fork: the caller may hold a live event loop (the bench
    # drives a cluster on the main thread while this runs in a worker
    # thread), and forking a threaded asyncio process is unsafe
    with ProcessPoolExecutor(
        max_workers=processes,
        mp_context=multiprocessing.get_context("spawn"),
    ) as pool:
        futures = [
            pool.submit(
                _replay_in_process,
                host,
                port,
                shard,
                concurrency,
                window,
                max_retries,
            )
            for shard in shards
            if shard
        ]
        for future in futures:
            part = future.result()
            stats.n_requests += part["n_requests"]
            stats.n_fired += part["n_fired"]
            stats.n_retried += part["n_retried"]
            stats.n_failed += part["n_failed"]
            for rule_id, count in part["fired_rules"].items():
                stats.fired_rules[rule_id] = (
                    stats.fired_rules.get(rule_id, 0) + count
                )
    stats.seconds = time.perf_counter() - started
    return stats
