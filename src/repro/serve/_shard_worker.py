"""Entry shim for shard worker subprocesses.

``python -m repro.serve.shard`` would re-execute a module that
``repro.serve.__init__`` already imported (runpy's double-import
warning); this module exists only to be ``-m``-run and is imported by
nothing else.
"""

from .shard import main

if __name__ == "__main__":
    raise SystemExit(main())
