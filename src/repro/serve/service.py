"""Asyncio rule-matching service: newline-delimited JSON over TCP.

Protocol (one JSON object per line, both directions)::

    → {"type": "match",   "transaction": ["SM Util = 0%", ...], "id": 7,
       "explain": false}
    ← {"type": "match_result", "id": 7, "fired": [...], "near_misses": [...]}

    → {"type": "healthz"}
    ← {"type": "healthz", "status": "ok"|"draining", "uptime_s": ...,
       "n_rules": ...}

    → {"type": "metrics"}
    ← {"type": "metrics", "uptime_s": ..., "queue_depth": ...,
       "latency": {"p50_s": ..., "p99_s": ..., ...},
       "requests": {...}, "rule_matches": {...}}

Design points, mirroring what a production sidecar needs:

* **Pipelining** — a connection may send many requests before reading
  any response; responses come back in request order.  Each connection
  runs a reader task (parse + enqueue) and a writer task (answer in
  order), so a single client can keep the batcher saturated.
* **Micro-batching** — match requests land on a bounded queue; a single
  batcher task drains up to ``max_batch`` at once and answers them in
  one pass.  Under load this amortises task wakeups; under light load
  the first request is served immediately (no artificial batching
  delay).
* **Explicit backpressure** — when the queue is full the request is
  rejected *immediately* with ``{"type": "error", "error": "overloaded",
  "retry_after": ...}`` rather than buffered without bound.  Callers see
  load shedding as data, not as timeouts.
* **Graceful drain** — SIGTERM/SIGINT (or :meth:`RuleService.shutdown`)
  stops accepting connections, answers everything already queued, then
  closes.  In-flight work is never dropped.
* **Observability** — latency quantiles come from the engine's shared
  :class:`~repro.engine.stats.LatencyHistogram`; per-rule fire counts
  tell the operator which mined rules actually earn their keep.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Iterable

from ..core.items import Item
from ..engine.stats import LatencyHistogram
from .index import RuleIndex
from .rulebook import RuleBook

__all__ = ["ServiceMetrics", "RuleService"]

#: protocol schema version announced by healthz
PROTOCOL_VERSION = 1

#: default bound of the request queue (requests, not bytes)
DEFAULT_MAX_QUEUE = 1024

#: default micro-batch size drained per batcher wakeup
DEFAULT_MAX_BATCH = 64

#: default client back-off hint attached to overload rejections, seconds
DEFAULT_RETRY_AFTER_S = 0.05

#: stream line limit, both directions — a match response over a large
#: book (fired rules + near misses) easily exceeds asyncio's 64 KiB
#: default readline limit
MAX_LINE_BYTES = 8 * 1024 * 1024


class ServiceMetrics:
    """Mutable counters of one service lifetime."""

    __slots__ = (
        "started_at",
        "latency",
        "n_matched",
        "n_rejected",
        "n_bad_requests",
        "n_batches",
        "rule_matches",
    )

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.latency = LatencyHistogram()
        self.n_matched = 0
        self.n_rejected = 0
        self.n_bad_requests = 0
        self.n_batches = 0
        self.rule_matches: dict[int, int] = {}

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at

    def as_dict(self, index: RuleIndex) -> dict:
        return {
            "uptime_s": self.uptime_s,
            "latency": self.latency.as_dict(),
            "requests": {
                "matched": self.n_matched,
                "rejected": self.n_rejected,
                "bad": self.n_bad_requests,
                "batches": self.n_batches,
            },
            "rule_matches": {
                index.rule_label(rule_id): count
                for rule_id, count in sorted(self.rule_matches.items())
            },
        }


class RuleService:
    """A long-lived rule matcher behind ``asyncio.start_server``.

    Typical embedding (the CLI's ``repro serve`` does exactly this)::

        service = RuleService(RuleIndex.from_rulebook(book))
        asyncio.run(service.serve_forever("127.0.0.1", 7317))

    Tests drive :meth:`start` / :meth:`shutdown` directly for
    deterministic control over the lifecycle.
    """

    def __init__(
        self,
        index: RuleIndex,
        *,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.index = index
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.retry_after_s = retry_after_s
        self.metrics = ServiceMetrics()
        self._queue: asyncio.Queue[tuple[dict, float, asyncio.Future]] = (
            asyncio.Queue(maxsize=max_queue)
        )
        self._server: asyncio.Server | None = None
        self._batcher: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle ---------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self.metrics = ServiceMetrics()
        self._draining = False
        self._batcher = asyncio.create_task(self._batch_loop())
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=MAX_LINE_BYTES
        )
        return self._server

    @property
    def port(self) -> int:
        """The bound port (useful after ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 7317) -> None:
        """Run until SIGTERM/SIGINT, then drain and exit."""
        server = await self.start(host, port)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX event loops
        async with server:
            await stop.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, answer queued work, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # everything already queued gets answered before the batcher dies
        await self._queue.join()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        # connection handlers: queued answers are written as clients drain
        # their sockets and hang up; anyone still holding the connection
        # open after a grace period gets cut off
        if self._conn_tasks:
            _, pending = await asyncio.wait(set(self._conn_tasks), timeout=1.0)
            for task in pending:  # pragma: no cover - lingering clients
                task.cancel()
            if pending:  # pragma: no cover
                await asyncio.wait(pending)
            self._conn_tasks.clear()

    # -- connection handling ----------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # reader half: parse lines and enqueue a response slot per request,
        # so the connection is pipelined — the writer half answers slots in
        # request order, awaiting match futures as the batcher resolves them
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        out: asyncio.Queue[bytes | asyncio.Future | None] = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_responses(out, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                out.put_nowait(self._dispatch(line))
        except (ConnectionResetError, BrokenPipeError, ValueError):
            pass  # reset mid-read, or a line beyond MAX_LINE_BYTES
        finally:
            out.put_nowait(None)
            try:
                await writer_task
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            except asyncio.CancelledError:  # pragma: no cover - forced close
                writer_task.cancel()
                writer.close()
                raise
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)

    async def _write_responses(
        self,
        out: asyncio.Queue,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Write response lines in request order, coalescing drains."""
        try:
            while True:
                entry = await out.get()
                if entry is None:
                    break
                if isinstance(entry, asyncio.Future):
                    entry = await entry
                writer.write(entry)
                if out.empty():  # flow control once per burst, not per line
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the reader half will see EOF

    def _dispatch(self, line: bytes) -> bytes | asyncio.Future:
        """One request line → encoded response line, or a pending future."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError, UnicodeDecodeError) as exc:
            self.metrics.n_bad_requests += 1
            return _error_line(None, "bad_request", str(exc))
        request_id = request.get("id")
        kind = request.get("type")
        if kind == "match":
            return self._enqueue_match(request, request_id)
        if kind == "healthz":
            return _encode(self._healthz(request_id))
        if kind == "metrics":
            return _encode(
                {
                    "type": "metrics",
                    "id": request_id,
                    "queue_depth": self._queue.qsize(),
                    **self.metrics.as_dict(self.index),
                }
            )
        self.metrics.n_bad_requests += 1
        return _error_line(
            request_id, "bad_request", f"unknown request type {kind!r}"
        )

    def _healthz(self, request_id) -> dict:
        return {
            "type": "healthz",
            "id": request_id,
            "status": "draining" if self._draining else "ok",
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": self.metrics.uptime_s,
            "n_rules": len(self.index),
        }

    def _enqueue_match(self, request: dict, request_id) -> bytes | asyncio.Future:
        if self._draining:
            return _error_line(
                request_id,
                "shutting_down",
                "service is draining; connect elsewhere",
            )
        transaction = request.get("transaction")
        if not isinstance(transaction, list) or not all(
            isinstance(i, str) for i in transaction
        ):
            self.metrics.n_bad_requests += 1
            return _error_line(
                request_id, "bad_request", "transaction must be a list of strings"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, time.perf_counter(), future))
        except asyncio.QueueFull:
            self.metrics.n_rejected += 1
            response = _error(
                request_id,
                "overloaded",
                f"request queue full ({self.max_queue})",
            )
            response["retry_after"] = self.retry_after_s
            return _encode(response)
        return future

    # -- the batcher --------------------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._process_batch(batch)
            for _ in batch:
                self._queue.task_done()

    async def _process_batch(
        self, batch: list[tuple[dict, float, asyncio.Future]]
    ) -> None:
        """Answer one micro-batch (overridable seam for tests)."""
        self.metrics.n_batches += 1
        record = self.metrics.latency.record
        now = time.perf_counter
        for request, enqueued_at, future in batch:
            if future.cancelled():  # pragma: no cover - client vanished
                continue
            line = self._match_line(request)
            record(now() - enqueued_at)
            future.set_result(line)

    def _match_line(self, request: dict) -> bytes:
        """One match request → encoded ``match_result`` line.

        The common path (no ``explain``) assembles the response from the
        index's precomputed per-rule JSON fragments — the only JSON
        encoded per request is the echoed request id.
        """
        transaction: Iterable[Item | str] = request["transaction"]
        self.metrics.n_matched += 1
        rule_matches = self.metrics.rule_matches
        if request.get("explain"):
            fired = self.index.match(transaction)
            for match in fired:
                rule_matches[match.rule_id] = (
                    rule_matches.get(match.rule_id, 0) + 1
                )
            return _encode(
                {
                    "type": "match_result",
                    "id": request.get("id"),
                    "fired": [m.as_dict() for m in fired],
                    "near_misses": [
                        n.as_dict() for n in self.index.explain(transaction)
                    ],
                }
            )
        wire = self.index.match_wire(transaction)
        for rule_id, _ in wire:
            rule_matches[rule_id] = rule_matches.get(rule_id, 0) + 1
        return (
            '{"type": "match_result", "id": %s, "fired": [%s]}\n'
            % (json.dumps(request.get("id")), ", ".join(f for _, f in wire))
        ).encode()

    @classmethod
    def from_rulebook(cls, book: RuleBook, **kwargs) -> "RuleService":
        return cls(RuleIndex.from_rulebook(book), **kwargs)


def _error(request_id, code: str, detail: str) -> dict:
    return {"type": "error", "id": request_id, "error": code, "detail": detail}


def _error_line(request_id, code: str, detail: str) -> bytes:
    return _encode(_error(request_id, code, detail))


def _encode(response: dict) -> bytes:
    return json.dumps(response).encode() + b"\n"
