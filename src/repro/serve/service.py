"""Asyncio rule-matching service: newline-delimited JSON over TCP.

Protocol (one JSON object per line, both directions)::

    → {"type": "match",   "transaction": ["SM Util = 0%", ...], "id": 7,
       "explain": false}
    ← {"type": "match_result", "id": 7, "version": 1, "fired": [...],
       "near_misses": [...]}

    → {"type": "healthz"}
    ← {"type": "healthz", "status": "ok"|"draining", "uptime_s": ...,
       "n_rules": ..., "version": ..., "version_tag": ...}

    → {"type": "metrics"}
    ← {"type": "metrics", "uptime_s": ..., "queue_depth": ...,
       "latency": {"p50_s": ..., "p99_s": ..., ...},
       "requests": {...}, "rule_matches": {...}}

    → {"type": "reload", "rulebook": "/path/to/book.jsonl"}
    → {"type": "reload", "segment": "rsm.r...", "rulebook": "..."}
    ← {"type": "reload_result", "version": 2, "n_rules": ...,
       "source": "segment"|"path"}

A reload carrying a ``segment`` name attaches the pre-compiled rule
plane published in shared memory (zero-copy, milliseconds); the
``rulebook`` path, when also present, is the fallback if the segment
cannot be attached (shm unavailable, ``REPRO_NO_SHM``, stale name).

Design points, mirroring what a production sidecar needs:

* **Pipelining** — a connection may send many requests before reading
  any response; responses come back in request order.  Each connection
  runs a reader task (parse + enqueue) and a writer task (answer in
  order), so a single client can keep the batcher saturated.
* **Micro-batching** — match requests land on a bounded queue; a single
  batcher task drains up to ``max_batch`` at once and answers them in
  one pass.  Under load this amortises task wakeups; under light load
  the first request is served immediately (no artificial batching
  delay).
* **Batch match kernel** — a drained micro-batch with two or more plain
  match requests is answered by *one*
  :meth:`~repro.serve.index.RuleIndex.match_wire_batch` call: the whole
  batch is encoded into a packed uint64 bit-matrix and resolved against
  the index's compiled antecedent/consequent masks in a few NumPy
  passes (DESIGN.md §13).  Answers are byte-identical to the scalar
  inverted-index path, which is kept for singleton batches, ``explain``
  requests, and as the CI equivalence oracle.  ``batch_kernel=False``
  (or the ``REPRO_SERVE_NO_BATCH_KERNEL`` environment variable, which
  shard workers inherit) forces the scalar path everywhere.
* **Explicit backpressure** — when the queue is full the request is
  rejected *immediately* with ``{"type": "error", "error": "overloaded",
  "retry_after": ...}`` rather than buffered without bound.  Callers see
  load shedding as data, not as timeouts.
* **Graceful drain** — SIGTERM/SIGINT (or :meth:`RuleService.shutdown`)
  stops accepting connections, answers everything already queued, then
  closes.  In-flight work is never dropped.
* **Hot-swap** — the serving index is a versioned atomic pointer.  A
  ``reload`` request (or :meth:`RuleService.reload`) enqueues a flip
  marker on the *same* queue the matcher drains, so the swap applies at
  a batch boundary: every request enqueued before the marker is answered
  from the old index, everything after from the new one, and no
  micro-batch ever mixes versions.  Every ``match_result`` carries the
  ``version`` that answered it, so mixed-version client batches are
  detectable downstream.
* **Observability** — latency quantiles come from the engine's shared
  :class:`~repro.engine.stats.LatencyHistogram`; per-rule fire counts
  tell the operator which mined rules actually earn their keep.

The per-connection reader/writer machinery is shared with the shard
router (:mod:`repro.serve.router`) via :func:`run_ndjson_connection` /
:func:`pump_responses` — both ends of the sharded deployment speak the
exact same framing.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import time
from typing import Callable, Iterable

from ..core.items import Item
from ..engine.stats import LatencyHistogram
from ..shm.ruleplane import attach_rule_plane
from ..shm.segment import SegmentError, shm_available
from .index import RuleIndex
from .rulebook import RuleBook, RuleBookSchemaError

__all__ = [
    "ServiceMetrics",
    "RuleService",
    "run_ndjson_connection",
    "pump_responses",
]

#: protocol schema version announced by healthz
PROTOCOL_VERSION = 1

#: default bound of the request queue (requests, not bytes)
DEFAULT_MAX_QUEUE = 1024

#: default micro-batch size drained per batcher wakeup
DEFAULT_MAX_BATCH = 64

#: default client back-off hint attached to overload rejections, seconds
DEFAULT_RETRY_AFTER_S = 0.05

#: stream line limit, both directions — a match response over a large
#: book (fired rules + near misses) easily exceeds asyncio's 64 KiB
#: default readline limit
MAX_LINE_BYTES = 8 * 1024 * 1024


class ServiceMetrics:
    """Mutable counters of one service lifetime."""

    __slots__ = (
        "started_at",
        "latency",
        "n_matched",
        "n_rejected",
        "n_bad_requests",
        "n_batches",
        "n_reloads",
        "n_kernel_batches",
        "n_kernel_jobs",
        "kernel_seconds",
        "rule_matches",
    )

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.latency = LatencyHistogram()
        self.n_matched = 0
        self.n_rejected = 0
        self.n_bad_requests = 0
        self.n_batches = 0
        self.n_reloads = 0
        # batch-kernel attribution: how much of the serving wall time the
        # packed-bitmask matcher absorbed, and over how many jobs
        self.n_kernel_batches = 0
        self.n_kernel_jobs = 0
        self.kernel_seconds = 0.0
        self.rule_matches: dict[int, int] = {}

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at

    def as_dict(self, index: RuleIndex) -> dict:
        return {
            "uptime_s": self.uptime_s,
            "latency": self.latency.as_dict(),
            # raw bucket counts, so a router can merge true histograms
            # across shards (engine.stats.aggregate_shard_metrics)
            "latency_state": self.latency.state_dict(),
            "requests": {
                "matched": self.n_matched,
                "rejected": self.n_rejected,
                "bad": self.n_bad_requests,
                "batches": self.n_batches,
                "reloads": self.n_reloads,
            },
            "kernel": {
                "batches": self.n_kernel_batches,
                "jobs": self.n_kernel_jobs,
                "seconds": self.kernel_seconds,
            },
            "rule_matches": {
                index.rule_label(rule_id): count
                for rule_id, count in sorted(self.rule_matches.items())
            },
        }


class _IndexFlip:
    """A hot-swap marker travelling the request queue.

    Placing the flip on the same queue as match requests is what makes
    the swap safe without locks: the batcher applies it *between*
    micro-batches, so a batch is always answered by exactly one index
    version, and request order decides which side of the swap a request
    lands on.
    """

    __slots__ = ("index", "version", "version_tag", "done")

    def __init__(
        self,
        index: RuleIndex,
        version: int,
        version_tag: str | None,
        done: asyncio.Future,
    ):
        self.index = index
        self.version = version
        self.version_tag = version_tag
        self.done = done


class RuleService:
    """A long-lived rule matcher behind ``asyncio.start_server``.

    Typical embedding (the CLI's ``repro serve`` does exactly this)::

        service = RuleService(RuleIndex.from_rulebook(book))
        asyncio.run(service.serve_forever("127.0.0.1", 7317))

    Tests drive :meth:`start` / :meth:`shutdown` directly for
    deterministic control over the lifecycle.

    ``version`` starts at 1 and bumps on every :meth:`reload`; shard
    deployments pass explicit versions so all replicas agree on the tag
    a response carries.  ``name`` identifies the shard in healthz
    output.
    """

    def __init__(
        self,
        index: RuleIndex,
        *,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        version: int = 1,
        version_tag: str | None = None,
        name: str | None = None,
        batch_kernel: bool | None = None,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_kernel is None:
            # env fallback so spawned shard workers inherit the choice
            # without threading a flag through the cluster control plane
            batch_kernel = not os.environ.get("REPRO_SERVE_NO_BATCH_KERNEL")
        self.batch_kernel = bool(batch_kernel)
        self.index = index
        self.version = version
        self.version_tag = version_tag
        self.name = name
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.retry_after_s = retry_after_s
        self.metrics = ServiceMetrics()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self._server: asyncio.Server | None = None
        self._control: asyncio.Server | None = None
        self._batcher: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle ---------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0, *, reuse_port: bool = False
    ) -> asyncio.Server:
        """Bind and start serving; ``port=0`` picks an ephemeral port.

        ``reuse_port=True`` binds with ``SO_REUSEPORT`` so N worker
        processes can share one public port and let the kernel spread
        incoming connections across them — the router-free sharding
        mode.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError("SO_REUSEPORT is not available on this platform")
        self.metrics = ServiceMetrics()
        self._draining = False
        self._batcher = asyncio.create_task(self._batch_loop())
        self._server = await asyncio.start_server(
            self._handle_client,
            host,
            port,
            limit=MAX_LINE_BYTES,
            **({"reuse_port": True} if reuse_port else {}),
        )
        return self._server

    async def start_control(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.Server:
        """Open a second listener speaking the same protocol.

        In ``SO_REUSEPORT`` deployments the public port cannot target a
        *specific* worker (the kernel picks), so each worker also exposes
        a private control port where the cluster parent sends ``reload``
        and scrapes ``metrics``.
        """
        if self._control is not None:
            raise RuntimeError("control listener already started")
        self._control = await asyncio.start_server(
            self._handle_client, host, port, limit=MAX_LINE_BYTES
        )
        return self._control

    @property
    def port(self) -> int:
        """The bound port (useful after ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def control_port(self) -> int:
        if self._control is None or not self._control.sockets:
            raise RuntimeError("control listener is not open")
        return self._control.sockets[0].getsockname()[1]

    async def serve_forever(
        self,
        host: str = "127.0.0.1",
        port: int = 7317,
        *,
        reuse_port: bool = False,
        control_host: str | None = None,
        on_ready: Callable[["RuleService"], None] | None = None,
    ) -> None:
        """Run until SIGTERM/SIGINT, then drain and exit.

        ``on_ready`` fires once listening (after ephemeral ports are
        known) — shard workers use it to report their ports to the
        cluster parent.  ``control_host`` additionally opens a control
        listener on an ephemeral port of that host.
        """
        server = await self.start(host, port, reuse_port=reuse_port)
        if control_host is not None:
            await self.start_control(control_host, 0)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX event loops
        if on_ready is not None:
            on_ready(self)
        async with server:
            await stop.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, answer queued work, close."""
        self._draining = True
        for server_attr in ("_server", "_control"):
            server = getattr(self, server_attr)
            if server is not None:
                server.close()
                await server.wait_closed()
                setattr(self, server_attr, None)
        # everything already queued gets answered before the batcher dies
        await self._queue.join()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        # connection handlers: queued answers are written as clients drain
        # their sockets and hang up; anyone still holding the connection
        # open after a grace period gets cut off
        if self._conn_tasks:
            _, pending = await asyncio.wait(set(self._conn_tasks), timeout=1.0)
            for task in pending:  # pragma: no cover - lingering clients
                task.cancel()
            if pending:  # pragma: no cover
                await asyncio.wait(pending)
            self._conn_tasks.clear()

    # -- hot swap ----------------------------------------------------------------
    async def reload(
        self,
        index: RuleIndex,
        *,
        version: int | None = None,
        version_tag: str | None = None,
    ) -> int:
        """Swap the serving index with zero downtime; returns the version.

        The flip is enqueued behind every already-accepted request and
        applied at a micro-batch boundary, so in-flight batches drain on
        the old index first.  Requests keep flowing while the marker
        waits its turn — nothing is rejected or dropped by a reload.
        """
        if version is None:
            version = self.version + 1
        if self._batcher is None:
            # not serving: apply directly (offline re-arm between runs)
            self.index = index
            self.version = int(version)
            self.version_tag = version_tag
            return self.version
        flip = _IndexFlip(
            index,
            int(version),
            version_tag,
            asyncio.get_running_loop().create_future(),
        )
        await self._queue.put(flip)
        await flip.done
        return flip.version

    def _apply_flip(self, flip: _IndexFlip) -> None:
        # plain attribute stores, no awaits in between: atomic under
        # asyncio's cooperative scheduling
        self.index = flip.index
        self.version = flip.version
        self.version_tag = flip.version_tag
        self.metrics.n_reloads += 1
        if not flip.done.done():
            flip.done.set_result(None)

    async def _wire_reload(self, request: dict, request_id) -> bytes:
        """Handle a ``reload`` protocol request (path is server-local)."""
        if self._draining:
            return _error_line(
                request_id, "shutting_down", "service is draining"
            )
        path = request.get("rulebook")
        segment = request.get("segment")
        if path is not None and (not isinstance(path, str) or not path):
            self.metrics.n_bad_requests += 1
            return _error_line(
                request_id, "bad_request", "reload 'rulebook' must be a path"
            )
        if segment is not None and (not isinstance(segment, str) or not segment):
            self.metrics.n_bad_requests += 1
            return _error_line(
                request_id, "bad_request", "reload 'segment' must be a name"
            )
        if path is None and segment is None:
            self.metrics.n_bad_requests += 1
            return _error_line(
                request_id,
                "bad_request",
                "reload needs a 'rulebook' path or a 'segment' name",
            )
        version = request.get("version")
        if version is not None and not isinstance(version, int):
            self.metrics.n_bad_requests += 1
            return _error_line(
                request_id, "bad_request", "reload version must be an integer"
            )
        index = None
        source = None
        fingerprint = None
        if segment is not None and shm_available():
            try:
                # zero-copy attach: milliseconds regardless of rulebook size
                index, plane_meta = await asyncio.to_thread(
                    attach_rule_plane, segment
                )
            except SegmentError as exc:
                if path is None:
                    return _error_line(request_id, "reload_failed", str(exc))
            else:
                source = "segment"
                fingerprint = plane_meta.get("version_tag")
        if index is None:
            if path is None:
                return _error_line(
                    request_id,
                    "reload_failed",
                    "shared memory unavailable and no 'rulebook' fallback",
                )
            try:
                # book parse + index build off the event loop: serving
                # continues on the old index while the new one is prepared
                index, fingerprint = await asyncio.to_thread(
                    _load_index, path
                )
            except (OSError, RuleBookSchemaError, ValueError) as exc:
                return _error_line(request_id, "reload_failed", str(exc))
            source = "path"
        tag = request.get("version_tag")
        if tag is None:
            tag = fingerprint
        applied = await self.reload(index, version=version, version_tag=tag)
        return _encode(
            {
                "type": "reload_result",
                "id": request_id,
                "version": applied,
                "version_tag": tag,
                "n_rules": len(index),
                "source": source,
            }
        )

    # -- connection handling ----------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await run_ndjson_connection(
            reader, writer, self._dispatch, self._conn_tasks
        )

    def _dispatch(self, line: bytes) -> bytes | asyncio.Future:
        """One request line → encoded response line, or a pending future."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError, UnicodeDecodeError) as exc:
            self.metrics.n_bad_requests += 1
            return _error_line(None, "bad_request", str(exc))
        request_id = request.get("id")
        kind = request.get("type")
        if kind == "match":
            return self._enqueue_match(request, request_id)
        if kind == "healthz":
            return _encode(self._healthz(request_id))
        if kind == "metrics":
            return _encode(
                {
                    "type": "metrics",
                    "id": request_id,
                    "name": self.name,
                    "version": self.version,
                    "queue_depth": self._queue.qsize(),
                    **self.metrics.as_dict(self.index),
                }
            )
        if kind == "reload":
            return asyncio.ensure_future(self._wire_reload(request, request_id))
        self.metrics.n_bad_requests += 1
        return _error_line(
            request_id, "bad_request", f"unknown request type {kind!r}"
        )

    def _healthz(self, request_id) -> dict:
        return {
            "type": "healthz",
            "id": request_id,
            "status": "draining" if self._draining else "ok",
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": self.metrics.uptime_s,
            "n_rules": len(self.index),
            "version": self.version,
            "version_tag": self.version_tag,
            "name": self.name,
        }

    def _enqueue_match(self, request: dict, request_id) -> bytes | asyncio.Future:
        if self._draining:
            return _error_line(
                request_id,
                "shutting_down",
                "service is draining; connect elsewhere",
            )
        transaction = request.get("transaction")
        if not isinstance(transaction, list) or not all(
            isinstance(i, str) for i in transaction
        ):
            self.metrics.n_bad_requests += 1
            return _error_line(
                request_id, "bad_request", "transaction must be a list of strings"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, time.perf_counter(), future))
        except asyncio.QueueFull:
            self.metrics.n_rejected += 1
            response = _error(
                request_id,
                "overloaded",
                f"request queue full ({self.max_queue})",
            )
            response["retry_after"] = self.retry_after_s
            return _encode(response)
        return future

    # -- the batcher --------------------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            # flips split the drained slice into segments, each answered
            # entirely by the index version live when its segment runs
            segment: list = []
            for entry in batch:
                if isinstance(entry, _IndexFlip):
                    if segment:
                        await self._process_batch(segment)
                        segment = []
                    self._apply_flip(entry)
                else:
                    segment.append(entry)
            if segment:
                await self._process_batch(segment)
            for _ in batch:
                self._queue.task_done()

    async def _process_batch(
        self, batch: list[tuple[dict, float, asyncio.Future]]
    ) -> None:
        """Answer one micro-batch (overridable seam for tests).

        With the batch kernel enabled, all plain (non-``explain``) match
        requests of the batch are answered by a single
        :meth:`RuleIndex.match_wire_batch` call; singleton batches and
        ``explain`` requests take the scalar path, whose answers are
        byte-identical.
        """
        self.metrics.n_batches += 1
        record = self.metrics.latency.record
        now = time.perf_counter
        # captured once: every response of this batch carries one version
        index = self.index
        version = self.version
        plain: list[tuple[dict, float, asyncio.Future]] = []
        for entry in batch:
            request, enqueued_at, future = entry
            if future.cancelled():  # pragma: no cover - client vanished
                continue
            if self.batch_kernel and not request.get("explain"):
                plain.append(entry)
                continue
            line = self._match_line(request, index, version)
            record(now() - enqueued_at)
            future.set_result(line)
        if not plain:
            return
        if len(plain) == 1:
            # one job cannot amortise a kernel launch; scalar countdown
            request, enqueued_at, future = plain[0]
            line = self._match_line(request, index, version)
            record(now() - enqueued_at)
            future.set_result(line)
            return
        started = now()
        wire_lists = index.match_wire_batch(
            [request["transaction"] for request, _, _ in plain]
        )
        finished = now()
        metrics = self.metrics
        metrics.n_kernel_batches += 1
        metrics.n_kernel_jobs += len(plain)
        metrics.kernel_seconds += finished - started
        for (request, enqueued_at, future), wire in zip(plain, wire_lists):
            line = self._wire_line(request, wire, version)
            record(now() - enqueued_at)
            future.set_result(line)

    def _match_line(
        self, request: dict, index: RuleIndex, version: int
    ) -> bytes:
        """One match request → encoded ``match_result`` line.

        The common path (no ``explain``) assembles the response from the
        index's precomputed per-rule JSON fragments — the only JSON
        encoded per request is the echoed request id.
        """
        transaction: Iterable[Item | str] = request["transaction"]
        if request.get("explain"):
            self.metrics.n_matched += 1
            rule_matches = self.metrics.rule_matches
            fired = index.match(transaction)
            for match in fired:
                rule_matches[match.rule_id] = (
                    rule_matches.get(match.rule_id, 0) + 1
                )
            return _encode(
                {
                    "type": "match_result",
                    "id": request.get("id"),
                    "version": version,
                    "fired": [m.as_dict() for m in fired],
                    "near_misses": [
                        n.as_dict() for n in index.explain(transaction)
                    ],
                }
            )
        return self._wire_line(request, index.match_wire(transaction), version)

    def _wire_line(
        self, request: dict, wire: list[tuple[int, str]], version: int
    ) -> bytes:
        """Assemble a ``match_result`` line from per-rule wire fragments.

        Shared by the scalar and batch paths, so both produce the exact
        same bytes for the same fired set.
        """
        self.metrics.n_matched += 1
        rule_matches = self.metrics.rule_matches
        for rule_id, _ in wire:
            rule_matches[rule_id] = rule_matches.get(rule_id, 0) + 1
        return (
            '{"type": "match_result", "id": %s, "version": %d, "fired": [%s]}\n'
            % (
                json.dumps(request.get("id")),
                version,
                ", ".join(f for _, f in wire),
            )
        ).encode()

    @classmethod
    def from_rulebook(cls, book: RuleBook, **kwargs) -> "RuleService":
        kwargs.setdefault("version_tag", book.fingerprint)
        return cls(RuleIndex.from_rulebook(book), **kwargs)


async def run_ndjson_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    dispatch: Callable[[bytes], "bytes | asyncio.Future"],
    conn_tasks: set[asyncio.Task] | None = None,
) -> None:
    """One pipelined NDJSON connection: read lines, answer in order.

    ``dispatch`` maps a raw request line to either an encoded response
    line or a future resolving to one; responses are written strictly in
    request order by a paired writer task.  Shared by the service and
    the shard router so both ends use identical framing and teardown.
    """
    task = asyncio.current_task()
    if task is not None and conn_tasks is not None:
        conn_tasks.add(task)
    out: asyncio.Queue = asyncio.Queue()
    writer_task = asyncio.create_task(pump_responses(out, writer))
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            out.put_nowait(dispatch(line))
    except (ConnectionResetError, BrokenPipeError, ValueError):
        pass  # reset mid-read, or a line beyond MAX_LINE_BYTES
    finally:
        out.put_nowait(None)
        try:
            await writer_task
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:  # pragma: no cover - forced close
            writer_task.cancel()
            writer.close()
            raise
        finally:
            if task is not None and conn_tasks is not None:
                conn_tasks.discard(task)


async def pump_responses(
    out: asyncio.Queue,
    writer: asyncio.StreamWriter,
) -> None:
    """Write response lines in request order, coalescing drains."""
    try:
        while True:
            entry = await out.get()
            if entry is None:
                break
            if isinstance(entry, asyncio.Future):
                entry = await entry
            writer.write(entry)
            if out.empty():  # flow control once per burst, not per line
                await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away; the reader half will see EOF


def _load_index(path: str) -> tuple[RuleIndex, str | None]:
    book = RuleBook.load(path)
    return RuleIndex.from_rulebook(book), book.fingerprint


def _error(request_id, code: str, detail: str) -> dict:
    return {"type": "error", "id": request_id, "error": code, "detail": detail}


def _error_line(request_id, code: str, detail: str) -> bytes:
    return _encode(_error(request_id, code, detail))


def _encode(response: dict) -> bytes:
    return json.dumps(response).encode() + b"\n"
