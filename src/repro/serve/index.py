"""Inverted rule index: match a job against N rules in sub-linear time.

The serving hot path answers "which rules fire on this job?".  The naive
answer checks every rule's antecedent against the transaction — O(N·|A|)
per job, untenable for a book of thousands of rules under thousands of
requests per second.  :class:`RuleIndex` inverts the problem the way
*Fast Dimensional Analysis* deploys mined itemsets: a postings map
``item → rules whose antecedent contains it`` plus per-rule antecedent
sizes.  Matching walks only the postings of the items the job actually
has, counting hits per candidate rule; a rule fires exactly when its
counter reaches its antecedent size.  Cost: O(items in job + postings
touched), independent of rules whose antecedents share nothing with the
job.

The index is built from the columnar
:class:`~repro.core.ruletable.RuleTable` (the RuleBook's canonical rule
storage): item strings are rendered once per vocabulary entry and the
postings walk the CSR id rows, so no :class:`AssociationRule` objects
exist at build time.  ``index.rules`` materialises object views lazily
for the presentation paths (:class:`Match`, :meth:`explain`); the
``match_wire`` hot path never touches them.

Two serving-oriented optimisations keep the per-request constant small:

* postings are keyed by canonical item *strings*, so the wire form of a
  transaction (a list of strings) is matched without constructing
  :class:`Item` objects per request — unknown or alternate spellings go
  through a memoised canonicalisation cache exactly once;
* every rule's wire representation (the ``fired`` entry of a match
  response) is precomputed at build time, both as a dict and as an
  encoded JSON fragment, so the service serialises a response by string
  joining instead of re-rendering rules per request.

The same hit counters give *near-misses* for free: a rule whose counter
stops one short of its antecedent size is an operator hint ("had this
job also been multi-GPU, the failure rule would fire") — exposed as
:meth:`RuleIndex.explain`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.items import Item
from ..core.rules import AssociationRule
from ..core.ruletable import RuleTable
from .rulebook import RuleBook, _canonical_from_rules

__all__ = ["Match", "NearMiss", "RuleIndex"]

#: stop memoising unseen transaction-item spellings beyond this many
#: cache entries — real vocabularies are a few hundred items, so growth
#: past this means adversarial or malformed traffic
_CANON_CACHE_MAX = 100_000


@dataclass(frozen=True, slots=True)
class Match:
    """One fired rule: the job's items cover the whole antecedent."""

    rule: AssociationRule
    rule_id: int  # position in the index's rule order (lift-ranked)
    consequent_observed: bool  # did the job already exhibit the consequent?
    _wire: dict = field(repr=False, compare=False)

    def as_dict(self) -> dict:
        """Wire form used by the service protocol."""
        return {**self._wire, "consequent_observed": self.consequent_observed}


@dataclass(frozen=True, slots=True)
class NearMiss:
    """A rule one antecedent item short of firing, with the missing item."""

    rule: AssociationRule
    rule_id: int
    missing: Item

    def as_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "antecedent": sorted(i.render() for i in self.rule.antecedent),
            "consequent": sorted(i.render() for i in self.rule.consequent),
            "lift": self.rule.lift,
            "missing": self.missing.render(),
        }


class RuleIndex:
    """Immutable inverted index over a rule set's antecedents.

    Rules are stored lift-ranked (the RuleBook / RuleTable canonical
    order), so walking fired candidates in rule-id order yields matches
    already ranked by (lift, confidence, support) descending — no
    per-query sort.
    """

    __slots__ = (
        "_table",
        "_rules",
        "_postings",
        "_ant_sizes",
        "_ant_keys",
        "_cons_keys",
        "_canon",
        "_item_of",
        "_wire",
        "_wire_json",
    )

    def __init__(
        self,
        rules: Iterable[AssociationRule] | None = None,
        *,
        table: RuleTable | None = None,
    ):
        if table is not None:
            if rules is not None:
                raise ValueError("pass either rules or table, not both")
            table = table.sort_canonical()
        else:
            # object input is re-keyed into a canonical table first, so
            # both construction paths share the one columnar build below
            table = _canonical_from_rules(tuple(rules or ()))
        self._table = table
        self._rules: tuple[AssociationRule, ...] | None = None

        vocabulary = table.vocabulary
        postings: dict[str, list[int]] = {}
        #: any accepted spelling → canonical key (None = known, not indexed)
        canon: dict[str, str | None] = {}
        item_of: dict[str, Item] = {}
        keys_by_id: list[str] = []
        renders_by_id: list[str] = []
        for item in vocabulary:
            key = str(item)
            canon[key] = key
            canon[item.render()] = key
            item_of[key] = item
            keys_by_id.append(key)
            renders_by_id.append(item.render())

        self._ant_sizes: list[int] = []
        self._ant_keys: list[frozenset[str]] = []
        self._cons_keys: list[frozenset[str]] = []
        self._wire: list[dict] = []
        self._wire_json: list[tuple[str, str]] = []
        for rule_id in range(len(table)):
            ant_row = table.ant_row(rule_id)
            cons_row = table.cons_row(rule_id)
            ant_keys = frozenset(keys_by_id[int(x)] for x in ant_row)
            cons_keys = frozenset(keys_by_id[int(x)] for x in cons_row)
            self._ant_sizes.append(len(ant_keys))
            self._ant_keys.append(ant_keys)
            self._cons_keys.append(cons_keys)
            for key in ant_keys:
                postings.setdefault(key, []).append(rule_id)
            wire = {
                "rule_id": rule_id,
                "antecedent": sorted(renders_by_id[int(x)] for x in ant_row),
                "consequent": sorted(renders_by_id[int(x)] for x in cons_row),
                "support": float(table.support[rule_id]),
                "confidence": float(table.confidence[rule_id]),
                "lift": float(table.lift[rule_id]),
            }
            self._wire.append(wire)
            self._wire_json.append(
                (
                    json.dumps({**wire, "consequent_observed": False}),
                    json.dumps({**wire, "consequent_observed": True}),
                )
            )
        self._postings = postings
        self._canon = canon
        self._item_of = item_of

    @classmethod
    def from_rulebook(cls, book: RuleBook) -> "RuleIndex":
        return cls(table=book.table)

    @property
    def table(self) -> RuleTable:
        """The canonical columnar rule storage backing this index."""
        return self._table

    @property
    def rules(self) -> tuple[AssociationRule, ...]:
        """Rule-object views in index order, materialised on first access."""
        if self._rules is None:
            self._rules = tuple(self._table.to_rules())
        return self._rules

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        return (
            f"RuleIndex(n_rules={len(self)}, "
            f"n_indexed_items={len(self._postings)})"
        )

    @property
    def n_postings(self) -> int:
        """Total (item, rule) pairs — the index's memory-side cost."""
        return sum(len(p) for p in self._postings.values())

    # -- matching ----------------------------------------------------------------
    def _normalize(self, transaction: Iterable[Item | str]) -> set[str]:
        """Transaction → set of canonical item keys (unknown items drop).

        First sight of an unseen spelling parses it once and memoises
        the outcome, so steady-state traffic never constructs
        :class:`Item` objects.
        """
        canon = self._canon
        keys: set[str] = set()
        for element in transaction:
            text = element if isinstance(element, str) else str(element)
            mapped = canon.get(text)
            if mapped is not None:
                keys.add(mapped)
                continue
            if text in canon:  # known, but not an indexed item
                continue
            mapped = canon.get(str(Item.parse(text)))
            if len(canon) < _CANON_CACHE_MAX:
                canon[text] = mapped
            if mapped is not None:
                keys.add(mapped)
        return keys

    def _count_hits(self, keys: set[str]) -> dict[int, int]:
        """Antecedent hit counter per candidate rule (the countdown core)."""
        counts: dict[int, int] = {}
        postings = self._postings
        get = counts.get
        for key in keys:
            for rule_id in postings.get(key, ()):
                counts[rule_id] = get(rule_id, 0) + 1
        return counts

    def match(self, transaction: Iterable[Item | str]) -> list[Match]:
        """Rules whose antecedent is fully contained in *transaction*.

        Returned ranked by (lift, confidence, support) descending.  Items
        unknown to the index are ignored — an online job may carry
        features the mined vocabulary never saw.
        """
        keys = self._normalize(transaction)
        return [
            Match(
                rule=self.rules[rule_id],
                rule_id=rule_id,
                consequent_observed=self._cons_keys[rule_id] <= keys,
                _wire=self._wire[rule_id],
            )
            for rule_id in self._fired_ids(keys)
        ]

    def match_wire(
        self, transaction: Iterable[Item | str]
    ) -> list[tuple[int, str]]:
        """Like :meth:`match`, but returning precomputed JSON fragments.

        The service hot path: fired rules come back as ``(rule_id,
        encoded fragment)`` pairs ready to be joined into a
        ``match_result`` payload, with zero per-request serialisation of
        rule content — and zero rule-object materialisation.
        """
        keys = self._normalize(transaction)
        wire_json = self._wire_json
        cons_keys = self._cons_keys
        return [
            (rule_id, wire_json[rule_id][cons_keys[rule_id] <= keys])
            for rule_id in self._fired_ids(keys)
        ]

    def _fired_ids(self, keys: set[str]) -> list[int]:
        """Rule ids whose whole antecedent is covered, in ranked order.

        Sorting happens *after* the fired filter — candidate sets are an
        order of magnitude larger than fired sets on realistic traffic.
        """
        sizes = self._ant_sizes
        return sorted(
            rule_id
            for rule_id, hits in self._count_hits(keys).items()
            if hits == sizes[rule_id]
        )

    def explain(self, transaction: Iterable[Item | str]) -> list[NearMiss]:
        """Rules exactly one antecedent item short of firing on the job.

        The operator-hint counterpart of :meth:`match`: each entry names
        the single missing item.  Single-item antecedents never appear
        (they either fire or share nothing with the job, so there is no
        partial evidence to hint from).
        """
        keys = self._normalize(transaction)
        sizes = self._ant_sizes
        near_ids = sorted(
            rule_id
            for rule_id, hits in self._count_hits(keys).items()
            if hits == sizes[rule_id] - 1
        )
        near: list[NearMiss] = []
        for rule_id in near_ids:
            (missing_key,) = self._ant_keys[rule_id] - keys
            near.append(
                NearMiss(
                    rule=self.rules[rule_id],
                    rule_id=rule_id,
                    missing=self._item_of[missing_key],
                )
            )
        return near

    def iter_rule_labels(self) -> Iterator[str]:
        """Stable per-rule labels (``{ant} => {cons}``) for metrics keys."""
        for rule in self.rules:
            yield _rule_label(rule)

    def rule_label(self, rule_id: int) -> str:
        return _rule_label(self.rules[rule_id])


def _rule_label(rule: AssociationRule) -> str:
    ant = ", ".join(i.render() for i in sorted(rule.antecedent))
    cons = ", ".join(i.render() for i in sorted(rule.consequent))
    return f"{{{ant}}} => {{{cons}}}"
