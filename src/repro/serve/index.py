"""Inverted rule index: match a job against N rules in sub-linear time.

The serving hot path answers "which rules fire on this job?".  The naive
answer checks every rule's antecedent against the transaction — O(N·|A|)
per job, untenable for a book of thousands of rules under thousands of
requests per second.  :class:`RuleIndex` inverts the problem the way
*Fast Dimensional Analysis* deploys mined itemsets: a postings map
``item → rules whose antecedent contains it`` plus per-rule antecedent
sizes.  Matching walks only the postings of the items the job actually
has, counting hits per candidate rule; a rule fires exactly when its
counter reaches its antecedent size.  Cost: O(items in job + postings
touched), independent of rules whose antecedents share nothing with the
job.

The index is built from the columnar
:class:`~repro.core.ruletable.RuleTable` (the RuleBook's canonical rule
storage): item strings are rendered once per vocabulary entry and the
postings walk the CSR id rows, so no :class:`AssociationRule` objects
exist at build time.  ``index.rules`` materialises object views lazily
for the presentation paths (:class:`Match`, :meth:`explain`); the
``match_wire`` hot path never touches them.

Two serving-oriented optimisations keep the per-request constant small:

* postings are keyed by canonical item *strings*, so the wire form of a
  transaction (a list of strings) is matched without constructing
  :class:`Item` objects per request — unknown or alternate spellings go
  through a memoised canonicalisation cache exactly once;
* every rule's wire representation (the ``fired`` entry of a match
  response) is precomputed at build time, both as a dict and as an
  encoded JSON fragment, so the service serialises a response by string
  joining instead of re-rendering rules per request.

The same hit counters give *near-misses* for free: a rule whose counter
stops one short of its antecedent size is an operator hint ("had this
job also been multi-GPU, the failure rule would fire") — exposed as
:meth:`RuleIndex.explain`.

Beyond the scalar path, the index compiles its table into a
:class:`~repro.serve.batchmatch.BatchMaskKernel` — packed uint64
antecedent/consequent masks over the book's item id-space — and exposes
batch variants (:meth:`match_wire_batch`, :meth:`match_batch`,
:meth:`explain_batch`) that answer a whole micro-batch of jobs in a few
NumPy subset/popcount passes.  The scalar inverted-index path is
retained unchanged as the equivalence oracle the CI sweeps diff the
kernel against (DESIGN.md §13).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..core.bitmap import kernel_timer
from ..core.items import Item
from ..core.rules import AssociationRule
from ..core.ruletable import RuleTable
from .batchmatch import BatchMaskKernel, encode_id_transactions
from .rulebook import RuleBook, _canonical_from_rules

__all__ = ["Match", "NearMiss", "RuleIndex"]

#: bound on memoised unseen transaction-item spellings — real
#: vocabularies are a few hundred items, so growth past this means
#: adversarial or malformed traffic.  The cache *evicts* (FIFO) at the
#: bound rather than shutting off, so steady-state traffic keeps its
#: hits even after an adversarial burst has filled it.
_CANON_CACHE_MAX = 100_000

#: sentinel distinguishing "never seen" from "seen, maps to nothing"
_UNSEEN = object()


@dataclass(frozen=True, slots=True)
class Match:
    """One fired rule: the job's items cover the whole antecedent."""

    rule: AssociationRule
    rule_id: int  # position in the index's rule order (lift-ranked)
    consequent_observed: bool  # did the job already exhibit the consequent?
    _wire: dict = field(repr=False, compare=False)

    def as_dict(self) -> dict:
        """Wire form used by the service protocol."""
        return {**self._wire, "consequent_observed": self.consequent_observed}


@dataclass(frozen=True, slots=True)
class NearMiss:
    """A rule one antecedent item short of firing, with the missing item."""

    rule: AssociationRule
    rule_id: int
    missing: Item

    def as_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "antecedent": sorted(i.render() for i in self.rule.antecedent),
            "consequent": sorted(i.render() for i in self.rule.consequent),
            "lift": self.rule.lift,
            "missing": self.missing.render(),
        }


class RuleIndex:
    """Immutable inverted index over a rule set's antecedents.

    Rules are stored lift-ranked (the RuleBook / RuleTable canonical
    order), so walking fired candidates in rule-id order yields matches
    already ranked by (lift, confidence, support) descending — no
    per-query sort.
    """

    __slots__ = (
        "_table",
        "_rules",
        "_postings",
        "_ant_sizes",
        "_ant_keys",
        "_cons_keys",
        "_canon",
        "_canon_extra",
        "_item_of",
        "_id_of",
        "_items_by_id",
        "_wire",
        "_wire_json",
        "_kernel",
        "shm_segment",
    )

    def __init__(
        self,
        rules: Iterable[AssociationRule] | None = None,
        *,
        table: RuleTable | None = None,
    ):
        if table is not None:
            if rules is not None:
                raise ValueError("pass either rules or table, not both")
            table = table.sort_canonical()
        else:
            # object input is re-keyed into a canonical table first, so
            # both construction paths share the one columnar build below
            table = _canonical_from_rules(tuple(rules or ()))
        self._init_compiled(table, kernel=None, wire_json=None)
        # local builds pay the scalar compile up front, exactly as before
        # the shared-memory plane existed — the lazy path is for attach
        self._build_scalar()

    def _init_compiled(
        self,
        table: RuleTable,
        *,
        kernel: BatchMaskKernel | None,
        wire_json: list[tuple[str, str]] | None,
    ) -> None:
        """Set up the compiled (batch) plane; scalar structures stay lazy.

        The table is trusted to already be in canonical order — both
        callers guarantee it (:meth:`__init__` sorts, the shm attach path
        maps a table that was published from a sorted index).
        """
        self._table = table
        self._rules: tuple[AssociationRule, ...] | None = None
        #: shared-memory attachment backing this index's arrays (attach
        #: path only); riding here keeps the mapping alive with the views
        self.shm_segment = None

        vocabulary = table.vocabulary
        #: built-in accepted spelling → canonical key (vocabulary items)
        canon: dict[str, str] = {}
        item_of: dict[str, Item] = {}
        id_of: dict[str, int] = {}
        items_by_id: list[Item] = []
        for item_id, item in enumerate(vocabulary):
            key = str(item)
            canon[key] = key
            canon[item.render()] = key
            item_of[key] = item
            id_of[key] = item_id
            items_by_id.append(item)
        self._canon = canon
        #: learned spelling → canonical key or None; bounded, FIFO-evicted
        self._canon_extra: dict[str, str | None] = {}
        self._item_of = item_of
        self._id_of = id_of
        self._items_by_id = items_by_id

        # scalar structures (inverted index, per-rule key sets, wire
        # dicts) are built on demand by _build_scalar; the wire JSON
        # fragments may arrive precomputed from a published rule plane
        self._postings: dict[str, list[int]] | None = None
        self._ant_sizes: list[int] | None = None
        self._ant_keys: list[frozenset[str]] | None = None
        self._cons_keys: list[frozenset[str]] | None = None
        self._wire: list[dict] | None = None
        self._wire_json = wire_json
        # compiled once per index build — i.e. once per hot-swap, since a
        # reload always carries a fresh RuleIndex through the flip marker
        self._kernel = kernel if kernel is not None else BatchMaskKernel(table)

    def _build_scalar(self) -> None:
        """Build the scalar inverted-index structures (idempotent).

        The batch wire path (``match_wire_batch``) needs none of these —
        an shm-attached index serves whole micro-batches straight off
        the kernel and the precomputed wire fragments, and only pays
        this build if a scalar ``match``/``explain`` request arrives.
        """
        if self._postings is not None:
            return
        table = self._table
        keys_by_id = [str(item) for item in self._items_by_id]
        renders_by_id = [item.render() for item in self._items_by_id]
        postings: dict[str, list[int]] = {}
        ant_sizes: list[int] = []
        ant_keys_all: list[frozenset[str]] = []
        cons_keys_all: list[frozenset[str]] = []
        wire_all: list[dict] = []
        wire_json: list[tuple[str, str]] | None = (
            [] if self._wire_json is None else None
        )
        for rule_id in range(len(table)):
            ant_row = table.ant_row(rule_id)
            cons_row = table.cons_row(rule_id)
            ant_keys = frozenset(keys_by_id[int(x)] for x in ant_row)
            cons_keys = frozenset(keys_by_id[int(x)] for x in cons_row)
            ant_sizes.append(len(ant_keys))
            ant_keys_all.append(ant_keys)
            cons_keys_all.append(cons_keys)
            for key in ant_keys:
                postings.setdefault(key, []).append(rule_id)
            wire = {
                "rule_id": rule_id,
                "antecedent": sorted(renders_by_id[int(x)] for x in ant_row),
                "consequent": sorted(renders_by_id[int(x)] for x in cons_row),
                "support": float(table.support[rule_id]),
                "confidence": float(table.confidence[rule_id]),
                "lift": float(table.lift[rule_id]),
            }
            wire_all.append(wire)
            if wire_json is not None:
                wire_json.append(
                    (
                        json.dumps({**wire, "consequent_observed": False}),
                        json.dumps({**wire, "consequent_observed": True}),
                    )
                )
        self._ant_sizes = ant_sizes
        self._ant_keys = ant_keys_all
        self._cons_keys = cons_keys_all
        self._wire = wire_all
        if wire_json is not None:
            self._wire_json = wire_json
        self._postings = postings

    @classmethod
    def from_rulebook(cls, book: RuleBook) -> "RuleIndex":
        return cls(table=book.table)

    @classmethod
    def from_compiled(
        cls,
        table: RuleTable,
        *,
        kernel: BatchMaskKernel,
        wire_json: list[tuple[str, str]],
    ) -> "RuleIndex":
        """Adopt an already-compiled rule plane without recompiling it.

        The shm attach path: *table* (canonical order trusted), the
        packed-bitmask *kernel* and the per-rule *wire_json* fragments
        come straight out of a published segment, so construction is
        O(vocabulary) — no canonical sort, no mask packing, no JSON
        encoding.  Scalar structures build lazily on first scalar call.
        """
        self = object.__new__(cls)
        self._init_compiled(table, kernel=kernel, wire_json=wire_json)
        return self

    @property
    def table(self) -> RuleTable:
        """The canonical columnar rule storage backing this index."""
        return self._table

    @property
    def rules(self) -> tuple[AssociationRule, ...]:
        """Rule-object views in index order, materialised on first access."""
        if self._rules is None:
            self._rules = tuple(self._table.to_rules())
        return self._rules

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        self._build_scalar()
        return (
            f"RuleIndex(n_rules={len(self)}, "
            f"n_indexed_items={len(self._postings)})"
        )

    @property
    def n_postings(self) -> int:
        """Total (item, rule) pairs — the index's memory-side cost."""
        self._build_scalar()
        return sum(len(p) for p in self._postings.values())

    # -- matching ----------------------------------------------------------------
    def _normalize(self, transaction: Iterable[Item | str]) -> set[str]:
        """Transaction → set of canonical item keys (unknown items drop).

        First sight of an unseen spelling parses it once and memoises
        the outcome in a *bounded* side cache, so steady-state traffic
        never constructs :class:`Item` objects.  At capacity the oldest
        learned spelling is evicted (dict insertion order = FIFO) — the
        cache keeps memoising under adversarial vocabulary churn instead
        of silently re-parsing every unseen spelling forever.
        """
        canon = self._canon
        extra = self._canon_extra
        keys: set[str] = set()
        for element in transaction:
            text = element if isinstance(element, str) else str(element)
            mapped = canon.get(text)
            if mapped is None:
                mapped = extra.get(text, _UNSEEN)
                if mapped is _UNSEEN:
                    mapped = canon.get(str(Item.parse(text)))
                    if len(extra) >= _CANON_CACHE_MAX:
                        extra.pop(next(iter(extra)))
                    extra[text] = mapped
            if mapped is not None:
                keys.add(mapped)
        return keys

    @property
    def canon_cache_len(self) -> int:
        """Learned (non-vocabulary) spellings currently memoised."""
        return len(self._canon_extra)

    def _count_hits(self, keys: set[str]) -> dict[int, int]:
        """Antecedent hit counter per candidate rule (the countdown core)."""
        counts: dict[int, int] = {}
        postings = self._postings
        get = counts.get
        for key in keys:
            for rule_id in postings.get(key, ()):
                counts[rule_id] = get(rule_id, 0) + 1
        return counts

    def match(self, transaction: Iterable[Item | str]) -> list[Match]:
        """Rules whose antecedent is fully contained in *transaction*.

        Returned ranked by (lift, confidence, support) descending.  Items
        unknown to the index are ignored — an online job may carry
        features the mined vocabulary never saw.
        """
        self._build_scalar()
        keys = self._normalize(transaction)
        return [
            Match(
                rule=self.rules[rule_id],
                rule_id=rule_id,
                consequent_observed=self._cons_keys[rule_id] <= keys,
                _wire=self._wire[rule_id],
            )
            for rule_id in self._fired_ids(keys)
        ]

    def match_wire(
        self, transaction: Iterable[Item | str]
    ) -> list[tuple[int, str]]:
        """Like :meth:`match`, but returning precomputed JSON fragments.

        The service hot path: fired rules come back as ``(rule_id,
        encoded fragment)`` pairs ready to be joined into a
        ``match_result`` payload, with zero per-request serialisation of
        rule content — and zero rule-object materialisation.
        """
        self._build_scalar()
        keys = self._normalize(transaction)
        wire_json = self._wire_json
        cons_keys = self._cons_keys
        return [
            (rule_id, wire_json[rule_id][cons_keys[rule_id] <= keys])
            for rule_id in self._fired_ids(keys)
        ]

    def _fired_ids(self, keys: set[str]) -> list[int]:
        """Rule ids whose whole antecedent is covered, in ranked order.

        Sorting happens *after* the fired filter — candidate sets are an
        order of magnitude larger than fired sets on realistic traffic.
        """
        sizes = self._ant_sizes
        return sorted(
            rule_id
            for rule_id, hits in self._count_hits(keys).items()
            if hits == sizes[rule_id]
        )

    def explain(self, transaction: Iterable[Item | str]) -> list[NearMiss]:
        """Rules exactly one antecedent item short of firing on the job.

        The operator-hint counterpart of :meth:`match`: each entry names
        the single missing item.  Single-item antecedents never appear
        (they either fire or share nothing with the job, so there is no
        partial evidence to hint from).
        """
        self._build_scalar()
        keys = self._normalize(transaction)
        sizes = self._ant_sizes
        near_ids = sorted(
            rule_id
            for rule_id, hits in self._count_hits(keys).items()
            if hits == sizes[rule_id] - 1
        )
        near: list[NearMiss] = []
        for rule_id in near_ids:
            (missing_key,) = self._ant_keys[rule_id] - keys
            near.append(
                NearMiss(
                    rule=self.rules[rule_id],
                    rule_id=rule_id,
                    missing=self._item_of[missing_key],
                )
            )
        return near

    # -- batch matching (packed-bitmask kernel) ----------------------------------
    @property
    def kernel(self) -> BatchMaskKernel:
        """The compiled packed-bitmask kernel backing the batch paths."""
        return self._kernel

    def encode_batch(
        self, transactions: Iterable[Iterable[Item | str]]
    ) -> np.ndarray:
        """Encode jobs into a ``(n_jobs, n_words)`` uint64 bit-matrix.

        Each job goes through the same memoised canonicaliser as the
        scalar path (so unknown items drop and duplicates collapse),
        then its item ids are packed with the rule masks' bit layout.
        """
        id_of = self._id_of
        id_rows = [
            [id_of[key] for key in self._normalize(transaction)]
            for transaction in transactions
        ]
        return encode_id_transactions(id_rows, self._kernel.n_words)

    def _fired_pairs(
        self, jobs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(job_idx, rule_idx, consequent_observed) over one encoded batch.

        ``np.nonzero`` on the row-major fired matrix yields rule ids
        ascending within each job — the canonical lift ranking, same as
        the scalar path's sorted fired ids.
        """
        fired = self._kernel.fired_mask(jobs)
        job_idx, rule_idx = np.nonzero(fired)
        cons_ok = self._kernel.cons_observed(jobs, job_idx, rule_idx)
        return job_idx, rule_idx, cons_ok

    def match_wire_batch(
        self, transactions: list
    ) -> list[list[tuple[int, str]]]:
        """Batch form of :meth:`match_wire`: one kernel call, all jobs.

        Returns one ``[(rule_id, encoded fragment), ...]`` list per
        input job, byte-identical to calling :meth:`match_wire` on each
        job individually — proven by the CI equality sweeps.
        """
        out: list[list[tuple[int, str]]] = [[] for _ in transactions]
        if not out or not len(self._table):
            return out
        with kernel_timer("serve-batch-match"):
            jobs = self.encode_batch(transactions)
            job_idx, rule_idx, cons_ok = self._fired_pairs(jobs)
        wire_json = self._wire_json
        for j, r, c in zip(
            job_idx.tolist(), rule_idx.tolist(), cons_ok.tolist()
        ):
            out[j].append((r, wire_json[r][c]))
        return out

    def match_batch(self, transactions: list) -> list[list[Match]]:
        """Batch form of :meth:`match`: ranked :class:`Match` lists."""
        self._build_scalar()
        out: list[list[Match]] = [[] for _ in transactions]
        if not out or not len(self._table):
            return out
        with kernel_timer("serve-batch-match"):
            jobs = self.encode_batch(transactions)
            job_idx, rule_idx, cons_ok = self._fired_pairs(jobs)
        rules = self.rules
        wire = self._wire
        for j, r, c in zip(
            job_idx.tolist(), rule_idx.tolist(), cons_ok.tolist()
        ):
            out[j].append(
                Match(
                    rule=rules[r],
                    rule_id=r,
                    consequent_observed=c,
                    _wire=wire[r],
                )
            )
        return out

    def explain_batch(self, transactions: list) -> list[list[NearMiss]]:
        """Batch form of :meth:`explain`: one-item-short rules per job.

        The missing item is read straight out of ``ant & ~job`` — for a
        near-miss pair that difference has exactly one set bit.
        """
        out: list[list[NearMiss]] = [[] for _ in transactions]
        if not out or not len(self._table):
            return out
        with kernel_timer("serve-batch-explain"):
            jobs = self.encode_batch(transactions)
            near = self._kernel.near_mask(jobs)
            job_idx, rule_idx = np.nonzero(near)
            missing = self._kernel.missing_ids(jobs, job_idx, rule_idx)
        rules = self.rules
        items_by_id = self._items_by_id
        for j, r, m in zip(
            job_idx.tolist(), rule_idx.tolist(), missing.tolist()
        ):
            out[j].append(
                NearMiss(rule=rules[r], rule_id=r, missing=items_by_id[m])
            )
        return out

    def iter_rule_labels(self) -> Iterator[str]:
        """Stable per-rule labels (``{ant} => {cons}``) for metrics keys."""
        for rule in self.rules:
            yield _rule_label(rule)

    def rule_label(self, rule_id: int) -> str:
        return _rule_label(self.rules[rule_id])


def _rule_label(rule: AssociationRule) -> str:
    ant = ", ".join(i.render() for i in sorted(rule.antecedent))
    cons = ", ".join(i.render() for i in sorted(rule.consequent))
    return f"{{{ant}}} => {{{cons}}}"
