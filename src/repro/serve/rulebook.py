"""Versioned persistence for mined rules: the RuleBook.

Offline mining produces rules; online serving needs them to outlive the
mining process.  A :class:`RuleBook` is the hand-off artefact: the pruned
rule set plus the provenance an operator needs to trust it — which trace
and keywords it was mined from, the full :class:`MiningConfig`, the
content fingerprint of the transaction database, and the engine backend
that produced it.

Internally a book stores its rules as a columnar
:class:`~repro.core.ruletable.RuleTable` (the canonical rule form):
persistence streams straight from the table's CSR id rows and metric
columns, and :class:`~repro.serve.RuleIndex` builds its postings from the
same arrays.  ``book.rules`` materialises
:class:`~repro.core.rules.AssociationRule` views lazily for callers that
still want objects.

The on-disk format is JSON-lines with a mandatory header record::

    {"record": "header", "schema_version": 1, "items": [...], ...}
    {"record": "rule", "antecedent_ids": [...], "support": ..., ...}
    ...

One line per record keeps the format streamable and diffable; the header
carries the item vocabulary (id → [feature, value]) so rule lines stay
compact and id-exact.  Loading refuses any file whose ``schema_version``
differs from :data:`SCHEMA_VERSION` — a serving process must never guess
at rule semantics.  Non-finite floats (an exact implication has
conviction ∞) are encoded as the strings ``"inf"`` / ``"-inf"`` /
``"nan"`` so every line is strict JSON.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..core.items import Item, ItemVocabulary
from ..core.mining import MiningConfig
from ..core.rules import AssociationRule
from ..core.ruletable import RuleTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.workflow import AnalysisResult

__all__ = ["SCHEMA_VERSION", "RuleBookSchemaError", "RuleBook"]

#: current on-disk schema; bump on any incompatible format change
SCHEMA_VERSION = 1

#: float fields of a rule record, in serialisation order
_METRIC_FIELDS = ("support", "confidence", "lift", "leverage", "conviction")


class RuleBookSchemaError(ValueError):
    """The file is not a RuleBook this code understands."""


def _enc_float(value: float) -> float | str:
    """Encode a float as strict JSON (non-finite values become strings)."""
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def _dec_float(value: float | int | str) -> float:
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise RuleBookSchemaError(f"bad float literal {value!r}") from None
    return float(value)


class RuleBook:
    """A persisted, provenance-stamped set of association rules.

    ``rules`` are ordered by (lift, confidence, support) descending — the
    ranking the paper's tables use and the order the serving index
    preserves.  All provenance fields are optional so a RuleBook can also
    wrap ad-hoc rule lists (tests, benchmarks).

    On construction the rules are re-keyed into the book's own dense
    id-space (items sorted, id = rank): a rule's identity must not depend
    on the insertion order of the mining vocabulary it came from, or two
    books over identical rules would differ on disk.  Canonicalisation is
    idempotent, which is exactly what makes save → load bit-exact — and
    it happens on the table's columns, whether the book was built from a
    :class:`RuleTable` (``table=``) or from rule objects (``rules=``).
    """

    __slots__ = (
        "trace",
        "keywords",
        "config",
        "fingerprint",
        "backend",
        "n_transactions",
        "stream",
        "schema_version",
        "_table",
        "_rules",
    )

    def __init__(
        self,
        rules: Sequence[AssociationRule] = (),
        trace: str | None = None,
        keywords: dict[str, str] | None = None,
        config: MiningConfig | None = None,
        fingerprint: str | None = None,
        backend: str | None = None,
        n_transactions: int | None = None,
        schema_version: int = SCHEMA_VERSION,
        *,
        table: RuleTable | None = None,
        stream: dict | None = None,
    ):
        self.trace = trace
        self.keywords = dict(keywords) if keywords else {}
        self.config = config
        self.fingerprint = fingerprint
        self.backend = backend
        self.n_transactions = n_transactions
        # stream provenance (follow mode): window bounds, n_seen, trigger
        # reason — None for batch-mined books, absent from their headers
        self.stream = dict(stream) if stream else None
        self.schema_version = schema_version
        if table is not None:
            if rules:
                raise ValueError("pass either rules or table, not both")
            self._table = _canonical_from_table(table)
        else:
            self._table = _canonical_from_rules(tuple(rules))
        self._rules: tuple[AssociationRule, ...] | None = None

    # -- rule access -----------------------------------------------------------
    @property
    def table(self) -> RuleTable:
        """The canonical columnar rule storage (dense sorted id-space)."""
        return self._table

    @property
    def rules(self) -> tuple[AssociationRule, ...]:
        """Rule-object views of the table, materialised on first access."""
        if self._rules is None:
            self._rules = tuple(self._table.to_rules())
        return self._rules

    @property
    def _items(self) -> tuple[Item, ...]:
        """The canonical id-space (position = id)."""
        return tuple(self._table.vocabulary)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self.rules)

    def __repr__(self) -> str:
        return (
            f"RuleBook(n_rules={len(self)}, trace={self.trace!r}, "
            f"keywords={sorted(self.keywords)})"
        )

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_analysis(
        cls, result: "AnalysisResult", trace: str | None = None
    ) -> "RuleBook":
        """Collect every kept rule of an analysis run into a RuleBook.

        Cause and characteristic rules of all keyword studies are pooled;
        a rule surviving several studies appears once.  Provenance (config,
        database fingerprint, backend) is lifted off the result.  When the
        run carries the engine's columnar union
        (:attr:`~repro.analysis.workflow.AnalysisResult.rule_table`), the
        book is built from those columns directly; results assembled by
        hand fall back to pooling the per-keyword rule objects.
        """
        provenance = dict(
            trace=trace,
            keywords={
                name: ruleset.keyword.render()
                for name, ruleset in result.keyword_results.items()
            },
            config=result.config,
            fingerprint=result.preprocess.database.fingerprint(),
            backend=result.stats.backend if result.stats is not None else None,
            n_transactions=len(result.preprocess.database),
        )
        table = getattr(result, "rule_table", None)
        if table is not None:
            return cls(table=table, **provenance)
        seen: set[tuple[frozenset[int], frozenset[int]]] = set()
        rules: list[AssociationRule] = []
        for ruleset in result.keyword_results.values():
            for rule in ruleset.all_rules:
                key = (rule.antecedent_ids, rule.consequent_ids)
                if key in seen:
                    continue
                seen.add(key)
                rules.append(rule)
        return cls(rules=tuple(rules), **provenance)

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write header + one rule record per line (strict JSON lines).

        The header's ``items`` list is the book's canonical id-space
        (position = id), so rule lines stay compact and a loaded rule
        compares equal to the saved one field for field, ids included.
        Records stream straight off the table columns; no rule objects
        are materialised.
        """
        table = self._table
        header = {
            "record": "header",
            "schema_version": self.schema_version,
            "n_rules": len(table),
            "items": [[item.feature, item.value] for item in self._items],
            "trace": self.trace,
            "keywords": self.keywords,
            "config": None if self.config is None else asdict(self.config),
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "n_transactions": self.n_transactions,
        }
        if self.stream is not None:
            header["stream"] = self.stream
        metric_cols = [getattr(table, name) for name in _METRIC_FIELDS]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for i in range(len(table)):
                record: dict = {
                    "record": "rule",
                    "antecedent_ids": [int(x) for x in table.ant_row(i)],
                    "consequent_ids": [int(x) for x in table.cons_row(i)],
                }
                for name, col in zip(_METRIC_FIELDS, metric_cols):
                    record[name] = _enc_float(float(col[i]))
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RuleBook":
        """Load a RuleBook, validating schema version and record shape.

        Rule records decode straight into table columns; the constructor
        re-canonicalises, so a hand-edited file (unsorted ids, unused
        header items) still loads into the same book its pristine twin
        would.
        """
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        if not lines:
            raise RuleBookSchemaError(f"{path}: empty file, expected a header record")
        header = _parse_json(lines[0], path, 1)
        if header.get("record") != "header":
            raise RuleBookSchemaError(
                f"{path}: first record must be the header, got "
                f"{header.get('record')!r}"
            )
        version = header.get("schema_version")
        if version != SCHEMA_VERSION:
            raise RuleBookSchemaError(
                f"{path}: schema_version {version!r} is not supported "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        try:
            items = [Item(feature, value) for feature, value in header["items"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise RuleBookSchemaError(f"{path}: bad item table: {exc}") from None
        config = header.get("config")

        n_rules = 0
        ant_indptr = [0]
        cons_indptr = [0]
        ant_ids: list[int] = []
        cons_ids: list[int] = []
        metrics: dict[str, list[float]] = {name: [] for name in _METRIC_FIELDS}
        for lineno, line in enumerate(lines[1:], start=2):
            record = _parse_json(line, path, lineno)
            if record.get("record") != "rule":
                raise RuleBookSchemaError(
                    f"{path}:{lineno}: expected a rule record, got "
                    f"{record.get('record')!r}"
                )
            try:
                # set-dedup tolerates repeated ids within a side, exactly
                # like the frozenset decoding of earlier versions
                ant = sorted({int(i) for i in record["antecedent_ids"]})
                cons = sorted({int(i) for i in record["consequent_ids"]})
                for i in ant + cons:
                    if not 0 <= i < len(items):
                        raise ValueError(f"item id {i} outside the header item table")
                if not ant or not cons:
                    raise ValueError("rule sides must be non-empty")
                if set(ant) & set(cons):
                    raise ValueError("antecedent and consequent must be disjoint")
                row = {name: _dec_float(record[name]) for name in _METRIC_FIELDS}
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                raise RuleBookSchemaError(
                    f"{path}:{lineno}: bad rule record: {exc}"
                ) from None
            ant_ids.extend(ant)
            cons_ids.extend(cons)
            ant_indptr.append(len(ant_ids))
            cons_indptr.append(len(cons_ids))
            for name in _METRIC_FIELDS:
                metrics[name].append(row[name])
            n_rules += 1
        if n_rules != header.get("n_rules", n_rules):
            raise RuleBookSchemaError(
                f"{path}: header promises {header['n_rules']} rules, "
                f"found {n_rules} — truncated file?"
            )
        table = RuleTable(
            ItemVocabulary(items),
            ant_indptr,
            ant_ids,
            cons_indptr,
            cons_ids,
            metrics["support"],
            metrics["confidence"],
            metrics["lift"],
            metrics["leverage"],
            metrics["conviction"],
        )
        return cls(
            table=table,
            trace=header.get("trace"),
            keywords=dict(header.get("keywords") or {}),
            config=None if config is None else MiningConfig(**config),
            fingerprint=header.get("fingerprint"),
            backend=header.get("backend"),
            n_transactions=header.get("n_transactions"),
            stream=header.get("stream"),
        )

    # -- derived views ---------------------------------------------------------
    def vocabulary(self) -> ItemVocabulary:
        """The canonical id-space as a vocabulary (id = insertion order)."""
        return ItemVocabulary(self._items)

    def provenance(self) -> str:
        """One-line provenance summary for CLI output and logs."""
        parts = [f"{len(self)} rules"]
        if self.trace:
            parts.append(f"trace={self.trace}")
        if self.keywords:
            parts.append("keywords=" + ",".join(sorted(self.keywords.values())))
        if self.n_transactions is not None:
            parts.append(f"mined_from={self.n_transactions} jobs")
        if self.fingerprint:
            parts.append(f"db={self.fingerprint[:12]}")
        if self.backend:
            parts.append(f"backend={self.backend}")
        if self.stream:
            window = self.stream.get("window")
            span = f"[{window[0]},{window[1]})" if window else "?"
            parts.append(
                f"stream={span} of {self.stream.get('n_seen', '?')} seen, "
                f"trigger={self.stream.get('trigger', '?')}"
            )
        return ", ".join(parts)


def _canonical_from_rules(rules: tuple[AssociationRule, ...]) -> RuleTable:
    """Re-key rule objects into the dense sorted id-space, as a table."""
    items = sorted({item for rule in rules for item in rule.items})
    ids = {item: i for i, item in enumerate(items)}
    ant_indptr = [0]
    cons_indptr = [0]
    ant_ids: list[int] = []
    cons_ids: list[int] = []
    metrics: dict[str, list[float]] = {name: [] for name in _METRIC_FIELDS}
    for rule in rules:
        ant_ids.extend(sorted(ids[item] for item in rule.antecedent))
        cons_ids.extend(sorted(ids[item] for item in rule.consequent))
        ant_indptr.append(len(ant_ids))
        cons_indptr.append(len(cons_ids))
        for name in _METRIC_FIELDS:
            metrics[name].append(getattr(rule, name))
    table = RuleTable(
        ItemVocabulary(items),
        ant_indptr,
        ant_ids,
        cons_indptr,
        cons_ids,
        metrics["support"],
        metrics["confidence"],
        metrics["lift"],
        metrics["leverage"],
        metrics["conviction"],
    )
    return table.sort_canonical()


def _canonical_from_table(table: RuleTable) -> RuleTable:
    """Remap a table into its own dense sorted id-space and sort it.

    Only ids actually referenced by some rule survive into the book's
    vocabulary — mining vocabularies carry every item of the trace, most
    of which never reach a kept rule.
    """
    width = table.n_items
    used = np.zeros(width, dtype=bool)
    if table.ant_ids.size:
        used[table.ant_ids] = True
    if table.cons_ids.size:
        used[table.cons_ids] = True
    old_ids = np.flatnonzero(used)
    pairs = sorted((table.vocabulary.item_of(int(i)), int(i)) for i in old_ids)
    vocabulary = ItemVocabulary(item for item, _old in pairs)
    mapping = np.full(width, -1, dtype=np.int64)
    for new_id, (_item, old_id) in enumerate(pairs):
        mapping[old_id] = new_id
    return table.remap_ids(mapping, vocabulary).sort_canonical()


def _parse_json(line: str, path, lineno: int) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RuleBookSchemaError(f"{path}:{lineno}: not JSON: {exc}") from None
    if not isinstance(record, dict):
        raise RuleBookSchemaError(f"{path}:{lineno}: record must be an object")
    return record
