"""Versioned persistence for mined rules: the RuleBook.

Offline mining produces rules; online serving needs them to outlive the
mining process.  A :class:`RuleBook` is the hand-off artefact: the pruned
rule set plus the provenance an operator needs to trust it — which trace
and keywords it was mined from, the full :class:`MiningConfig`, the
content fingerprint of the transaction database, and the engine backend
that produced it.

The on-disk format is JSON-lines with a mandatory header record::

    {"record": "header", "schema_version": 1, "items": [...], ...}
    {"record": "rule", "antecedent_ids": [...], "support": ..., ...}
    ...

One line per record keeps the format streamable and diffable; the header
carries the item vocabulary (id → [feature, value]) so rule lines stay
compact and id-exact.  Loading refuses any file whose ``schema_version``
differs from :data:`SCHEMA_VERSION` — a serving process must never guess
at rule semantics.  Non-finite floats (an exact implication has
conviction ∞) are encoded as the strings ``"inf"`` / ``"-inf"`` /
``"nan"`` so every line is strict JSON.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..core.items import Item, ItemVocabulary
from ..core.mining import MiningConfig
from ..core.rules import AssociationRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.workflow import AnalysisResult

__all__ = ["SCHEMA_VERSION", "RuleBookSchemaError", "RuleBook"]

#: current on-disk schema; bump on any incompatible format change
SCHEMA_VERSION = 1

#: float fields of a rule record, in serialisation order
_METRIC_FIELDS = ("support", "confidence", "lift", "leverage", "conviction")


class RuleBookSchemaError(ValueError):
    """The file is not a RuleBook this code understands."""


def _enc_float(value: float) -> float | str:
    """Encode a float as strict JSON (non-finite values become strings)."""
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def _dec_float(value: float | int | str) -> float:
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise RuleBookSchemaError(f"bad float literal {value!r}") from None
    return float(value)


@dataclass(slots=True)
class RuleBook:
    """A persisted, provenance-stamped set of association rules.

    ``rules`` are ordered by (lift, confidence, support) descending — the
    ranking the paper's tables use and the order the serving index
    preserves.  All provenance fields are optional so a RuleBook can also
    wrap ad-hoc rule lists (tests, benchmarks).

    On construction every rule is re-keyed into the book's own dense
    id-space (items sorted, id = rank): a rule's identity must not depend
    on the insertion order of the mining vocabulary it came from, or two
    books over identical rules would differ on disk.  Canonicalisation is
    idempotent, which is exactly what makes save → load bit-exact.
    """

    rules: tuple[AssociationRule, ...]
    trace: str | None = None
    keywords: dict[str, str] = field(default_factory=dict)
    config: MiningConfig | None = None
    fingerprint: str | None = None
    backend: str | None = None
    n_transactions: int | None = None
    schema_version: int = SCHEMA_VERSION
    _items: tuple[Item, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        items = sorted({item for rule in self.rules for item in rule.items})
        ids = {item: i for i, item in enumerate(items)}
        self._items = tuple(items)
        self.rules = tuple(
            sorted((_rekey_rule(rule, ids) for rule in self.rules), key=_rule_order)
        )

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self.rules)

    def __repr__(self) -> str:
        return (
            f"RuleBook(n_rules={len(self)}, trace={self.trace!r}, "
            f"keywords={sorted(self.keywords)})"
        )

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_analysis(
        cls, result: "AnalysisResult", trace: str | None = None
    ) -> "RuleBook":
        """Collect every kept rule of an analysis run into a RuleBook.

        Cause and characteristic rules of all keyword studies are pooled;
        a rule surviving several studies appears once.  Provenance (config,
        database fingerprint, backend) is lifted off the result.
        """
        seen: set[tuple[frozenset[int], frozenset[int]]] = set()
        rules: list[AssociationRule] = []
        for ruleset in result.keyword_results.values():
            for rule in ruleset.all_rules:
                key = (rule.antecedent_ids, rule.consequent_ids)
                if key in seen:
                    continue
                seen.add(key)
                rules.append(rule)
        return cls(
            rules=tuple(rules),
            trace=trace,
            keywords={
                name: ruleset.keyword.render()
                for name, ruleset in result.keyword_results.items()
            },
            config=result.config,
            fingerprint=result.preprocess.database.fingerprint(),
            backend=result.stats.backend if result.stats is not None else None,
            n_transactions=len(result.preprocess.database),
        )

    # -- persistence -----------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write header + one rule record per line (strict JSON lines).

        The header's ``items`` list is the book's canonical id-space
        (position = id), so rule lines stay compact and a loaded rule
        compares equal to the saved one field for field, ids included.
        """
        header = {
            "record": "header",
            "schema_version": self.schema_version,
            "n_rules": len(self.rules),
            "items": [[item.feature, item.value] for item in self._items],
            "trace": self.trace,
            "keywords": self.keywords,
            "config": None if self.config is None else asdict(self.config),
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "n_transactions": self.n_transactions,
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for rule in self.rules:
                record: dict = {
                    "record": "rule",
                    "antecedent_ids": sorted(rule.antecedent_ids),
                    "consequent_ids": sorted(rule.consequent_ids),
                }
                for name in _METRIC_FIELDS:
                    record[name] = _enc_float(getattr(rule, name))
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RuleBook":
        """Load a RuleBook, validating schema version and record shape."""
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        if not lines:
            raise RuleBookSchemaError(f"{path}: empty file, expected a header record")
        header = _parse_json(lines[0], path, 1)
        if header.get("record") != "header":
            raise RuleBookSchemaError(
                f"{path}: first record must be the header, got "
                f"{header.get('record')!r}"
            )
        version = header.get("schema_version")
        if version != SCHEMA_VERSION:
            raise RuleBookSchemaError(
                f"{path}: schema_version {version!r} is not supported "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        try:
            items = [Item(feature, value) for feature, value in header["items"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise RuleBookSchemaError(f"{path}: bad item table: {exc}") from None
        config = header.get("config")
        rules = []
        for lineno, line in enumerate(lines[1:], start=2):
            record = _parse_json(line, path, lineno)
            if record.get("record") != "rule":
                raise RuleBookSchemaError(
                    f"{path}:{lineno}: expected a rule record, got "
                    f"{record.get('record')!r}"
                )
            rules.append(_decode_rule(record, items, path, lineno))
        if len(rules) != header.get("n_rules", len(rules)):
            raise RuleBookSchemaError(
                f"{path}: header promises {header['n_rules']} rules, "
                f"found {len(rules)} — truncated file?"
            )
        return cls(
            rules=tuple(rules),
            trace=header.get("trace"),
            keywords=dict(header.get("keywords") or {}),
            config=None if config is None else MiningConfig(**config),
            fingerprint=header.get("fingerprint"),
            backend=header.get("backend"),
            n_transactions=header.get("n_transactions"),
        )

    # -- derived views ---------------------------------------------------------
    def vocabulary(self) -> ItemVocabulary:
        """The canonical id-space as a vocabulary (id = insertion order)."""
        return ItemVocabulary(self._items)

    def provenance(self) -> str:
        """One-line provenance summary for CLI output and logs."""
        parts = [f"{len(self)} rules"]
        if self.trace:
            parts.append(f"trace={self.trace}")
        if self.keywords:
            parts.append("keywords=" + ",".join(sorted(self.keywords.values())))
        if self.n_transactions is not None:
            parts.append(f"mined_from={self.n_transactions} jobs")
        if self.fingerprint:
            parts.append(f"db={self.fingerprint[:12]}")
        if self.backend:
            parts.append(f"backend={self.backend}")
        return ", ".join(parts)

def _rekey_rule(rule: AssociationRule, ids: dict[Item, int]) -> AssociationRule:
    """Re-express a rule's id sets in the book's canonical id-space."""
    antecedent_ids = frozenset(ids[item] for item in rule.antecedent)
    consequent_ids = frozenset(ids[item] for item in rule.consequent)
    if (
        antecedent_ids == rule.antecedent_ids
        and consequent_ids == rule.consequent_ids
    ):
        return rule
    return AssociationRule(
        antecedent=rule.antecedent,
        consequent=rule.consequent,
        antecedent_ids=antecedent_ids,
        consequent_ids=consequent_ids,
        support=rule.support,
        confidence=rule.confidence,
        lift=rule.lift,
        leverage=rule.leverage,
        conviction=rule.conviction,
    )


def _rule_order(rule: AssociationRule) -> tuple:
    return (
        -rule.lift,
        -rule.confidence,
        -rule.support,
        str(sorted(rule.antecedent)),
        str(sorted(rule.consequent)),
    )


def _parse_json(line: str, path, lineno: int) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RuleBookSchemaError(f"{path}:{lineno}: not JSON: {exc}") from None
    if not isinstance(record, dict):
        raise RuleBookSchemaError(f"{path}:{lineno}: record must be an object")
    return record


def _decode_rule(
    record: dict, items: list[Item], path, lineno: int
) -> AssociationRule:
    try:
        antecedent_ids = frozenset(int(i) for i in record["antecedent_ids"])
        consequent_ids = frozenset(int(i) for i in record["consequent_ids"])
        for i in antecedent_ids | consequent_ids:
            if not 0 <= i < len(items):
                raise ValueError(f"item id {i} outside the header item table")
        metrics = {name: _dec_float(record[name]) for name in _METRIC_FIELDS}
        return AssociationRule(
            antecedent=frozenset(items[i] for i in antecedent_ids),
            consequent=frozenset(items[i] for i in consequent_ids),
            antecedent_ids=antecedent_ids,
            consequent_ids=consequent_ids,
            **metrics,
        )
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise RuleBookSchemaError(f"{path}:{lineno}: bad rule record: {exc}") from None
