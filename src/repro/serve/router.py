"""Front-end router: one public endpoint over N rule-serving shards.

The router speaks the exact NDJSON protocol of
:mod:`repro.serve.service` to clients and holds one pipelined upstream
connection per shard.  ``match`` requests are forwarded *verbatim*
(bytes in, bytes out — the shard echoes the client's request id, so no
re-encoding happens on the hot path) to a shard picked by the configured
load-balancing policy (:mod:`repro.serve.lb`); control requests are
aggregated:

* ``healthz`` — router-level status (``ok``/``degraded``/
  ``unavailable``) plus per-shard health, in-flight counts and EWMA
  latencies, augmented with rule count/version probed from a live shard;
* ``metrics`` — per-shard metrics fanned out and merged through
  :func:`repro.engine.stats.aggregate_shard_metrics` (true histogram
  merging, not quantile averaging), plus router-side routing counters;
* ``reload`` — rolling hot-swap: shards flip one at a time with an
  explicit shared version number, so the cluster keeps serving
  throughout and every post-flip response carries the same new tag.

Failure semantics, which the chaos tests pin down:

* a shard that dies mid-request fails its pending forwards with
  :class:`ShardDown`; matching is a read-only idempotent operation, so
  the router transparently retries each one on another healthy shard —
  clients never see a vanished replica unless *no* shard remains;
* a shard that stalls (alive but silent) trips the per-request timeout;
  the client gets a well-formed retriable error and, because pending
  count on the stalled shard keeps growing, ``least_loaded`` and
  ``latency_weighted`` steer subsequent traffic away from it;
* when no healthy shard can take a request the router sheds load
  exactly like a single service does: ``overloaded`` + ``retry_after``.

Order preservation: responses to one client connection return in that
connection's request order (the same future-queue machinery the service
uses), even though requests fan out to different shards.
"""

from __future__ import annotations

import asyncio
import collections
import json
import time
from typing import Iterable, Sequence

from ..engine.stats import LatencyHistogram, aggregate_shard_metrics
from .lb import LBPolicy, get_policy
from .service import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    _encode,
    _error,
    _error_line,
    run_ndjson_connection,
)

__all__ = ["ShardDown", "ShardHandle", "ShardRouter"]

#: EWMA smoothing for per-shard latency (fraction given to the newest sample)
EWMA_ALPHA = 0.2

#: reconnect backoff bounds, seconds
RECONNECT_MIN_S = 0.05
RECONNECT_MAX_S = 2.0


class ShardDown(ConnectionError):
    """The upstream shard connection died with this request pending."""


class ShardHandle:
    """One upstream shard: a supervised, pipelined connection + signals.

    The handle owns a supervisor task that dials the shard, runs a
    FIFO reader (the shard answers a connection's requests in order),
    and on disconnection fails all pending requests with
    :class:`ShardDown` before redialing with exponential backoff.  The
    load signals the LB policies consume — ``inflight`` and
    ``ewma_latency_s`` — are maintained here, next to the socket that
    defines them.
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        *,
        pid: int | None = None,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.pid = pid
        self.healthy = False
        self.inflight = 0
        self.ewma_latency_s = 0.0
        self.latency = LatencyHistogram()
        self.n_answered = 0
        self.n_conn_failures = 0
        self.n_timeouts = 0
        self._writer: asyncio.StreamWriter | None = None
        self._pending: collections.deque | None = None
        self._supervisor: asyncio.Task | None = None
        self._closed = False

    def __repr__(self) -> str:
        state = "up" if self.healthy else "down"
        return (
            f"ShardHandle({self.name} {self.host}:{self.port} {state} "
            f"inflight={self.inflight})"
        )

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Begin supervising the upstream connection (idempotent)."""
        if self._supervisor is None or self._supervisor.done():
            self._closed = False
            self._supervisor = asyncio.create_task(self._supervise())

    async def close(self) -> None:
        self._closed = True
        self.healthy = False
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        self._teardown()

    async def wait_healthy(self, timeout: float) -> bool:
        """Poll until the shard connection is up (or *timeout* elapses)."""
        deadline = time.monotonic() + timeout
        while not self.healthy:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    # -- request path ------------------------------------------------------------
    async def request_line(
        self, line: bytes, timeout: float | None = None
    ) -> bytes:
        """Forward one raw request line; await its raw response line.

        Raises :class:`ShardDown` if the connection is (or goes) down
        before the response arrives, :class:`asyncio.TimeoutError` if
        the shard stays silent past *timeout*.  On timeout the pending
        slot is *kept* (shielded): the shard answers its connection in
        FIFO order, so the slot must stay to keep later responses
        aligned — and a stalled shard's ``inflight`` keeps climbing,
        which is exactly the signal load-aware policies route away from.
        """
        if not self.healthy or self._writer is None or self._pending is None:
            raise ShardDown(f"shard {self.name} is not connected")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((future, time.perf_counter()))
        self.inflight += 1
        self._writer.write(line)
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.n_timeouts += 1
            raise

    # -- supervision -------------------------------------------------------------
    async def _supervise(self) -> None:
        backoff = RECONNECT_MIN_S
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port, limit=MAX_LINE_BYTES
                )
            except OSError:
                self.n_conn_failures += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, RECONNECT_MAX_S)
                continue
            self._writer = writer
            self._pending = collections.deque()
            self.healthy = True
            backoff = RECONNECT_MIN_S
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    self._settle(line)
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            finally:
                self._teardown()

    def _settle(self, line: bytes) -> None:
        """Pair one upstream response with the oldest pending request."""
        if not self._pending:  # pragma: no cover - protocol violation
            return
        future, sent_at = self._pending.popleft()
        self.inflight -= 1
        elapsed = time.perf_counter() - sent_at
        self.latency.record(elapsed)
        self.n_answered += 1
        self.ewma_latency_s = (
            elapsed
            if self.n_answered == 1
            else EWMA_ALPHA * elapsed + (1 - EWMA_ALPHA) * self.ewma_latency_s
        )
        if not future.done():
            future.set_result(line)

    def _teardown(self) -> None:
        self.healthy = False
        if self._writer is not None:
            try:
                self._writer.close()
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
            self._writer = None
        if self._pending:
            error = ShardDown(f"shard {self.name} connection lost")
            while self._pending:
                future, _sent_at = self._pending.popleft()
                self.inflight -= 1
                if not future.done():
                    future.set_exception(error)
        self._pending = None
        self.inflight = max(self.inflight, 0)

    def info(self) -> dict:
        """The healthz/metrics view of this shard."""
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "healthy": self.healthy,
            "inflight": self.inflight,
            "ewma_latency_ms": self.ewma_latency_s * 1e3,
            "answered": self.n_answered,
            "conn_failures": self.n_conn_failures,
            "timeouts": self.n_timeouts,
        }


class ShardRouter:
    """The public endpoint of a sharded rule-serving deployment."""

    def __init__(
        self,
        shards: Iterable[ShardHandle | tuple[str, int]],
        *,
        policy: "str | LBPolicy" = "round_robin",
        request_timeout_s: float | None = 30.0,
        control_timeout_s: float = 60.0,
        retry_after_s: float = 0.05,
        max_inflight_per_shard: int = 1024,
        name: str = "router",
    ):
        self.handles: list[ShardHandle] = []
        for k, shard in enumerate(shards):
            if isinstance(shard, ShardHandle):
                self.handles.append(shard)
            else:
                host, port = shard
                self.handles.append(ShardHandle(f"shard{k}", host, port))
        if not self.handles:
            raise ValueError("a router needs at least one shard")
        self.policy = get_policy(policy)
        self.request_timeout_s = request_timeout_s
        self.control_timeout_s = control_timeout_s
        self.retry_after_s = retry_after_s
        self.max_inflight_per_shard = max_inflight_per_shard
        self.name = name
        self.started_at = time.monotonic()
        self.n_routed = 0
        self.n_shard_retries = 0
        self.n_timeouts = 0
        self.n_unrouteable = 0
        self.n_bad_requests = 0
        self._server: asyncio.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle ---------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        wait_healthy_s: float = 10.0,
    ) -> asyncio.Server:
        """Dial every shard, then open the public listener.

        Requires at least one shard to come up within *wait_healthy_s*;
        stragglers keep redialing in the background.
        """
        if self._server is not None:
            raise RuntimeError("router already started")
        self.started_at = time.monotonic()
        self._draining = False
        for handle in self.handles:
            handle.start()
        deadline = time.monotonic() + wait_healthy_s
        for handle in self.handles:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            await handle.wait_healthy(remaining)
        if not any(h.healthy for h in self.handles):
            for handle in self.handles:
                await handle.close()
            raise ConnectionError(
                f"no shard became healthy within {wait_healthy_s}s: "
                f"{self.handles}"
            )
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=MAX_LINE_BYTES
        )
        return self._server

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("router is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Stop accepting, let in-flight forwards finish, close shards."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            _, pending = await asyncio.wait(set(self._conn_tasks), timeout=2.0)
            for task in pending:  # pragma: no cover - lingering clients
                task.cancel()
            if pending:  # pragma: no cover
                await asyncio.wait(pending)
            self._conn_tasks.clear()
        for handle in self.handles:
            await handle.close()

    # -- connection handling -----------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await run_ndjson_connection(
            reader, writer, self._dispatch, self._conn_tasks
        )

    def _dispatch(self, line: bytes) -> bytes | asyncio.Future:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError, UnicodeDecodeError) as exc:
            self.n_bad_requests += 1
            return _error_line(None, "bad_request", str(exc))
        request_id = request.get("id")
        kind = request.get("type")
        if kind == "match":
            if self._draining:
                return _error_line(
                    request_id, "shutting_down", "router is draining"
                )
            return asyncio.ensure_future(self._forward(line, request_id))
        if kind == "healthz":
            return asyncio.ensure_future(self._healthz(request_id))
        if kind == "metrics":
            return asyncio.ensure_future(self._metrics(request_id))
        if kind == "reload":
            return asyncio.ensure_future(self._reload(request, request_id))
        self.n_bad_requests += 1
        return _error_line(
            request_id, "bad_request", f"unknown request type {kind!r}"
        )

    # -- match forwarding --------------------------------------------------------
    def _candidates(
        self, tried: Sequence[ShardHandle]
    ) -> list[ShardHandle]:
        return [
            h
            for h in self.handles
            if h.healthy
            and h not in tried
            and h.inflight < self.max_inflight_per_shard
        ]

    async def _forward(self, line: bytes, request_id) -> bytes:
        """Route one match request; retry replica failures, shed overload."""
        tried: list[ShardHandle] = []
        while True:
            candidates = self._candidates(tried)
            if not candidates:
                break
            shard = self.policy.choose(candidates)
            tried.append(shard)
            try:
                response = await shard.request_line(
                    line, self.request_timeout_s
                )
            except ShardDown:
                # the replica vanished mid-request; matching is
                # idempotent, so another replica can answer instead
                self.n_shard_retries += 1
                continue
            except asyncio.TimeoutError:
                response_obj = _error(
                    request_id,
                    "shard_timeout",
                    f"shard {shard.name} did not answer within "
                    f"{self.request_timeout_s}s",
                )
                response_obj["retry_after"] = self.retry_after_s
                self.n_timeouts += 1
                return _encode(response_obj)
            except Exception as exc:  # pragma: no cover - defensive
                response_obj = _error(request_id, "internal", repr(exc))
                return _encode(response_obj)
            self.n_routed += 1
            return response
        self.n_unrouteable += 1
        response_obj = _error(
            request_id,
            "overloaded",
            "no healthy shard available",
        )
        response_obj["retry_after"] = self.retry_after_s
        return _encode(response_obj)

    # -- control plane -----------------------------------------------------------
    async def _probe_one(self, request: dict) -> dict:
        """Ask the first healthy shard that answers; {} if none do."""
        line = json.dumps(request).encode() + b"\n"
        for handle in self.handles:
            if not handle.healthy:
                continue
            try:
                raw = await handle.request_line(line, self.control_timeout_s)
                return json.loads(raw)
            except (ShardDown, asyncio.TimeoutError, json.JSONDecodeError):
                continue
        return {}

    def _shard_infos(self) -> list[dict]:
        return [handle.info() for handle in self.handles]

    async def _healthz(self, request_id) -> bytes:
        n_healthy = sum(1 for h in self.handles if h.healthy)
        if self._draining:
            status = "draining"
        elif n_healthy == len(self.handles):
            status = "ok"
        elif n_healthy:
            status = "degraded"
        else:
            status = "unavailable"
        probe = await self._probe_one({"type": "healthz"})
        return _encode(
            {
                "type": "healthz",
                "id": request_id,
                "status": status,
                "role": "router",
                "name": self.name,
                "policy": self.policy.name,
                "protocol_version": PROTOCOL_VERSION,
                "uptime_s": time.monotonic() - self.started_at,
                "n_shards": len(self.handles),
                "n_healthy": n_healthy,
                "n_rules": probe.get("n_rules"),
                "version": probe.get("version"),
                "version_tag": probe.get("version_tag"),
                "shards": self._shard_infos(),
            }
        )

    async def _metrics(self, request_id) -> bytes:
        line = b'{"type": "metrics"}\n'

        async def scrape(handle: ShardHandle) -> dict | None:
            if not handle.healthy:
                return None
            try:
                raw = await handle.request_line(line, self.control_timeout_s)
                return json.loads(raw)
            except (ShardDown, asyncio.TimeoutError, json.JSONDecodeError):
                return None

        scraped = await asyncio.gather(*(scrape(h) for h in self.handles))
        shard_metrics = [m for m in scraped if m is not None]
        merged = aggregate_shard_metrics(shard_metrics)
        # the router-side view: true end-to-end latency per shard link
        router_latency = LatencyHistogram()
        for handle in self.handles:
            router_latency.merge(handle.latency)
        return _encode(
            {
                "type": "metrics",
                "id": request_id,
                "role": "router",
                "uptime_s": time.monotonic() - self.started_at,
                **merged,
                "router": {
                    "policy": self.policy.name,
                    "routed": self.n_routed,
                    "shard_retries": self.n_shard_retries,
                    "timeouts": self.n_timeouts,
                    "unrouteable": self.n_unrouteable,
                    "bad_requests": self.n_bad_requests,
                    "latency": router_latency.as_dict(),
                    "shards": self._shard_infos(),
                },
            }
        )

    async def _reload(self, request: dict, request_id) -> bytes:
        """Rolling hot-swap across shards, one at a time.

        Every shard is told the *same* explicit version number (current
        cluster max + 1), so responses tagged with the new version mean
        the same rulebook no matter which replica answered.
        """
        path = request.get("rulebook")
        segment = request.get("segment")
        if path is not None and (not isinstance(path, str) or not path):
            self.n_bad_requests += 1
            return _error_line(
                request_id, "bad_request", "reload 'rulebook' must be a path"
            )
        if segment is not None and (not isinstance(segment, str) or not segment):
            self.n_bad_requests += 1
            return _error_line(
                request_id, "bad_request", "reload 'segment' must be a name"
            )
        if path is None and segment is None:
            self.n_bad_requests += 1
            return _error_line(
                request_id,
                "bad_request",
                "reload needs a 'rulebook' path or a 'segment' name",
            )
        version = request.get("version")
        if version is None:
            probe = await self._probe_one({"type": "healthz"})
            version = int(probe.get("version") or 0) + 1
        payload: dict = {
            "type": "reload",
            "version": version,
        }
        if path is not None:
            payload["rulebook"] = path
        if segment is not None:
            # the shards attach the published shared-memory plane and
            # only fall back to the rulebook path if the attach fails
            payload["segment"] = segment
        if request.get("version_tag") is not None:
            payload["version_tag"] = request["version_tag"]
        line = json.dumps(payload).encode() + b"\n"
        outcomes = []
        n_rules = None
        version_tag = request.get("version_tag")
        for handle in self.handles:
            if not handle.healthy:
                outcomes.append(
                    {"name": handle.name, "ok": False, "error": "unhealthy"}
                )
                continue
            try:
                raw = await handle.request_line(line, self.control_timeout_s)
                result = json.loads(raw)
            except (ShardDown, asyncio.TimeoutError) as exc:
                outcomes.append(
                    {"name": handle.name, "ok": False, "error": repr(exc)}
                )
                continue
            if result.get("type") == "reload_result":
                n_rules = result.get("n_rules")
                version_tag = result.get("version_tag", version_tag)
                outcomes.append(
                    {
                        "name": handle.name,
                        "ok": True,
                        "version": result.get("version"),
                    }
                )
            else:
                outcomes.append(
                    {
                        "name": handle.name,
                        "ok": False,
                        "error": result.get("detail", "reload refused"),
                    }
                )
        status = "ok" if all(o["ok"] for o in outcomes) else "partial"
        return _encode(
            {
                "type": "reload_result",
                "id": request_id,
                "status": status,
                "version": version,
                "version_tag": version_tag,
                "n_rules": n_rules,
                "shards": outcomes,
            }
        )
