"""Shard workers: N rule-serving processes behind one public endpoint.

Two deployment modes, both driven by ``repro serve --shards N``:

* **router** (default, portable) — each worker binds an ephemeral port
  and a :class:`~repro.serve.router.ShardRouter` in the parent process
  owns the public port, balancing requests with a pluggable LB policy
  and aggregating healthz/metrics/reload across the fleet.
* **reuseport** (Linux) — every worker binds the *same* public port
  with ``SO_REUSEPORT`` and the kernel spreads incoming connections
  across them.  No router hop, but also no load-aware balancing and no
  way to address one worker through the shared port — so each worker
  opens a private control listener where the parent (and the
  ``reload-rulebook`` CLI) sends control messages.

Workers are real OS processes spawned fresh (``python -m
repro.serve._shard_worker``), never forked: nothing is pickled and no
interpreter state is shared.  Each worker either attaches the published
shared-memory rule plane (one compile, N zero-copy attaches) or, when
the plane is unavailable, builds its own RuleIndex from the rulebook
path.  A worker announces readiness by printing one line::

    SHARD_READY name=shard0 pid=4242 port=43121 control_port=43997

which the parent parses for ports and pid — the pid is what chaos tests
and the CI smoke job use to kill or stall a specific shard.

Hot-swap across the fleet is *rolling*: shards flip one at a time while
the rest keep serving, all told the same explicit version number so the
new version tag means the same rulebook on every replica (see
:func:`broadcast_reload` and ``ShardRouter._reload``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket
import sys
import time
from pathlib import Path
from typing import Sequence

from ..shm.ruleplane import attach_rule_plane, publish_rule_plane
from ..shm.segment import (
    SegmentError,
    SegmentLease,
    gc_stale_segments,
    shm_available,
)
from .index import RuleIndex
from .router import ShardHandle, ShardRouter
from .rulebook import RuleBook
from .service import MAX_LINE_BYTES, RuleService

__all__ = [
    "ShardProcess",
    "ShardCluster",
    "send_control",
    "broadcast_reload",
    "run_cluster",
]

#: seconds a freshly spawned worker gets to print SHARD_READY
DEFAULT_READY_TIMEOUT_S = 30.0

#: seconds a SIGTERM'd worker gets to drain before SIGKILL
DEFAULT_DRAIN_TIMEOUT_S = 10.0

SHARD_MODES = ("router", "reuseport")


def _src_root() -> Path:
    """The directory that must be on PYTHONPATH to import ``repro``."""
    return Path(__file__).resolve().parents[2]


def _pick_free_port(host: str) -> int:
    """Reserve-and-release an ephemeral port for reuseport mode.

    All reuseport workers must bind the *same* number, so the parent
    picks one up front.  The close-then-rebind window is a benign race
    on a loopback test host.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


class ShardProcess:
    """One worker subprocess: spawn, readiness handshake, signals."""

    def __init__(
        self,
        name: str,
        rulebook: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
        control: bool = False,
        max_queue: int | None = None,
        max_batch: int | None = None,
        segment: str | None = None,
    ):
        self.name = name
        self.rulebook = rulebook
        self.host = host
        self.requested_port = port
        self.reuse_port = reuse_port
        self.control = control
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.segment = segment
        self.port: int | None = None
        self.control_port: int | None = None
        self.pid: int | None = None
        self.process: asyncio.subprocess.Process | None = None
        self._drain_task: asyncio.Task | None = None

    def _command(self) -> list[str]:
        cmd = [
            sys.executable,
            "-u",
            "-m",
            "repro.serve._shard_worker",
            "--rulebook",
            self.rulebook,
            "--host",
            self.host,
            "--port",
            str(self.requested_port),
            "--name",
            self.name,
        ]
        if self.reuse_port:
            cmd.append("--reuse-port")
        if self.control:
            cmd.extend(["--control-host", self.host])
        if self.max_queue is not None:
            cmd.extend(["--max-queue", str(self.max_queue)])
        if self.max_batch is not None:
            cmd.extend(["--max-batch", str(self.max_batch)])
        if self.segment is not None:
            cmd.extend(["--segment", self.segment])
        return cmd

    async def spawn(
        self, ready_timeout: float = DEFAULT_READY_TIMEOUT_S
    ) -> None:
        """Start the worker and wait for its SHARD_READY line."""
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{_src_root()}{os.pathsep}{existing}"
            if existing
            else str(_src_root())
        )
        self.process = await asyncio.create_subprocess_exec(
            *self._command(),
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        try:
            await asyncio.wait_for(self._wait_ready(), ready_timeout)
        except asyncio.TimeoutError:
            self.process.kill()
            await self.process.wait()
            raise RuntimeError(
                f"shard {self.name} did not become ready within "
                f"{ready_timeout}s"
            ) from None
        self._drain_task = asyncio.create_task(self._drain_stdout())

    async def _wait_ready(self) -> None:
        assert self.process is not None and self.process.stdout is not None
        while True:
            line = await self.process.stdout.readline()
            if not line:
                returncode = await self.process.wait()
                raise RuntimeError(
                    f"shard {self.name} exited (rc={returncode}) "
                    "before becoming ready"
                )
            text = line.decode(errors="replace").strip()
            if text.startswith("SHARD_READY"):
                fields = dict(
                    part.split("=", 1)
                    for part in text.split()[1:]
                    if "=" in part
                )
                self.pid = int(fields["pid"])
                self.port = int(fields["port"])
                control_port = int(fields.get("control_port", 0))
                self.control_port = control_port or None
                return
            print(f"[{self.name}] {text}", flush=True)

    async def _drain_stdout(self) -> None:
        """Keep forwarding worker output so its pipe never fills."""
        assert self.process is not None and self.process.stdout is not None
        while True:
            line = await self.process.stdout.readline()
            if not line:
                return
            print(
                f"[{self.name}] {line.decode(errors='replace').rstrip()}",
                flush=True,
            )

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.returncode is None

    def send_signal(self, signum: int) -> None:
        if self.running:
            assert self.process is not None
            self.process.send_signal(signum)

    def terminate(self) -> None:
        self.send_signal(signal.SIGTERM)

    def kill(self) -> None:
        if self.running:
            assert self.process is not None
            self.process.kill()

    async def wait(self, timeout: float | None = None) -> int | None:
        if self.process is None:
            return None
        if timeout is None:
            returncode = await self.process.wait()
        else:
            returncode = await asyncio.wait_for(self.process.wait(), timeout)
        if self._drain_task is not None:
            await self._drain_task
            self._drain_task = None
        return returncode

    async def stop(
        self, drain_timeout: float = DEFAULT_DRAIN_TIMEOUT_S
    ) -> None:
        """SIGTERM (graceful drain), escalate to SIGKILL on timeout."""
        if not self.running:
            if self._drain_task is not None:
                await self._drain_task
                self._drain_task = None
            return
        self.terminate()
        try:
            await self.wait(drain_timeout)
        except asyncio.TimeoutError:  # pragma: no cover - stuck worker
            self.kill()
            await self.wait()


async def send_control(
    host: str, port: int, payload: dict, *, timeout: float = 60.0
) -> dict:
    """One-shot request/response against a service, router, or control port."""
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES
    )
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ConnectionError(
                f"{host}:{port} closed the connection without answering"
            )
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def broadcast_reload(
    host: str,
    ports: Sequence[int],
    rulebook: str,
    *,
    version: int | None = None,
    version_tag: str | None = None,
    segment: str | None = None,
    timeout: float = 60.0,
) -> dict:
    """Rolling reload across *ports*, one endpoint at a time.

    With several ports (reuseport workers' control ports) and no
    explicit version, the current maximum version across the fleet is
    probed first so every worker flips to the *same* number — version
    tags would otherwise diverge between replicas.  With a single port
    (a router, which does its own rolling broadcast, or a lone service)
    the receiving end picks the version itself.

    When *segment* names a published shared-memory rule plane, each
    endpoint attaches it zero-copy instead of re-parsing and
    re-compiling the rulebook; the path still rides along as the
    fallback for endpoints that cannot see shared memory.
    """
    ports = list(ports)
    if not ports:
        raise ValueError("broadcast_reload needs at least one port")
    if version is None and len(ports) > 1:
        current = 0
        for port in ports:
            try:
                health = await send_control(
                    host, port, {"type": "healthz"}, timeout=timeout
                )
                current = max(current, int(health.get("version") or 0))
            except (OSError, asyncio.TimeoutError, json.JSONDecodeError):
                continue
        version = current + 1
    payload: dict = {"type": "reload", "rulebook": rulebook}
    if version is not None:
        payload["version"] = version
    if version_tag is not None:
        payload["version_tag"] = version_tag
    if segment is not None:
        payload["segment"] = segment
    outcomes = []
    n_rules = None
    final_tag = version_tag
    for port in ports:
        try:
            result = await send_control(host, port, payload, timeout=timeout)
        except (OSError, asyncio.TimeoutError, json.JSONDecodeError) as exc:
            outcomes.append({"port": port, "ok": False, "error": repr(exc)})
            continue
        if result.get("type") == "reload_result":
            version = result.get("version", version)
            final_tag = result.get("version_tag", final_tag)
            n_rules = result.get("n_rules", n_rules)
            ok = result.get("status", "ok") in ("ok", None)
            outcome = {
                "port": port,
                "ok": ok,
                "version": result.get("version"),
                "shards": result.get("shards"),
            }
            if not ok:
                # name the replicas that missed the flip (a router's
                # rolling reload reports per-shard results)
                failed = [
                    s.get("name", "?")
                    for s in result.get("shards") or []
                    if not s.get("ok")
                ]
                outcome["error"] = (
                    f"{result.get('status')}: "
                    + (", ".join(failed) if failed else "no shard flipped")
                )
            outcomes.append(outcome)
        else:
            outcomes.append(
                {
                    "port": port,
                    "ok": False,
                    "error": result.get("detail", "reload refused"),
                }
            )
    return {
        "status": "ok" if all(o["ok"] for o in outcomes) else "partial",
        "version": version,
        "version_tag": final_tag,
        "n_rules": n_rules,
        "endpoints": outcomes,
    }


class ShardCluster:
    """N shard workers plus (in router mode) the front-end router."""

    def __init__(
        self,
        rulebook: str,
        n_shards: int,
        *,
        mode: str = "router",
        host: str = "127.0.0.1",
        port: int = 0,
        lb_policy: str = "round_robin",
        max_queue: int | None = None,
        max_batch: int | None = None,
        request_timeout_s: float | None = 30.0,
        name_prefix: str = "shard",
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if mode not in SHARD_MODES:
            raise ValueError(f"mode must be one of {SHARD_MODES}, got {mode!r}")
        if mode == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError("SO_REUSEPORT is not available on this platform")
        self.rulebook = rulebook
        self.n_shards = n_shards
        self.mode = mode
        self.host = host
        self.requested_port = port
        self.lb_policy = lb_policy
        self.request_timeout_s = request_timeout_s
        self.workers: list[ShardProcess] = [
            ShardProcess(
                f"{name_prefix}{k}",
                rulebook,
                host=host,
                max_queue=max_queue,
                max_batch=max_batch,
            )
            for k in range(n_shards)
        ]
        self.router: ShardRouter | None = None
        self._reuseport_port: int | None = None
        self._plane_lease: SegmentLease | None = None
        self._generation = 0

    def _publish_plane(self, rulebook: str) -> SegmentLease | None:
        """Compile *rulebook* once and publish it to shared memory.

        Runs in a thread (index compilation is CPU-bound).  Returns
        ``None`` when shared memory is unavailable — workers then fall
        back to compiling their own index from the rulebook path.
        """
        if not shm_available():
            return None
        book = RuleBook.load(rulebook)
        index = RuleIndex.from_rulebook(book)
        self._generation += 1
        return publish_rule_plane(
            index,
            generation=self._generation,
            version_tag=book.fingerprint,
        )

    async def start(self) -> None:
        # reap segments orphaned by crashed predecessors before adding ours
        await asyncio.to_thread(gc_stale_segments)
        try:
            self._plane_lease = await asyncio.to_thread(
                self._publish_plane, self.rulebook
            )
        except (OSError, ValueError, SegmentError) as exc:
            # a bad rulebook will be reported by the first worker; a shm
            # hiccup just means every worker compiles its own copy
            print(f"cluster: rule-plane publish skipped: {exc}", flush=True)
            self._plane_lease = None
        if self._plane_lease is not None:
            for worker in self.workers:
                worker.segment = self._plane_lease.name
        if self.mode == "reuseport":
            port = self.requested_port or _pick_free_port(self.host)
            for worker in self.workers:
                worker.requested_port = port
                worker.reuse_port = True
                worker.control = True
            self._reuseport_port = port
        spawned: list[ShardProcess] = []
        try:
            for worker in self.workers:
                await worker.spawn()
                spawned.append(worker)
            if self.mode == "router":
                handles = [
                    ShardHandle(
                        w.name, self.host, w.port, pid=w.pid  # type: ignore[arg-type]
                    )
                    for w in self.workers
                ]
                self.router = ShardRouter(
                    handles,
                    policy=self.lb_policy,
                    request_timeout_s=self.request_timeout_s,
                )
                await self.router.start(self.host, self.requested_port)
        except BaseException:
            for worker in spawned:
                worker.kill()
            for worker in spawned:
                try:
                    await worker.wait(5.0)
                except asyncio.TimeoutError:  # pragma: no cover
                    pass
            raise

    @property
    def port(self) -> int:
        """The public port clients connect to."""
        if self.mode == "reuseport":
            if self._reuseport_port is None:
                raise RuntimeError("cluster is not started")
            return self._reuseport_port
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router.port

    @property
    def control_ports(self) -> list[int]:
        """Per-worker control ports (reuseport mode only)."""
        return [w.control_port for w in self.workers if w.control_port]

    def describe(self) -> str:
        lines = [
            f"CLUSTER_READY mode={self.mode} host={self.host} "
            f"port={self.port} shards={self.n_shards}"
            + (f" lb_policy={self.lb_policy}" if self.mode == "router" else "")
        ]
        for worker in self.workers:
            line = f"  {worker.name} pid={worker.pid} port={worker.port}"
            if worker.control_port:
                line += f" control_port={worker.control_port}"
            lines.append(line)
        return "\n".join(lines)

    async def reload(
        self,
        rulebook: str,
        *,
        version: int | None = None,
        version_tag: str | None = None,
    ) -> dict:
        """Rolling hot-swap of every shard's rulebook.

        The parent compiles and publishes the new rule plane *once*;
        the broadcast then ships only the segment name, so each shard's
        flip is a zero-copy attach instead of a parse-and-compile.  The
        previous generation's segment is retired after the broadcast —
        shards that already attached it keep their mappings alive.
        """
        previous = self._plane_lease
        try:
            lease = await asyncio.to_thread(self._publish_plane, rulebook)
        except (OSError, ValueError, SegmentError):
            # let the per-shard path reload report the real error
            lease = None
        if self.mode == "router":
            ports = [self.port]
        else:
            ports = self.control_ports
        result = await broadcast_reload(
            self.host,
            ports,
            rulebook,
            version=version,
            version_tag=version_tag,
            segment=lease.name if lease is not None else None,
        )
        self.rulebook = rulebook
        if lease is not None:
            self._plane_lease = lease
            if previous is not None and previous.name != lease.name:
                previous.unlink()
            for worker in self.workers:
                worker.segment = lease.name
        return result

    def kill_shard(self, k: int) -> ShardProcess:
        """SIGKILL worker *k* (chaos testing / CI smoke)."""
        worker = self.workers[k]
        worker.kill()
        return worker

    async def shutdown(self) -> None:
        if self.router is not None:
            await self.router.shutdown()
            self.router = None
        for worker in self.workers:
            worker.terminate()
        for worker in self.workers:
            try:
                await worker.stop()
            except asyncio.TimeoutError:  # pragma: no cover
                worker.kill()
        if self._plane_lease is not None:
            # workers are gone; drop the segment so /dev/shm stays clean
            self._plane_lease.unlink()
            self._plane_lease = None


async def run_cluster(cluster: ShardCluster) -> None:
    """Run a cluster until SIGTERM/SIGINT, then drain everything."""
    await cluster.start()
    print(cluster.describe(), flush=True)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await stop.wait()
    finally:
        await cluster.shutdown()


# -- worker entry point --------------------------------------------------------
def _build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.shard",
        description="One rule-serving shard worker (spawned by repro serve)",
    )
    parser.add_argument("--rulebook", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--name", default=f"shard-pid{os.getpid()}")
    parser.add_argument("--reuse-port", action="store_true")
    parser.add_argument(
        "--control-host",
        default=None,
        help="also open a control listener on this host (ephemeral port)",
    )
    parser.add_argument("--max-queue", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=None)
    parser.add_argument(
        "--segment",
        default=None,
        help="shared-memory rule-plane segment to attach instead of "
        "compiling the rulebook (falls back to --rulebook)",
    )
    return parser


async def _run_worker(args: argparse.Namespace) -> None:
    kwargs: dict = {"name": args.name}
    if args.max_queue is not None:
        kwargs["max_queue"] = args.max_queue
    if args.max_batch is not None:
        kwargs["max_batch"] = args.max_batch
    service = None
    if args.segment and shm_available():
        try:
            index, plane_meta = attach_rule_plane(args.segment)
        except SegmentError as exc:
            print(
                f"shard {args.name}: segment {args.segment} not "
                f"attachable ({exc}); compiling from rulebook",
                flush=True,
            )
        else:
            service = RuleService(
                index,
                version_tag=plane_meta.get("version_tag"),
                **kwargs,
            )
    if service is None:
        book = RuleBook.load(args.rulebook)
        service = RuleService.from_rulebook(book, **kwargs)

    def on_ready(svc: RuleService) -> None:
        parts = [
            f"SHARD_READY name={svc.name}",
            f"pid={os.getpid()}",
            f"port={svc.port}",
        ]
        if args.control_host is not None:
            parts.append(f"control_port={svc.control_port}")
        print(" ".join(parts), flush=True)

    await service.serve_forever(
        args.host,
        args.port,
        reuse_port=args.reuse_port,
        control_host=args.control_host,
        on_ready=on_ready,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_worker_parser().parse_args(argv)
    started = time.monotonic()
    asyncio.run(_run_worker(args))
    print(
        f"shard {args.name} drained after "
        f"{time.monotonic() - started:.1f}s",
        flush=True,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
