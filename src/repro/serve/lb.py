"""Pluggable load-balancing policies for the shard router.

A policy answers one question — *which healthy shard takes this
request?* — from the live signals every
:class:`~repro.serve.router.ShardHandle` exposes: ``inflight`` (requests
forwarded but not yet answered) and ``ewma_latency_s`` (exponentially
weighted response latency).  Policies register in :data:`LB_POLICIES`
exactly like mining backends register in
:data:`~repro.engine.backends.BACKENDS`, so ``repro serve --lb-policy``
enumerates them and downstream code can add its own (cost-weighted over
heterogeneous workers, session-affine, …) without touching the router.

All three built-ins are deterministic — no randomness — which keeps the
router property-testable: given the same shard states they pick the same
shard.

* ``round_robin`` — cycle through shards in order; ignores load.  The
  right default when shards are homogeneous replicas (they are: each
  holds the full RuleIndex).
* ``least_loaded`` — fewest in-flight requests wins, round-robin
  tie-break.  Routes around stalled or slow shards automatically,
  because a shard that stops answering accumulates in-flight count.
* ``latency_weighted`` — minimise ``ewma_latency × (inflight + 1)``,
  the expected wait on that shard; round-robin tie-break.  Prefers
  consistently fast shards even when queue depths match — the policy
  for heterogeneous hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .router import ShardHandle

__all__ = [
    "LBPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "LatencyWeightedPolicy",
    "LB_POLICIES",
    "register_policy",
    "get_policy",
]


class LBPolicy:
    """Base class: subclasses override :meth:`choose`."""

    name = "abstract"

    def choose(self, shards: Sequence["ShardHandle"]) -> "ShardHandle":
        """Pick one shard from a non-empty sequence of healthy shards."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinPolicy(LBPolicy):
    """Cycle through shards in order, skipping nothing."""

    name = "round_robin"

    def __init__(self) -> None:
        self._turn = 0

    def choose(self, shards: Sequence["ShardHandle"]) -> "ShardHandle":
        shard = shards[self._turn % len(shards)]
        self._turn += 1
        return shard


class LeastLoadedPolicy(LBPolicy):
    """Fewest in-flight requests wins; round-robin breaks ties.

    The tie-break matters: on an idle cluster every shard has zero
    in-flight, and always picking shard 0 would serialise light traffic
    onto one worker.
    """

    name = "least_loaded"

    def __init__(self) -> None:
        self._turn = 0

    def choose(self, shards: Sequence["ShardHandle"]) -> "ShardHandle":
        self._turn += 1
        offset = self._turn % len(shards)
        rotated = [shards[(offset + k) % len(shards)] for k in range(len(shards))]
        return min(rotated, key=lambda s: s.inflight)


class LatencyWeightedPolicy(LBPolicy):
    """Minimise expected wait: EWMA latency × (in-flight + 1).

    A shard that has never answered (EWMA 0) scores 0 and is tried
    first, which doubles as warm-up probing of fresh shards.
    """

    name = "latency_weighted"

    def __init__(self) -> None:
        self._turn = 0

    def choose(self, shards: Sequence["ShardHandle"]) -> "ShardHandle":
        self._turn += 1
        offset = self._turn % len(shards)
        rotated = [shards[(offset + k) % len(shards)] for k in range(len(shards))]
        return min(
            rotated, key=lambda s: s.ewma_latency_s * (s.inflight + 1)
        )


#: registry of LB policy factories, keyed by CLI-facing name
LB_POLICIES: dict[str, Callable[[], LBPolicy]] = {}


def register_policy(name: str, factory: Callable[[], LBPolicy]) -> None:
    """Register a policy factory under *name* (overwrites)."""
    LB_POLICIES[name] = factory


def get_policy(policy: "str | LBPolicy") -> LBPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, LBPolicy):
        return policy
    try:
        factory = LB_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown LB policy {policy!r}; have {sorted(LB_POLICIES)}"
        ) from None
    return factory()


register_policy(RoundRobinPolicy.name, RoundRobinPolicy)
register_policy(LeastLoadedPolicy.name, LeastLoadedPolicy)
register_policy(LatencyWeightedPolicy.name, LatencyWeightedPolicy)
