"""Packed-bitmask batch match kernel — the serving data plane's core.

The scalar :class:`~repro.serve.index.RuleIndex` answers one job at a
time by walking an inverted index in Python.  That is the right shape
for a single request, but the service's batcher
(:meth:`~repro.serve.service.RuleService._batch_loop`) already holds a
whole micro-batch in hand — so the per-job Python work can be replaced
by a handful of NumPy passes over packed bitmasks, the same uint64
language the mining kernel speaks (:mod:`repro.core.bitmap`).

Compilation (once per index build, i.e. once per hot-swap):

* every rule's antecedent and consequent become one row of a
  ``(n_rules, n_words)`` uint64 mask matrix over the book's item
  id-space (bit ``i & 63`` of word ``i >> 6`` set iff item ``i`` is on
  that side — :func:`repro.core.ruletable.pack_side_masks`);
* antecedent/consequent sizes are int32 columns.

Matching a micro-batch:

* each job is encoded as one row of a ``(n_jobs, n_words)`` uint64
  bit-matrix (unknown items having already been dropped by the index's
  memoised canonicaliser);
* a rule **fires** on a job iff its antecedent mask is a subset of the
  job row — ``(job & ant) == ant`` word-wise, no popcount needed;
* **consequent observed** is the same subset test on the consequent
  masks, evaluated only at the fired (job, rule) pairs;
* **near-misses** use the popcount form: ``hits == ant_size - 1`` with
  ``hits = popcount(job & ant)`` via the mining kernel's 16-bit LUT,
  and the single missing item is read straight out of ``ant & ~job``.

Rule blocks are chunked so the broadcast temporaries stay bounded no
matter how large the book or the batch is; results are written into one
pre-allocated ``(n_jobs, n_rules)`` output so ``np.nonzero`` yields the
fired pairs in row-major order — rule ids ascending within each job,
which *is* the canonical (lift, confidence, support) ranking, exactly
like the scalar path's sorted fired ids.
"""

from __future__ import annotations

import numpy as np

from ..core.bitmap import _POPCOUNT16
from ..core.ruletable import RuleTable

__all__ = ["BatchMaskKernel", "encode_id_transactions"]

#: ceiling on broadcast temporary size, in uint64 words per chunk —
#: bounds peak memory at ~16 MiB regardless of book or batch size
_CHUNK_WORDS = 1 << 21

_WORD_BITS = 64


def encode_id_transactions(
    id_rows: list[list[int]], n_words: int
) -> np.ndarray:
    """Pack per-job item-id lists into a ``(n_jobs, n_words)`` bit-matrix.

    The same packing :func:`~repro.core.ruletable.pack_side_masks` uses
    for rule sides, applied to the incoming micro-batch: bit ``i & 63``
    of word ``i >> 6`` is item ``i``.  Ids must already be canonical
    (deduplicated, known to the vocabulary).
    """
    n_jobs = len(id_rows)
    words = np.zeros((n_jobs, max(1, n_words)), dtype=np.uint64)
    lens = [len(row) for row in id_rows]
    total = sum(lens)
    if total:
        flat = np.fromiter(
            (i for row in id_rows for i in row), np.uint64, count=total
        )
        rows = np.repeat(np.arange(n_jobs, dtype=np.int64), lens)
        np.bitwise_or.at(
            words,
            (rows, (flat >> np.uint64(6)).astype(np.int64)),
            np.uint64(1) << (flat & np.uint64(63)),
        )
    return words


class BatchMaskKernel:
    """Compiled bitmask form of one rule table, ready for batch matching.

    Immutable once built; a rulebook hot-swap builds a fresh kernel as
    part of the new :class:`~repro.serve.index.RuleIndex`, so in-flight
    batches keep matching against the old masks (the flip marker applies
    the new index only at a micro-batch boundary).
    """

    __slots__ = (
        "ant_masks",
        "cons_masks",
        "ant_sizes",
        "cons_sizes",
        "n_words",
        "n_rules",
        "_has_ant",
    )

    def __init__(self, table: RuleTable):
        self.ant_masks = np.ascontiguousarray(table.side_masks("antecedent"))
        self.cons_masks = np.ascontiguousarray(table.side_masks("consequent"))
        self.ant_sizes = table.ant_sizes().astype(np.int32)
        self.cons_sizes = table.cons_sizes().astype(np.int32)
        self.n_rules = len(table)
        self.n_words = int(self.ant_masks.shape[1])
        # empty antecedents never fire on the scalar path (a countdown
        # needs at least one hit to exist), so mask them out here too
        self._has_ant = self.ant_sizes > 0

    @classmethod
    def from_masks(
        cls,
        ant_masks: np.ndarray,
        cons_masks: np.ndarray,
        ant_sizes: np.ndarray,
        cons_sizes: np.ndarray,
    ) -> "BatchMaskKernel":
        """Adopt already-packed mask matrices without recompiling them.

        The shm attach path: mask rows come in as read-only zero-copy
        views of a published segment, so construction is O(1) — no
        :func:`~repro.core.ruletable.pack_side_masks` pass.  Contiguous
        inputs are adopted as-is (``ascontiguousarray`` never copies a
        C-contiguous array, read-only or not).
        """
        self = object.__new__(cls)
        self.ant_masks = np.ascontiguousarray(ant_masks, dtype=np.uint64)
        self.cons_masks = np.ascontiguousarray(cons_masks, dtype=np.uint64)
        self.ant_sizes = np.ascontiguousarray(ant_sizes, dtype=np.int32)
        self.cons_sizes = np.ascontiguousarray(cons_sizes, dtype=np.int32)
        self.n_rules = int(self.ant_masks.shape[0])
        self.n_words = int(self.ant_masks.shape[1])
        self._has_ant = self.ant_sizes > 0
        return self

    def _rule_block(self, n_jobs: int) -> int:
        """Rules per chunk keeping ``(n_jobs, block)`` temps bounded."""
        return max(1, _CHUNK_WORDS // max(1, n_jobs))

    # -- batch predicates ----------------------------------------------------
    def fired_mask(self, jobs: np.ndarray) -> np.ndarray:
        """``(n_jobs, n_rules)`` bool: antecedent ⊆ job, subset-tested.

        No popcount: a mask is a subset of a job row iff AND-ing with
        the row leaves it unchanged, word for word.  The loop runs over
        *words* (a handful for trace vocabularies) with 2-D outer
        broadcasts per word — an order of magnitude faster than one 3-D
        broadcast whose innermost axis is only ``n_words`` long.
        """
        n_jobs = jobs.shape[0]
        out = np.empty((n_jobs, self.n_rules), dtype=bool)
        block = self._rule_block(n_jobs)
        for lo in range(0, self.n_rules, block):
            hi = min(lo + block, self.n_rules)
            acc: np.ndarray | None = None
            for w in range(self.n_words):
                ant_w = self.ant_masks[lo:hi, w]
                fired_w = (jobs[:, w, None] & ant_w[None, :]) == ant_w[None, :]
                acc = fired_w if acc is None else acc.__iand__(fired_w)
            acc &= self._has_ant[None, lo:hi]
            out[:, lo:hi] = acc
        return out

    def hit_counts(self, jobs: np.ndarray) -> np.ndarray:
        """``(n_jobs, n_rules)`` int32: popcount(job & antecedent).

        The near-miss path needs the exact overlap, so this is the LUT
        popcount over the AND — the same 16-bit gather the mining kernel
        counts supports with, word by word.
        """
        n_jobs = jobs.shape[0]
        out = np.zeros((n_jobs, self.n_rules), dtype=np.int32)
        block = self._rule_block(n_jobs)
        for lo in range(0, self.n_rules, block):
            hi = min(lo + block, self.n_rules)
            for w in range(self.n_words):
                ant_w = self.ant_masks[lo:hi, w]
                and_w = jobs[:, w, None] & ant_w[None, :]
                halves = and_w.view(np.uint16).reshape(n_jobs, hi - lo, 4)
                out[:, lo:hi] += _POPCOUNT16[halves].sum(
                    axis=2, dtype=np.int32
                )
        return out

    def near_mask(self, jobs: np.ndarray) -> np.ndarray:
        """``(n_jobs, n_rules)`` bool: exactly one antecedent item short.

        Single-item antecedents are excluded by definition, mirroring
        the scalar countdown (a zero-hit rule never enters its counter
        map, so ``hits == 0 == size - 1`` cannot be observed there).
        """
        hits = self.hit_counts(jobs)
        return (hits == self.ant_sizes[None, :] - 1) & (
            self.ant_sizes[None, :] >= 2
        )

    # -- per-pair resolutions ------------------------------------------------
    def cons_observed(
        self, jobs: np.ndarray, job_idx: np.ndarray, rule_idx: np.ndarray
    ) -> np.ndarray:
        """Subset test of the consequent at the given (job, rule) pairs."""
        if len(job_idx) == 0:
            return np.zeros(0, dtype=bool)
        cons = self.cons_masks[rule_idx]
        return ((jobs[job_idx] & cons) == cons).all(axis=1)

    def missing_ids(
        self, jobs: np.ndarray, job_idx: np.ndarray, rule_idx: np.ndarray
    ) -> np.ndarray:
        """Item id of the single missing antecedent bit per near pair.

        Valid only for pairs from :meth:`near_mask`, where
        ``ant & ~job`` has exactly one set bit across all words.
        """
        if len(job_idx) == 0:
            return np.zeros(0, dtype=np.int64)
        miss = self.ant_masks[rule_idx] & ~jobs[job_idx]
        word = np.argmax(miss != 0, axis=1)
        bits = miss[np.arange(len(rule_idx)), word]
        # exactly one bit set → the float64 conversion is an exact power
        # of two and log2 recovers the bit index without a scan
        bit = np.round(np.log2(bits.astype(np.float64))).astype(np.int64)
        return word.astype(np.int64) * _WORD_BITS + bit

    def nbytes(self) -> int:
        return int(self.ant_masks.nbytes + self.cons_masks.nbytes)

    def __repr__(self) -> str:
        return (
            f"BatchMaskKernel(n_rules={self.n_rules}, "
            f"n_words={self.n_words})"
        )
