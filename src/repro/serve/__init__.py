"""Online rule serving: persist mined rules, match live jobs against them.

The offline pipeline (``repro.analysis``) ends at a pruned rule set; this
package is what turns that artefact into an operator-facing capability:

* :mod:`repro.serve.rulebook` — :class:`RuleBook`, the versioned
  JSON-lines persistence format (rules + provenance), so mined rules
  outlive the mining process;
* :mod:`repro.serve.index` — :class:`RuleIndex`, an inverted
  item → rules index answering ``match``/``explain`` in time proportional
  to the job, not the book;
* :mod:`repro.serve.service` — :class:`RuleService`, an asyncio TCP
  service (newline-delimited JSON) with micro-batching, bounded-queue
  backpressure and graceful drain;
* :mod:`repro.serve.client` — :class:`RuleServiceClient` plus the
  trace-replay load generator used by ``benchmarks/bench_serve_throughput``.

CLI entry points: ``repro mine-rulebook``, ``repro serve``, ``repro
match`` (see DESIGN.md §7).
"""

from .client import (
    ReplayStats,
    RuleServiceClient,
    ServiceError,
    replay_traffic,
    trace_transactions,
)
from .index import Match, NearMiss, RuleIndex
from .rulebook import SCHEMA_VERSION, RuleBook, RuleBookSchemaError
from .service import RuleService, ServiceMetrics

__all__ = [
    "RuleBook",
    "RuleBookSchemaError",
    "SCHEMA_VERSION",
    "RuleIndex",
    "Match",
    "NearMiss",
    "RuleService",
    "ServiceMetrics",
    "RuleServiceClient",
    "ServiceError",
    "ReplayStats",
    "replay_traffic",
    "trace_transactions",
]
