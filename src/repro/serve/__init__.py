"""Online rule serving: persist mined rules, match live jobs against them.

The offline pipeline (``repro.analysis``) ends at a pruned rule set; this
package is what turns that artefact into an operator-facing capability:

* :mod:`repro.serve.rulebook` — :class:`RuleBook`, the versioned
  JSON-lines persistence format (rules + provenance), so mined rules
  outlive the mining process;
* :mod:`repro.serve.index` — :class:`RuleIndex`, an inverted
  item → rules index answering ``match``/``explain`` in time proportional
  to the job, not the book;
* :mod:`repro.serve.batchmatch` — :class:`BatchMaskKernel`, the packed
  uint64 bitmask matrices the index compiles per hot-swap so whole
  micro-batches resolve in a few NumPy passes (``match_wire_batch`` /
  ``explain_batch``), byte-identical to the scalar path;
* :mod:`repro.serve.service` — :class:`RuleService`, an asyncio TCP
  service (newline-delimited JSON) with micro-batching, bounded-queue
  backpressure, zero-downtime rulebook hot-swap and graceful drain;
* :mod:`repro.serve.router` / :mod:`repro.serve.shard` /
  :mod:`repro.serve.lb` — horizontal scale-out: N shard worker
  processes behind a load-balancing front-end router (or kernel-balanced
  ``SO_REUSEPORT`` sockets), with rolling cluster-wide hot-swap;
* :mod:`repro.serve.client` — :class:`RuleServiceClient` (with built-in
  backpressure backoff) plus the trace-replay load generators used by
  ``benchmarks/bench_serve_throughput``.

CLI entry points: ``repro mine-rulebook``, ``repro serve`` (optionally
``--shards N``), ``repro reload-rulebook``, ``repro match`` (see
DESIGN.md §7 and §11).
"""

from .batchmatch import BatchMaskKernel
from .client import (
    ReplayStats,
    RuleServiceClient,
    ServiceError,
    replay_traffic,
    replay_traffic_multiprocess,
    trace_transactions,
)
from .index import Match, NearMiss, RuleIndex
from .lb import LB_POLICIES, LBPolicy, get_policy, register_policy
from .router import ShardDown, ShardHandle, ShardRouter
from .rulebook import SCHEMA_VERSION, RuleBook, RuleBookSchemaError
from .service import RuleService, ServiceMetrics
from .shard import ShardCluster, ShardProcess, broadcast_reload

__all__ = [
    "RuleBook",
    "RuleBookSchemaError",
    "SCHEMA_VERSION",
    "BatchMaskKernel",
    "RuleIndex",
    "Match",
    "NearMiss",
    "RuleService",
    "ServiceMetrics",
    "RuleServiceClient",
    "ServiceError",
    "ReplayStats",
    "replay_traffic",
    "replay_traffic_multiprocess",
    "trace_transactions",
    "LBPolicy",
    "LB_POLICIES",
    "get_policy",
    "register_policy",
    "ShardDown",
    "ShardHandle",
    "ShardRouter",
    "ShardCluster",
    "ShardProcess",
    "broadcast_reload",
]
