"""The unified mining engine — single entry point for every caller.

:class:`MiningEngine` composes an execution backend (how a mining pass
runs) with a content-addressed itemset cache (whether it needs to run at
all) and the staged pipeline ``preprocess → mine → generate-rules →
prune`` that instruments each stage into :class:`EngineStats`.

Every layer of the stack routes through here: the one-call helpers in
:mod:`repro.core.mining`, the :class:`InterpretableAnalysis` workflow and
case studies, the streaming window miner, the CLI, and the benchmark
harness.  A module-level default engine gives them a shared cache, so a
support sweep, a second keyword study or a repeated benchmark run on the
same trace content never mines twice.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

import numpy as np

from ..core.bitmap import kernel_delta, kernel_snapshot, kernel_timer
from ..core.itemsets import FrequentItemsets
from ..core.items import Item, as_item
from ..core.mining import KeywordRuleSet, MiningConfig
from ..core.pruning import PruningReport, prune_rule_table
from ..core.rules import SKIPPED_KERNEL, generate_rule_table
from ..core.ruletable import RuleTable
from ..core.transactions import TransactionDatabase
from .backends import ExecutionBackend, get_backend
from .cache import CacheStats, ItemsetCache
from .stats import EngineStats, StageStats, StageTimer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..analysis.workflow import AnalysisResult
    from ..dataframe import ColumnTable
    from ..preprocess import TracePreprocessor
    from ..streaming.bitwindow import StreamingBitmapWindow
    from ..streaming.refresh import TrackedRules

__all__ = ["MiningEngine", "default_engine", "set_default_engine"]


class MiningEngine:
    """Backend + cache + instrumented pipeline, in one object.

    Parameters
    ----------
    backend:
        A backend name from :data:`~repro.engine.backends.BACKENDS`
        (``"auto"`` by default) or an already-built
        :class:`ExecutionBackend` instance.
    n_workers, n_partitions:
        Forwarded to the backend factory when *backend* is a name.
    cache:
        ``True`` (own LRU cache), ``False``/``None`` (no caching), or an
        :class:`ItemsetCache` instance to share between engines.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "auto",
        *,
        n_workers: int | None = None,
        n_partitions: int | None = None,
        cache: bool | ItemsetCache | None = True,
    ):
        if isinstance(backend, str):
            backend = get_backend(backend, n_workers=n_workers, n_partitions=n_partitions)
        self.backend: ExecutionBackend = backend
        if cache is True:
            self.cache: ItemsetCache | None = ItemsetCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache

    def __repr__(self) -> str:
        return (
            f"MiningEngine(backend={self.backend!r}, "
            f"cache={'off' if self.cache is None else len(self.cache)})"
        )

    # -- mining ------------------------------------------------------------------
    def cache_key(self, db: TransactionDatabase, config: MiningConfig) -> tuple:
        """Content-addressed key: database fingerprint × itemset config."""
        return (db.fingerprint(), config.itemset_key)

    def mine(
        self, db: TransactionDatabase, config: MiningConfig = MiningConfig()
    ) -> FrequentItemsets:
        """Frequent itemsets of *db* — cached, backend-executed."""
        itemsets, _ = self.mine_with_status(db, config)
        return itemsets

    def mine_with_status(
        self, db: TransactionDatabase, config: MiningConfig = MiningConfig()
    ) -> tuple[FrequentItemsets, str]:
        """Like :meth:`mine`, also reporting ``"hit"``/``"miss"``/``"off"``."""
        if self.cache is None:
            return self.backend.resolve(db).mine(db, config), "off"
        key = self.cache_key(db, config)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, "hit"
        itemsets = self.backend.resolve(db).mine(db, config)
        self.cache.put(key, itemsets)
        return itemsets, "miss"

    def cache_stats(self) -> CacheStats | None:
        """Lifetime counters of the attached cache (None when disabled)."""
        return None if self.cache is None else self.cache.stats()

    # -- keyword rules ----------------------------------------------------------
    def keyword_rules(
        self,
        db: TransactionDatabase,
        keyword: Item | str,
        config: MiningConfig = MiningConfig(),
        itemsets: FrequentItemsets | None = None,
    ) -> KeywordRuleSet:
        """Full keyword workflow (mine → generate → prune), engine-cached."""
        if itemsets is None:
            itemsets = self.mine(db, config)
        kw = as_item(keyword)
        generated = self._generate_for_keyword(db, kw, itemsets, config)
        if generated is None:
            return _empty_ruleset(kw)
        return _prune_into_ruleset(generated, kw, config)

    def _generate_for_keyword(
        self,
        db: TransactionDatabase,
        kw: Item,
        itemsets: FrequentItemsets,
        config: MiningConfig,
    ) -> RuleTable | None:
        """Lift/confidence-filtered rule table touching *kw*; None if unseen."""
        kw_id = db.vocabulary.get_id(kw)
        if kw_id is None:
            return None
        return generate_rule_table(
            itemsets,
            min_lift=config.min_lift,
            min_confidence=config.min_confidence,
            keyword_ids=(kw_id,),
        )

    # -- incremental recount (streaming) -----------------------------------------
    def recount_rules(
        self, window: "StreamingBitmapWindow", tracked: "TrackedRules"
    ) -> RuleTable:
        """Re-score a tracked rulebook against a streaming window's counts.

        The incremental entry point of the streaming subsystem: *tracked*
        maps every rule of a rulebook to the window-maintained supports
        of its antecedent, consequent and union itemsets, so re-scoring
        the whole book costs three gathers plus the vectorised metric
        batch — no mining pass, no snapshot rebuild.  The metric
        arithmetic is operation-for-operation the batch scoring of
        :func:`~repro.core.rules.generate_rule_table`, which is what
        makes an incremental recount bit-identical to a full-window
        remine for the same counts.  Recorded under the
        ``stream-recount`` kernel (CLI ``--profile``).
        """
        with kernel_timer("stream-recount"):
            n = len(window)
            if n == 0:
                raise ValueError("cannot recount over an empty window")
            counts = window.tracked_counts()
            table = tracked.table
            supp_xy = counts[tracked.union_idx].astype(np.float64) / n
            supp_x = counts[tracked.ant_idx].astype(np.float64) / n
            supp_y = counts[tracked.cons_idx].astype(np.float64) / n
            denom = supp_x * supp_y
            with np.errstate(divide="ignore", invalid="ignore"):
                conf = np.where(supp_x > 0.0, supp_xy / supp_x, 0.0)
                lift_arr = np.where(denom > 0.0, supp_xy / denom, 0.0)
                conviction_arr = np.where(
                    conf >= 1.0, np.inf, (1.0 - supp_y) / (1.0 - conf)
                )
            leverage_arr = supp_xy - denom
            return RuleTable(
                table.vocabulary,
                table.ant_indptr, table.ant_ids,
                table.cons_indptr, table.cons_ids,
                supp_xy, conf, lift_arr, leverage_arr, conviction_arr,
            )

    # -- the staged pipeline ------------------------------------------------------
    def analyze(
        self,
        preprocessor: "TracePreprocessor",
        table: "ColumnTable",
        keywords: dict[str, Item | str],
        config: MiningConfig = MiningConfig(),
    ) -> "AnalysisResult":
        """Run ``preprocess → mine → generate-rules → prune`` on *table*.

        One (cached) mining pass is shared across all keywords of the
        study; each stage's wall time, cardinalities and cache status are
        recorded into the result's :attr:`~AnalysisResult.stats`.
        """
        from ..analysis.workflow import AnalysisResult

        stats = EngineStats(backend=self.backend.name)

        # the preprocess result cache follows the engine's cache switch:
        # --no-cache disables both layers
        before = kernel_snapshot()
        with StageTimer() as t:
            preprocess, pre_status = preprocessor.run_with_status(
                table, use_cache=self.cache is not None
            )
        pre_kernels = kernel_delta(before, kernel_snapshot())
        db = preprocess.database
        stats.add(
            StageStats(
                "preprocess",
                t.seconds,
                len(table),
                len(db),
                pre_status,
                kernels=pre_kernels,
            )
        )

        before = kernel_snapshot()
        with StageTimer() as t:
            itemsets, cache_status = self.mine_with_status(db, config)
        mine_kernels = kernel_delta(before, kernel_snapshot())
        resolved = self.backend.resolve(db)
        if resolved is not self.backend:
            stats.backend = f"{self.backend.name}:{resolved.name}"
        if cache_status == "hit":
            # no mining ran, so the backend executed no plan this time
            stats.backend_effective = "cache"
        else:
            stats.backend_effective = getattr(resolved, "effective_plan", None)
            stats.backend_downgraded = bool(
                getattr(resolved, "downgraded", False)
            )
            if stats.backend_downgraded:
                warnings.warn(
                    f"backend {stats.backend} downgraded to "
                    f"{stats.backend_effective}: shared-memory plane "
                    "unavailable, pickling partitions instead",
                    RuntimeWarning,
                    stacklevel=2,
                )
        stats.add(
            StageStats(
                "mine",
                t.seconds,
                len(db),
                len(itemsets),
                cache_status,
                kernels=mine_kernels,
            )
        )

        result = AnalysisResult(
            config=config, preprocess=preprocess, itemsets=itemsets, stats=stats
        )

        generate_seconds = prune_seconds = 0.0
        n_generated = n_kept = 0
        kept_tables: list[RuleTable] = []
        before = kernel_snapshot()
        for name, keyword in keywords.items():
            kw = as_item(keyword)
            with StageTimer() as t:
                table = self._generate_for_keyword(db, kw, itemsets, config)
            generate_seconds += t.seconds
            if table is None:
                result.keyword_results[name] = _empty_ruleset(kw)
                continue
            n_generated += len(table)
            with StageTimer() as t:
                ruleset = _prune_into_ruleset(table, kw, config)
            prune_seconds += t.seconds
            n_kept += len(ruleset)
            if ruleset.table is not None and len(ruleset.table):
                kept_tables.append(ruleset.table)
            result.keyword_results[name] = ruleset

        # one kernel delta covers the whole loop; attribute ``prune-*``
        # kernels to the prune stage and the rest to generation
        loop_kernels = kernel_delta(before, kernel_snapshot())
        generate_kernels = tuple(
            k for k in loop_kernels if not k[0].startswith("prune-")
        )
        prune_kernels = tuple(k for k in loop_kernels if k[0].startswith("prune-"))
        stats.rules_skipped += sum(
            calls for name, _seconds, calls in loop_kernels if name == SKIPPED_KERNEL
        )
        stats.add(
            StageStats(
                "generate-rules",
                generate_seconds,
                len(itemsets),
                n_generated,
                kernels=generate_kernels,
            )
        )
        stats.add(
            StageStats(
                "prune", prune_seconds, n_generated, n_kept, kernels=prune_kernels
            )
        )
        if kept_tables:
            result.rule_table = RuleTable.concat(kept_tables).dedup()
        else:
            result.rule_table = RuleTable.empty(db.vocabulary)
        return result


def _empty_ruleset(kw: Item) -> KeywordRuleSet:
    """The keyword never appears in the trace; nothing to analyse."""
    return KeywordRuleSet(
        keyword=kw,
        cause=(),
        characteristic=(),
        report=PruningReport(),
        n_rules_before_pruning=0,
    )


def _prune_into_ruleset(
    table: RuleTable, kw: Item, config: MiningConfig
) -> KeywordRuleSet:
    """Apply Conditions 1–4 and split into cause ("C") / characteristic ("A")."""
    kept_table, report = prune_rule_table(table, kw, config.pruning)
    kept = kept_table.to_rules()
    return KeywordRuleSet(
        keyword=kw,
        cause=tuple(r for r in kept if kw in r.consequent),
        characteristic=tuple(r for r in kept if kw in r.antecedent),
        report=report,
        n_rules_before_pruning=len(table),
        table=kept_table,
    )


#: process-wide default engine: auto backend, shared content-addressed
#: cache — what the one-call helpers and the workflow use unless told
#: otherwise
_DEFAULT_ENGINE: MiningEngine | None = None


def default_engine() -> MiningEngine:
    """The process-wide shared engine (created on first use)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = MiningEngine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: MiningEngine | None) -> MiningEngine | None:
    """Replace the shared engine (None resets to a fresh lazy default)."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
