"""Per-stage instrumentation for the mining engine.

Every engine run reports, per pipeline stage, the wall time, the input
and output cardinality, and whether the itemset cache answered the mine
stage.  The result is a machine-readable :class:`EngineStats` attached to
:class:`~repro.analysis.workflow.AnalysisResult`, so operators (and the
CLI stats footer) can see where a run spent its time without profiling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["StageStats", "EngineStats", "StageTimer", "CACHE_STATES"]

#: valid values of :attr:`StageStats.cache`
CACHE_STATES = ("hit", "miss", "off", "n/a")


@dataclass(frozen=True, slots=True)
class StageStats:
    """Instrumentation record of one pipeline stage."""

    name: str
    seconds: float
    n_in: int
    n_out: int
    cache: str = "n/a"

    def __post_init__(self) -> None:
        if self.cache not in CACHE_STATES:
            raise ValueError(f"cache must be one of {CACHE_STATES}, got {self.cache!r}")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "cache": self.cache,
        }


@dataclass(slots=True)
class EngineStats:
    """Everything one engine run measured, in stage order."""

    backend: str
    stages: list[StageStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def add(self, stage: StageStats) -> None:
        self.stages.append(stage)
        if stage.cache == "hit":
            self.cache_hits += 1
        elif stage.cache == "miss":
            self.cache_misses += 1

    def stage(self, name: str) -> StageStats:
        """The first recorded stage called *name*; KeyError if absent."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(
            f"no stage named {name!r}; have {[s.name for s in self.stages]}"
        )

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def as_dict(self) -> dict:
        """Machine-readable schema (documented in DESIGN.md §6)."""
        return {
            "backend": self.backend,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "total_seconds": self.total_seconds,
            "stages": [stage.as_dict() for stage in self.stages],
        }

    def render(self) -> str:
        """Plain-text footer for the CLI (one line per stage)."""
        lines = [
            f"engine stats — backend={self.backend} "
            f"cache={self.cache_hits} hit / {self.cache_misses} miss "
            f"total={self.total_seconds:.3f}s"
        ]
        for stage in self.stages:
            lines.append(
                f"  {stage.name:<14} {stage.seconds:>8.3f}s  "
                f"in={stage.n_in:<8} out={stage.n_out:<8} cache={stage.cache}"
            )
        return "\n".join(lines)


class StageTimer:
    """Context manager measuring one stage's wall time.

    Usage::

        with StageTimer() as t:
            ...work...
        stats.add(StageStats("mine", t.seconds, n_in, n_out, "miss"))
    """

    __slots__ = ("_start", "seconds")

    def __enter__(self) -> "StageTimer":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
