"""Per-stage instrumentation for the mining engine.

Every engine run reports, per pipeline stage, the wall time, the input
and output cardinality, and whether the itemset cache answered the mine
stage.  The result is a machine-readable :class:`EngineStats` attached to
:class:`~repro.analysis.workflow.AnalysisResult`, so operators (and the
CLI stats footer) can see where a run spent its time without profiling.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

__all__ = [
    "StageStats",
    "EngineStats",
    "StageTimer",
    "LatencyHistogram",
    "aggregate_shard_metrics",
    "CACHE_STATES",
]

#: valid values of :attr:`StageStats.cache`
CACHE_STATES = ("hit", "miss", "off", "n/a")


@dataclass(frozen=True, slots=True)
class StageStats:
    """Instrumentation record of one pipeline stage.

    ``kernels`` attributes the stage's wall time to named counting
    kernels: ``(name, seconds, calls)`` tuples from the kernel-counter
    delta measured around the stage (see :mod:`repro.core.bitmap`).
    Empty for stages that ran no instrumented kernel.
    """

    name: str
    seconds: float
    n_in: int
    n_out: int
    cache: str = "n/a"
    kernels: tuple[tuple[str, float, int], ...] = ()

    def __post_init__(self) -> None:
        if self.cache not in CACHE_STATES:
            raise ValueError(f"cache must be one of {CACHE_STATES}, got {self.cache!r}")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "cache": self.cache,
            "kernels": [
                {"name": name, "seconds": seconds, "calls": calls}
                for name, seconds, calls in self.kernels
            ],
        }


@dataclass(slots=True)
class EngineStats:
    """Everything one engine run measured, in stage order.

    ``rules_skipped`` counts antecedent/consequent splits dropped during
    rule generation because a sub-itemset's support was missing from the
    table (possible with SON-style partitioned mining, which can emit a
    superset without every subset).  Silently losing those candidates
    would skew the rule counts, so the engine surfaces the tally here and
    the CLI ``--profile`` footer warns when it is non-zero.
    """

    backend: str
    stages: list[StageStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    rules_skipped: int = 0
    #: the execution plan the resolved backend actually ran — e.g.
    #: ``process:shm-spawn`` vs ``process:pickle`` — None when the
    #: backend predates plan reporting (custom registrations)
    backend_effective: str | None = None
    #: True when the requested backend silently fell back to a slower
    #: plan (e.g. shared memory unavailable → pickled partitions)
    backend_downgraded: bool = False

    def add(self, stage: StageStats) -> None:
        self.stages.append(stage)
        if stage.cache == "hit":
            self.cache_hits += 1
        elif stage.cache == "miss":
            self.cache_misses += 1

    def stage(self, name: str) -> StageStats:
        """The first recorded stage called *name*; KeyError if absent."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(
            f"no stage named {name!r}; have {[s.name for s in self.stages]}"
        )

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def as_dict(self) -> dict:
        """Machine-readable schema (documented in DESIGN.md §6)."""
        return {
            "backend": self.backend,
            "backend_effective": self.backend_effective,
            "backend_downgraded": self.backend_downgraded,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "rules_skipped": self.rules_skipped,
            "total_seconds": self.total_seconds,
            "stages": [stage.as_dict() for stage in self.stages],
        }

    def render(self, profile: bool = False) -> str:
        """Plain-text footer for the CLI (one line per stage).

        With ``profile=True``, each stage is followed by its kernel
        attribution — which counting kernels ran, for how long, how many
        times (the CLI ``--profile`` flag).
        """
        effective = (
            f" effective={self.backend_effective}"
            if self.backend_effective
            else ""
        )
        lines = [
            f"engine stats — backend={self.backend}{effective} "
            f"cache={self.cache_hits} hit / {self.cache_misses} miss "
            f"total={self.total_seconds:.3f}s"
        ]
        for stage in self.stages:
            lines.append(
                f"  {stage.name:<14} {stage.seconds:>8.3f}s  "
                f"in={stage.n_in:<8} out={stage.n_out:<8} cache={stage.cache}"
            )
            if profile:
                for name, seconds, calls in stage.kernels:
                    lines.append(
                        f"    kernel {name:<16} {seconds:>8.3f}s  calls={calls}"
                    )
        if self.backend_downgraded:
            lines.append(
                f"  warning: backend {self.backend} downgraded to "
                f"{self.backend_effective} (shared-memory plane unavailable)"
            )
        if self.rules_skipped:
            lines.append(
                f"  warning: {self.rules_skipped} candidate split(s) skipped "
                "(sub-itemset support missing from the itemset table)"
            )
        return "\n".join(lines)


class LatencyHistogram:
    """Log-bucketed latency histogram: O(1) record, O(buckets) quantiles.

    Latencies are binned into geometrically spaced buckets between
    *min_seconds* and *max_seconds* (defaults cover 1 µs … 60 s at ~9 %
    resolution), so memory stays constant no matter how many samples are
    recorded — the property an online service needs to report p50/p99
    over millions of requests.  Quantiles are answered by walking the
    cumulative counts and interpolating within the winning bucket, which
    bounds the error by the bucket width.

    Shared between the mining engine's stage instrumentation and the
    rule-serving subsystem (:mod:`repro.serve.service`).
    """

    __slots__ = (
        "_bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_min_seconds",
        "_max_seconds",
        "_growth",
    )

    def __init__(
        self,
        min_seconds: float = 1e-6,
        max_seconds: float = 60.0,
        growth: float = 1.09,
    ):
        if not 0 < min_seconds < max_seconds:
            raise ValueError("need 0 < min_seconds < max_seconds")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self._min_seconds = min_seconds
        self._max_seconds = max_seconds
        self._growth = growth
        bounds = [min_seconds]
        while bounds[-1] < max_seconds:
            bounds.append(bounds[-1] * growth)
        self._bounds = bounds  # upper edge of each bucket
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    def __len__(self) -> int:
        return self._count

    def record(self, seconds: float) -> None:
        """Record one latency sample (negative values clamp to zero)."""
        seconds = max(seconds, 0.0)
        lo, hi = 0, len(self._bounds)
        while lo < hi:  # first bucket whose upper edge holds the sample
            mid = (lo + hi) // 2
            if self._bounds[mid] >= seconds:
                hi = mid
            else:
                lo = mid + 1
        self._counts[lo] += 1
        self._count += 1
        self._sum += seconds
        self._min = min(self._min, seconds)
        self._max = max(self._max, seconds)

    def quantile(self, q: float) -> float:
        """Approximate the *q*-quantile (0 ≤ q ≤ 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * (self._count - 1)
        seen = 0
        for i, count in enumerate(self._counts):
            if count == 0:
                continue
            if seen + count > rank:
                upper = (
                    self._bounds[i] if i < len(self._bounds) else self._max
                )
                lower = self._bounds[i - 1] if i > 0 else 0.0
                # interpolate within the bucket, clamped to observed range
                frac = (rank - seen + 1) / count
                value = lower + (upper - lower) * min(frac, 1.0)
                return min(max(value, self._min), self._max)
            seen += count
        return self._max  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def as_dict(self) -> dict:
        """Summary payload used by the serving ``metrics`` response."""
        return {
            "count": self._count,
            "mean_s": self.mean,
            "min_s": 0.0 if self._count == 0 else self._min,
            "max_s": self._max,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
        }

    # -- cross-process state -----------------------------------------------------
    # The serving layer runs one process per shard; each shard reports its
    # histogram as raw bucket counts (state_dict) and the router rebuilds
    # and merges them (from_state + merge).  Merging bucket counts is
    # exact — unlike averaging per-shard quantiles, which is wrong for
    # any skewed distribution — provided every histogram uses identical
    # bucket geometry, which the constructor parameters pin down.

    def state_dict(self) -> dict:
        """JSON-safe full state: bucket geometry plus raw counts."""
        return {
            "min_seconds": self._min_seconds,
            "max_seconds": self._max_seconds,
            "growth": self._growth,
            "counts": list(self._counts),
            "count": self._count,
            "sum_s": self._sum,
            "min_s": None if self._count == 0 else self._min,
            "max_s": self._max,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`state_dict` output."""
        hist = cls(
            min_seconds=state["min_seconds"],
            max_seconds=state["max_seconds"],
            growth=state["growth"],
        )
        counts = list(state["counts"])
        if len(counts) != len(hist._counts):
            raise ValueError(
                f"bucket count mismatch: state has {len(counts)}, "
                f"geometry implies {len(hist._counts)}"
            )
        hist._counts = counts
        hist._count = int(state["count"])
        hist._sum = float(state["sum_s"])
        min_s = state["min_s"]
        hist._min = math.inf if min_s is None else float(min_s)
        hist._max = float(state["max_s"])
        return hist

    def merge(self, other: "LatencyHistogram | dict") -> "LatencyHistogram":
        """Fold *other*'s samples into this histogram (exact; in place).

        Accepts another histogram or a :meth:`state_dict` payload.
        Raises :class:`ValueError` if the bucket geometries differ —
        counts from differently shaped histograms are not comparable.
        """
        if isinstance(other, dict):
            other = LatencyHistogram.from_state(other)
        if (
            other._min_seconds != self._min_seconds
            or other._max_seconds != self._max_seconds
            or other._growth != self._growth
        ):
            raise ValueError(
                "cannot merge histograms with different bucket geometry"
            )
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self


class StageTimer:
    """Context manager measuring one stage's wall time.

    Usage::

        with StageTimer() as t:
            ...work...
        stats.add(StageStats("mine", t.seconds, n_in, n_out, "miss"))
    """

    __slots__ = ("_start", "seconds")

    def __enter__(self) -> "StageTimer":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def aggregate_shard_metrics(shard_metrics: list[dict]) -> dict:
    """Merge per-shard serving ``metrics`` payloads into a cluster view.

    Input dicts are what one :class:`~repro.serve.service.RuleService`
    answers to a ``metrics`` request: request counters under
    ``requests``, per-rule fire counts under ``rule_matches``, and the
    latency histogram both summarised (``latency``) and as raw state
    (``latency_state``).  Counters, rule counts, and the batch-kernel
    attribution (``kernel``: batches/jobs/seconds) sum; latency merges
    at the bucket level, so the aggregate p99 is the true cluster p99,
    not an average of per-shard p99s; ``uptime_s`` is the oldest
    shard's (the cluster has been serving at least that long);
    ``queue_depth`` sums (total queued work across the cluster).
    """
    merged_latency = LatencyHistogram()
    requests: dict[str, int] = {}
    rule_matches: dict[str, int] = {}
    kernel: dict[str, float] = {"batches": 0, "jobs": 0, "seconds": 0.0}
    uptime_s = 0.0
    queue_depth = 0
    for metrics in shard_metrics:
        state = metrics.get("latency_state")
        if state:
            merged_latency.merge(state)
        for key, value in (metrics.get("requests") or {}).items():
            requests[key] = requests.get(key, 0) + int(value)
        for label, count in (metrics.get("rule_matches") or {}).items():
            rule_matches[label] = rule_matches.get(label, 0) + int(count)
        for key, value in (metrics.get("kernel") or {}).items():
            kernel[key] = kernel.get(key, 0) + value
        uptime_s = max(uptime_s, float(metrics.get("uptime_s") or 0.0))
        queue_depth += int(metrics.get("queue_depth") or 0)
    return {
        "n_shards": len(shard_metrics),
        "uptime_s": uptime_s,
        "queue_depth": queue_depth,
        "latency": merged_latency.as_dict(),
        "latency_state": merged_latency.state_dict(),
        "requests": requests,
        "kernel": kernel,
        "rule_matches": dict(sorted(rule_matches.items())),
    }
