"""Content-addressed result caches.

Mining the same database at the same ``(min_support, max_len, algorithm)``
always yields the same :class:`~repro.core.itemsets.FrequentItemsets`, so
the engine memoises results under a key derived from the database
*content* (:meth:`TransactionDatabase.fingerprint`) and the config's
itemset-relevant fields.  Keying by content rather than identity means a
re-generated or re-loaded trace with identical transactions still hits —
which is exactly what multi-keyword case studies, support sweeps and
repeated benchmark runs do.

:class:`LRUCache` is the generic mechanism (LRU-bounded, thread-safe,
hit/miss/eviction counters); :class:`ItemsetCache` specialises it for the
mining stage, and the preprocess result cache in
:mod:`repro.preprocess.pipeline` reuses the same machinery keyed by table
fingerprint × pipeline spec.  Counters feed the engine's
:class:`~repro.engine.stats.EngineStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Any

__all__ = ["CacheStats", "LRUCache", "ItemsetCache"]

#: default number of cached mining results; itemset dicts are small
#: relative to the databases they summarise, so a few dozen is cheap
DEFAULT_MAX_ENTRIES = 64


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counter snapshot of one :class:`ItemsetCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Thread-safe, LRU-bounded mapping of hashable key → result."""

    __slots__ = ("max_entries", "_entries", "_lock", "_hits", "_misses", "_evictions")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> Any | None:
        """Look up *key*, counting a hit or miss and touching LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: tuple, value: Any) -> None:
        """Insert *value*, evicting the least-recently-used beyond bounds."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_entries=self.max_entries,
            )


class ItemsetCache(LRUCache):
    """LRU mapping ``(db fingerprint, config key) → FrequentItemsets``.

    The mining-stage specialisation of :class:`LRUCache`; itemset dicts
    are small relative to the databases they summarise, so a few dozen
    entries is cheap.
    """

    __slots__ = ()
