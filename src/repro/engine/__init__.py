"""Unified mining engine: backends × cache × instrumented pipeline.

Single mining entry point for the whole stack (see DESIGN.md §6):

* :mod:`repro.engine.backends` — pluggable :class:`ExecutionBackend`
  implementations (``serial`` / ``threaded`` / ``process`` / ``auto``)
  behind the :data:`BACKENDS` registry;
* :mod:`repro.engine.cache` — content-addressed, LRU-bounded
  :class:`ItemsetCache` keyed by database fingerprint × mining config;
* :mod:`repro.engine.stats` — per-stage :class:`EngineStats`
  instrumentation;
* :mod:`repro.engine.engine` — :class:`MiningEngine` tying it together,
  plus the process-wide :func:`default_engine`.
"""

from .backends import (
    AUTO_PROCESS_THRESHOLD,
    AUTO_THREADED_THRESHOLD,
    AutoBackend,
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadedBackend,
    get_backend,
    register_backend,
)
from .cache import CacheStats, ItemsetCache, LRUCache
from .engine import MiningEngine, default_engine, set_default_engine
from .stats import EngineStats, LatencyHistogram, StageStats

__all__ = [
    "MiningEngine",
    "default_engine",
    "set_default_engine",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "AutoBackend",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "AUTO_THREADED_THRESHOLD",
    "AUTO_PROCESS_THRESHOLD",
    "ItemsetCache",
    "LRUCache",
    "CacheStats",
    "EngineStats",
    "StageStats",
    "LatencyHistogram",
]
