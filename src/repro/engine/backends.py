"""Execution backends: how a mining pass runs, never what it computes.

A backend turns ``(TransactionDatabase, MiningConfig)`` into
:class:`~repro.core.itemsets.FrequentItemsets`.  All backends are
answer-identical — they change the execution plan only:

* ``serial`` — one in-process pass of the configured algorithm;
* ``threaded`` — SON two-phase over a thread pool (phase 2 is numpy
  bitmap counting, which releases the GIL);
* ``process`` — SON two-phase over a process pool fed by the
  shared-memory data plane (:mod:`repro.shm`), the shape distributed
  miners (Spark SON) use at cluster scale — spawn-safe, since workers
  attach the published database instead of relying on fork inheritance;
* ``auto`` — picks one of the above from the database size.

Each backend reports the plan it actually executed through
``effective_plan`` (and ``downgraded`` when a fallback was taken), which
the engine surfaces in :class:`~repro.engine.stats.EngineStats`.

Backends register in :data:`BACKENDS`, mirroring the
:data:`~repro.core.mining.ALGORITHMS` registry one layer down.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..core.bitmap import PackedBitmaps
from ..core.itemsets import FrequentItemsets
from ..core.mining import ALGORITHMS, MiningConfig
from ..core.transactions import TransactionDatabase
from ..parallel.partition import (
    count_candidates,
    local_candidates,
    shm_local_candidates,
)
from ..shm.database import publish_database
from ..shm.segment import NO_SHM_ENV, SegmentError, shm_available

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "AutoBackend",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "AUTO_THREADED_THRESHOLD",
    "AUTO_PROCESS_THRESHOLD",
]

#: auto selection: below this many transactions a serial pass wins
#: (partitioning overhead dominates), above it threads help, and past the
#: process threshold worker processes amortise their startup cost
AUTO_THREADED_THRESHOLD = 50_000
AUTO_PROCESS_THRESHOLD = 250_000


@runtime_checkable
class ExecutionBackend(Protocol):
    """The contract every execution backend satisfies."""

    name: str

    def mine(
        self, db: TransactionDatabase, config: MiningConfig
    ) -> FrequentItemsets: ...

    def resolve(self, db: TransactionDatabase) -> "ExecutionBackend":
        """The concrete backend that will run *db* (self, unless auto)."""
        ...


class SerialBackend:
    """Single in-process pass of the configured algorithm."""

    name = "serial"
    #: the plan actually executed — constant here, dynamic for process
    effective_plan = "serial"
    downgraded = False

    def mine(self, db: TransactionDatabase, config: MiningConfig) -> FrequentItemsets:
        algorithm = ALGORITHMS[config.algorithm]
        counts = algorithm(db, config.min_support, config.max_len)
        return FrequentItemsets(
            counts,
            db.vocabulary,
            len(db),
            min_support=config.min_support,
            max_len=config.max_len,
        )

    def resolve(self, db: TransactionDatabase) -> "SerialBackend":
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _PartitionedBackend:
    """SON two-phase mining; subclasses pick the phase-1 executor.

    Phase 1 mines each partition at the same relative support (the
    pigeonhole argument makes the union a complete candidate set); phase
    2 counts every candidate exactly over the full database's vertical
    bitmaps.  The result is bit-exact against a serial pass — SON changes
    the execution plan, not the answer.
    """

    name = "partitioned"
    _executor_cls: type[Executor]
    effective_plan: str | None = None
    downgraded = False

    def __init__(self, n_workers: int | None = None, n_partitions: int | None = None):
        if n_workers is None:
            n_workers = min(4, os.cpu_count() or 1)
        if n_partitions is None:
            n_partitions = max(n_workers, 2)
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.n_partitions = n_partitions

    def mine(self, db: TransactionDatabase, config: MiningConfig) -> FrequentItemsets:
        n = len(db)
        if n == 0:
            return FrequentItemsets(
                {}, db.vocabulary, 0, config.min_support, config.max_len
            )
        # build the packed bitmaps up front: 64-aligned partitions then
        # inherit word slices of this build (txn_range) instead of packing
        # their own, and phase 2 counts against the same object
        bitmaps = db.bitmaps()
        bounds = db.partition_bounds(self.n_partitions)
        spans = [
            (int(bounds[k]), int(bounds[k + 1]))
            for k in range(len(bounds) - 1)
            if bounds[k + 1] > bounds[k]
        ]
        candidates = self._phase1(db, spans, config)
        counts = self._phase2(db, candidates, bitmaps)
        min_count = max(1, int(np.ceil(config.min_support * n - 1e-9)))
        frequent = {s: c for s, c in counts.items() if c >= min_count}
        return FrequentItemsets(
            frequent, db.vocabulary, n, config.min_support, config.max_len
        )

    def _phase1(
        self,
        db: TransactionDatabase,
        spans: list[tuple[int, int]],
        config: MiningConfig,
    ) -> set[frozenset[int]]:
        """SON phase 1: union of locally frequent itemsets per partition."""
        parts = [db.txn_range(a, b) for a, b in spans]
        args = (
            parts,
            [config.min_support] * len(parts),
            [config.max_len] * len(parts),
            [config.algorithm] * len(parts),
        )
        if self.n_workers == 1 or len(parts) == 1:
            locals_ = [local_candidates(*a) for a in zip(*args)]
        else:
            with self._executor_cls(
                max_workers=min(self.n_workers, len(parts))
            ) as pool:
                locals_ = list(pool.map(local_candidates, *args))
        candidates: set[frozenset[int]] = set()
        for c in locals_:
            candidates |= c
        return candidates

    def _phase2(
        self,
        db: TransactionDatabase,
        candidates: set[frozenset[int]],
        bitmaps: PackedBitmaps,
    ) -> dict[frozenset[int], int]:
        """SON phase 2: exact global counts over the shared packed bitmaps."""
        return count_candidates(db, candidates, bitmaps=bitmaps)

    def resolve(self, db: TransactionDatabase) -> "_PartitionedBackend":
        return self

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"n_partitions={self.n_partitions})"
        )


class ThreadedBackend(_PartitionedBackend):
    """SON over a thread pool (shared-memory, no pickling).

    Phase 1 partitions are zero-copy ``txn_range`` views sharing the
    parent's bitmap slices; phase 2 shards the candidate set across the
    same worker threads, each chunk an independent run of the packed
    AND+popcount kernel (numpy releases the GIL, so the chunks genuinely
    overlap).
    """

    name = "threaded"
    _executor_cls = ThreadPoolExecutor
    effective_plan = "threaded"

    #: below this many candidates, thread dispatch costs more than it saves
    _PHASE2_CHUNK_MIN = 256

    def _phase2(
        self,
        db: TransactionDatabase,
        candidates: set[frozenset[int]],
        bitmaps: PackedBitmaps,
    ) -> dict[frozenset[int], int]:
        items = list(candidates)
        n_chunks = min(self.n_workers, len(items) // self._PHASE2_CHUNK_MIN)
        if n_chunks <= 1:
            return count_candidates(db, items, bitmaps=bitmaps)
        chunks = [items[i::n_chunks] for i in range(n_chunks)]
        out: dict[frozenset[int], int] = {}
        with ThreadPoolExecutor(max_workers=n_chunks) as pool:
            for counted in pool.map(
                lambda chunk: count_candidates(db, chunk, bitmaps=bitmaps),
                chunks,
            ):
                out.update(counted)
        return out


class ProcessBackend(_PartitionedBackend):
    """SON over a process pool fed by the shared-memory data plane.

    The parent publishes the database — CSR arrays plus the already-built
    packed bitmaps — into one shared-memory segment
    (:func:`repro.shm.publish_database`) and phase 1 ships only
    ``(segment name, start, stop)`` per span.  Each worker attaches
    read-only zero-copy views and takes a ``txn_range`` view whose
    bitmaps are word slices of the published build, so no worker ever
    re-derives a vertical representation — under *any* start method,
    spawn included.  When shared memory is unavailable (or disabled via
    ``REPRO_NO_SHM`` / ``--no-shm``) it falls back to pickling whole
    partitions; the fallback is recorded in :attr:`effective_plan` /
    :attr:`downgraded` and surfaced through EngineStats.
    """

    name = "process"
    _executor_cls = ProcessPoolExecutor

    def __init__(self, n_workers: int | None = None, n_partitions: int | None = None):
        super().__init__(n_workers, n_partitions)
        self.effective_plan: str | None = None
        self.downgraded = False

    def _phase1(
        self,
        db: TransactionDatabase,
        spans: list[tuple[int, int]],
        config: MiningConfig,
    ) -> set[frozenset[int]]:
        if self.n_workers == 1 or len(spans) == 1:
            # the base class runs this shape inline — no pool, no copy
            self.effective_plan = "process:inline"
            self.downgraded = False
            return super()._phase1(db, spans, config)
        if shm_available():
            try:
                lease = publish_database(db)
            except SegmentError:  # pragma: no cover - e.g. /dev/shm full
                lease = None
            if lease is not None:
                return self._phase1_shm(lease.name, spans, config)
        # fallback: pickle whole partitions through the default pool —
        # intentional under REPRO_NO_SHM, a downgrade everywhere else
        self.effective_plan = "process:pickle"
        self.downgraded = not os.environ.get(NO_SHM_ENV)
        return super()._phase1(db, spans, config)

    def _phase1_shm(
        self,
        segment: str,
        spans: list[tuple[int, int]],
        config: MiningConfig,
    ) -> set[frozenset[int]]:
        n_spans = len(spans)
        start_method = multiprocessing.get_start_method()
        self.effective_plan = f"process:shm-{start_method}"
        self.downgraded = False
        with ProcessPoolExecutor(
            max_workers=min(self.n_workers, n_spans)
        ) as pool:
            locals_ = list(
                pool.map(
                    shm_local_candidates,
                    [segment] * n_spans,
                    [a for a, _ in spans],
                    [b for _, b in spans],
                    [config.min_support] * n_spans,
                    [config.max_len] * n_spans,
                    [config.algorithm] * n_spans,
                )
            )
        candidates: set[frozenset[int]] = set()
        for c in locals_:
            candidates |= c
        return candidates


class AutoBackend:
    """Size-based backend selection, resolved per database at mine time."""

    name = "auto"

    def __init__(self, n_workers: int | None = None, n_partitions: int | None = None):
        self._serial = SerialBackend()
        self._threaded = ThreadedBackend(n_workers, n_partitions)
        self._process = ProcessBackend(n_workers, n_partitions)

    def resolve(self, db: TransactionDatabase) -> ExecutionBackend:
        n = len(db)
        if n < AUTO_THREADED_THRESHOLD:
            return self._serial
        if n < AUTO_PROCESS_THRESHOLD:
            return self._threaded
        return self._process

    def mine(self, db: TransactionDatabase, config: MiningConfig) -> FrequentItemsets:
        return self.resolve(db).mine(db, config)

    def __repr__(self) -> str:
        return f"AutoBackend(n_workers={self._threaded.n_workers})"


#: backend registry — name → factory accepting (n_workers=, n_partitions=)
BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": lambda n_workers=None, n_partitions=None: SerialBackend(),
    "threaded": ThreadedBackend,
    "process": ProcessBackend,
    "auto": AutoBackend,
}


def register_backend(name: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Add a custom backend under *name* (overwriting is an error)."""
    if name in BACKENDS:
        raise ValueError(f"backend {name!r} is already registered")
    BACKENDS[name] = factory


def get_backend(
    name: str,
    n_workers: int | None = None,
    n_partitions: int | None = None,
) -> ExecutionBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; have {sorted(BACKENDS)}"
        ) from None
    return factory(n_workers=n_workers, n_partitions=n_partitions)
