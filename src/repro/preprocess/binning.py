"""Discretisation of continuous job features (Sec. III-E).

The paper bins continuous attributes by **equal-frequency quartiles**:

* Bin1: [min, 25th percentile)
* Bin2: [25th, median)
* Bin3: [median, 75th percentile)
* Bin4: [75th percentile, max]

with two trace-specific refinements observed in the case studies:

* a **zero bin** — "SM Util = 0%", "GMem Used = 0GB" — because exact zeros
  are the phenomenon under study and must not be diluted into Bin1;
* a **standard-value bin** ("Std") — when a single value covers a large
  share of jobs (e.g. ~50 % of PAI jobs request exactly 600 CPU cores),
  that value becomes its own bin and the quartiles are computed over the
  remainder.

Equal-width binning is provided for the ablation the paper discusses
("this method does not work well because some features such as runtime
have long tails").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

__all__ = ["BinningSpec", "Discretizer", "equal_frequency_edges", "equal_width_edges"]


@dataclass(frozen=True, slots=True)
class BinningSpec:
    """How one continuous feature is discretised."""

    scheme: Literal["equal_frequency", "equal_width"] = "equal_frequency"
    n_bins: int = 4
    #: label for exact zeros (e.g. "0%"); None disables the special bin
    zero_label: str | None = None
    #: label for a dominant exact value (e.g. "Std"); None disables detection
    std_label: str | None = None
    #: minimum share of (non-special) values a mode needs to become "Std"
    std_threshold: float = 0.3

    def __post_init__(self) -> None:
        if self.n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        if not 0.0 < self.std_threshold <= 1.0:
            raise ValueError("std_threshold must be in (0, 1]")
        if self.scheme not in ("equal_frequency", "equal_width"):
            raise ValueError(f"unknown binning scheme {self.scheme!r}")


def equal_frequency_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior quantile edges (deduplicated) for equal-frequency binning.

    Returns at most ``n_bins - 1`` strictly increasing edges; heavy ties
    can collapse edges, yielding fewer, wider bins — the correct behaviour
    for near-constant features.
    """
    if values.size == 0:
        return np.asarray([], dtype=np.float64)
    qs = np.linspace(0, 1, n_bins + 1)[1:-1]
    edges = np.quantile(values, qs)
    return np.unique(edges)


def equal_width_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges splitting [min, max] into *n_bins* equal intervals."""
    if values.size == 0:
        return np.asarray([], dtype=np.float64)
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        return np.asarray([], dtype=np.float64)
    return np.linspace(lo, hi, n_bins + 1)[1:-1]


class Discretizer:
    """Fitted discretiser for one feature: values → bin labels.

    ``fit`` learns the special values and edges; ``transform_codes`` maps
    a value array to a small-integer code array (``-1`` for NaN) indexing
    into :meth:`code_labels` — the columnar hot path the encoder consumes
    with a single gather per feature.  ``transform`` decodes the same
    codes into the legacy ``list[str | None]`` labels, and
    ``transform_rowwise`` keeps the original per-row loop as the
    equivalence oracle.  The fitted state is inspectable (``edges``,
    ``std_value``, ``bin_ranges()``) so a system operator can translate
    "Runtime = Bin1" back into seconds — the interpretability contract of
    the paper.
    """

    def __init__(self, spec: BinningSpec = BinningSpec()):
        self.spec = spec
        self.edges: np.ndarray | None = None
        self.std_value: float | None = None
        self._fit_min: float | None = None
        self._fit_max: float | None = None
        self._code_labels: list[str] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.edges is not None

    def fit(self, values: Sequence[float] | np.ndarray) -> "Discretizer":
        """Learn special bins and quantile/width edges from *values*."""
        arr = np.asarray(values, dtype=np.float64)
        arr = arr[~np.isnan(arr)]
        spec = self.spec

        remaining = arr
        if spec.zero_label is not None:
            remaining = remaining[remaining != 0.0]

        self.std_value = None
        if spec.std_label is not None and remaining.size:
            uniq, counts = np.unique(remaining, return_counts=True)
            mode_idx = int(np.argmax(counts))
            if counts[mode_idx] / remaining.size >= spec.std_threshold:
                self.std_value = float(uniq[mode_idx])
                remaining = remaining[remaining != self.std_value]

        if remaining.size:
            self._fit_min = float(remaining.min())
            self._fit_max = float(remaining.max())
        else:
            self._fit_min = self._fit_max = None

        if spec.scheme == "equal_frequency":
            if remaining.size:
                qs = np.linspace(0, 1, spec.n_bins + 1)[1:-1]
                # keep the *full* quantile edge list (no dedupe): when ties
                # collapse quantiles (e.g. median queue delay = 0), bins keep
                # their paper semantics — BinK is always the K-th quantile
                # interval, and collapsed bins are simply never assigned
                edges = np.quantile(remaining, qs)
            else:
                edges = np.asarray([], dtype=np.float64)
        else:
            edges = equal_width_edges(remaining, spec.n_bins)
        self.edges = edges
        labels = [f"Bin{k + 1}" for k in range(len(edges) + 1)]
        if spec.zero_label is not None:
            labels.append(spec.zero_label)
        if self.std_value is not None and spec.std_label is not None:
            labels.append(spec.std_label)
        self._code_labels = labels
        return self

    def code_labels(self) -> list[str]:
        """Label table indexed by the codes of :meth:`transform_codes`.

        Regular bins occupy codes ``0 .. n_regular_bins()-1``; the zero
        and Std specials (when active) are reserved at the tail, and
        ``-1`` marks missing.
        """
        if self._code_labels is None:
            raise RuntimeError("Discretizer not fitted")
        return self._code_labels

    def transform_codes(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Map values to integer bin codes (``-1`` for NaN) — the hot path.

        Overlays are applied in ascending precedence so the special bins
        always win: raw ``searchsorted`` bins, then the fit-minimum clamp
        (the minimum belongs to Bin1 even when heavy ties collapse low
        quantile edges onto it and ``searchsorted`` lands it past them),
        then the Std bin, then the zero bin — an exact zero gets the zero
        label even when it is also the fitted minimum or the Std value —
        and finally NaN → ``-1``.
        """
        if not self.is_fitted:
            raise RuntimeError("Discretizer.transform_codes called before fit")
        arr = np.asarray(values, dtype=np.float64)
        spec = self.spec
        labels = self.code_labels()
        dtype = np.int8 if len(labels) <= np.iinfo(np.int8).max else np.int16
        # right=True ⇒ value == edge goes to the *upper* bin, matching the
        # paper's half-open [lower, upper) intervals with max included
        codes = np.searchsorted(self.edges, arr, side="right").astype(dtype)
        if self._fit_min is not None:
            codes[arr == self._fit_min] = 0
        n_regular = len(self.edges) + 1
        if self.std_value is not None and spec.std_label is not None:
            codes[arr == self.std_value] = labels.index(spec.std_label)
        if spec.zero_label is not None:
            codes[arr == 0.0] = n_regular  # zero is always the first special
        codes[np.isnan(arr)] = -1
        return codes

    def transform(self, values: Sequence[float] | np.ndarray) -> list[str | None]:
        """Map values to labels: zero/std specials, then "Bin1".."BinK"."""
        codes = self.transform_codes(values)
        lut = np.asarray([*self.code_labels(), None], dtype=object)
        return list(lut[codes])  # code -1 indexes the trailing None

    def transform_rowwise(
        self, values: Sequence[float] | np.ndarray
    ) -> list[str | None]:
        """The original per-row labelling loop, kept as the oracle for
        equivalence tests and the legacy encoder path."""
        if not self.is_fitted:
            raise RuntimeError("Discretizer.transform_rowwise called before fit")
        arr = np.asarray(values, dtype=np.float64)
        spec = self.spec
        bin_idx = np.searchsorted(self.edges, arr, side="right")
        if self._fit_min is not None:
            bin_idx[arr == self._fit_min] = 0
        labels: list[str | None] = []
        for value, idx in zip(arr, bin_idx):
            if np.isnan(value):
                labels.append(None)
            elif spec.zero_label is not None and value == 0.0:
                labels.append(spec.zero_label)
            elif self.std_value is not None and value == self.std_value:
                labels.append(spec.std_label)
            else:
                labels.append(f"Bin{int(idx) + 1}")
        return labels

    def fit_transform(self, values: Sequence[float] | np.ndarray) -> list[str | None]:
        return self.fit(values).transform(values)

    def n_regular_bins(self) -> int:
        """Number of Bin labels the fitted edges can produce."""
        if not self.is_fitted:
            raise RuntimeError("Discretizer not fitted")
        return len(self.edges) + 1

    def bin_ranges(self) -> dict[str, tuple[float, float]]:
        """Label → (lower, upper) value range, for report footnotes.

        Regular bins use the fitted min/max of the non-special values as
        the outermost bounds; special bins map to degenerate ranges.
        """
        if not self.is_fitted:
            raise RuntimeError("Discretizer not fitted")
        out: dict[str, tuple[float, float]] = {}
        if self.spec.zero_label is not None:
            out[self.spec.zero_label] = (0.0, 0.0)
        if self.std_value is not None and self.spec.std_label is not None:
            out[self.spec.std_label] = (self.std_value, self.std_value)
        if self._fit_min is None:
            return out
        bounds = [self._fit_min, *self.edges.tolist(), self._fit_max]
        for k in range(len(bounds) - 1):
            out[f"Bin{k + 1}"] = (bounds[k], bounds[k + 1])
        return out
