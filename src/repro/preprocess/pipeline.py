"""The end-to-end preprocessing pipeline of Sec. III-E.

:class:`TracePreprocessor` composes the four preprocessing stages the
paper applies to every trace before mining:

1. **semantic/categorical aggregation** — model families, activity tiers;
2. **discretisation** — quartile (or equal-width) binning with zero/Std
   special bins, via :class:`TransactionEncoder` feature specs;
3. **one-hot transactional encoding**;
4. **skew filtering** — drop items present in more than 80 % of jobs.

The result bundles the transaction database with the provenance needed
for interpretation (bin ranges, dropped items, tier assignments).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.items import Item
from ..core.transactions import TransactionDatabase
from ..dataframe import CategoricalColumn, ColumnTable
from .aggregation import ActivityTiers, apply_semantic_grouping, compute_activity_tiers
from .encoding import FeatureSpec, TransactionEncoder
from .skew import drop_skewed_items

__all__ = ["TierSpec", "GroupingSpec", "PreprocessResult", "TracePreprocessor"]


@dataclass(frozen=True, slots=True)
class TierSpec:
    """Derive an activity-tier column from a high-cardinality key column."""

    column: str
    output_column: str
    top_share: float = 0.25
    bottom_share: float = 0.25
    frequent_label: str = "Freq"
    moderate_label: str = "Moderate"
    rare_label: str = "Rare"


@dataclass(frozen=True, slots=True)
class GroupingSpec:
    """Apply a semantic label mapping to a categorical column in place."""

    column: str
    mapping: dict[str, str] | None = None  # None → the paper's model families


@dataclass(slots=True)
class PreprocessResult:
    """Everything a case study needs from preprocessing."""

    database: TransactionDatabase
    table: ColumnTable
    dropped_items: list[Item]
    bin_ranges: dict[str, dict[str, tuple[float, float]]]
    tiers: dict[str, ActivityTiers]

    def summary(self) -> str:
        return (
            f"PreprocessResult(n_transactions={len(self.database)}, "
            f"n_items={self.database.n_items}, "
            f"dropped_skewed={len(self.dropped_items)})"
        )


class TracePreprocessor:
    """Configurable Sec. III-E pipeline: job table → transaction database."""

    def __init__(
        self,
        features: list[FeatureSpec],
        tier_specs: list[TierSpec] | None = None,
        grouping_specs: list[GroupingSpec] | None = None,
        skew_max_share: float = 0.8,
    ):
        if not features:
            raise ValueError("at least one FeatureSpec is required")
        self.features = features
        self.tier_specs = tier_specs or []
        self.grouping_specs = grouping_specs or []
        self.skew_max_share = skew_max_share

    def run(self, table: ColumnTable) -> PreprocessResult:
        """Execute all stages on *table*."""
        working = table.copy()

        # 1a. semantic grouping
        for gspec in self.grouping_specs:
            column = working[gspec.column]
            if not isinstance(column, CategoricalColumn):
                raise TypeError(f"grouping column {gspec.column!r} is not categorical")
            working.add_column(gspec.column, apply_semantic_grouping(column, gspec.mapping))

        # 1b. activity tiers
        tiers: dict[str, ActivityTiers] = {}
        for tspec in self.tier_specs:
            fitted = compute_activity_tiers(
                working,
                tspec.column,
                top_share=tspec.top_share,
                bottom_share=tspec.bottom_share,
                frequent_label=tspec.frequent_label,
                moderate_label=tspec.moderate_label,
                rare_label=tspec.rare_label,
            )
            tiers[tspec.column] = fitted
            source = working[tspec.column]
            if not isinstance(source, CategoricalColumn):
                raise TypeError(f"tier column {tspec.column!r} is not categorical")
            labels = [fitted.tier_of(v) for v in source.to_list()]
            working.add_column(tspec.output_column, labels)

        # 2+3. binning and one-hot encoding
        encoder = TransactionEncoder(self.features)
        db = encoder.fit_transform(working)

        # 4. skew filter
        db, dropped = drop_skewed_items(db, self.skew_max_share)

        return PreprocessResult(
            database=db,
            table=working,
            dropped_items=dropped,
            bin_ranges=encoder.bin_ranges(),
            tiers=tiers,
        )
