"""The end-to-end preprocessing pipeline of Sec. III-E.

:class:`TracePreprocessor` composes the four preprocessing stages the
paper applies to every trace before mining:

1. **semantic/categorical aggregation** — model families, activity tiers;
2. **discretisation** — quartile (or equal-width) binning with zero/Std
   special bins, via :class:`TransactionEncoder` feature specs;
3. **one-hot transactional encoding**;
4. **skew filtering** — drop items present in more than 80 % of jobs.

The result bundles the transaction database with the provenance needed
for interpretation (bin ranges, dropped items, tier assignments).

Two performance layers sit on top of the stages (DESIGN.md §9):

* every stage runs through the columnar fast paths (integer-coded
  binning, code→id gathers, per-category tier remaps) and is timed into
  the shared kernel ledger (``ingest-*`` counters, rendered by
  ``--profile``); :meth:`TracePreprocessor.run_legacy` keeps the per-row
  reference implementation as the equivalence oracle;
* results are memoised in a content-addressed LRU cache keyed by table
  fingerprint × pipeline spec — the same pattern as the engine's itemset
  cache — so repeated case studies over the same trace content preprocess
  once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitmap import kernel_timer
from ..core.items import Item
from ..core.transactions import TransactionDatabase
from ..dataframe import CategoricalColumn, ColumnTable
from ..engine.cache import CacheStats, LRUCache
from .aggregation import ActivityTiers, apply_semantic_grouping, compute_activity_tiers
from .encoding import FeatureSpec, TransactionEncoder
from .skew import drop_skewed_items

__all__ = [
    "TierSpec",
    "GroupingSpec",
    "PreprocessResult",
    "TracePreprocessor",
    "preprocess_cache_stats",
    "clear_preprocess_cache",
]

#: preprocess results hold the working table and database, so keep the
#: bound tighter than the itemset cache's
_CACHE_MAX_ENTRIES = 8

#: process-wide result cache: (table fingerprint, spec key) → result
_RESULT_CACHE = LRUCache(max_entries=_CACHE_MAX_ENTRIES)


def preprocess_cache_stats() -> CacheStats:
    """Lifetime counters of the shared preprocess result cache."""
    return _RESULT_CACHE.stats()


def clear_preprocess_cache() -> None:
    """Drop all cached preprocess results (counters are preserved)."""
    _RESULT_CACHE.clear()


@dataclass(frozen=True, slots=True)
class TierSpec:
    """Derive an activity-tier column from a high-cardinality key column."""

    column: str
    output_column: str
    top_share: float = 0.25
    bottom_share: float = 0.25
    frequent_label: str = "Freq"
    moderate_label: str = "Moderate"
    rare_label: str = "Rare"


@dataclass(frozen=True, slots=True)
class GroupingSpec:
    """Apply a semantic label mapping to a categorical column in place."""

    column: str
    mapping: dict[str, str] | None = None  # None → the paper's model families


@dataclass(slots=True)
class PreprocessResult:
    """Everything a case study needs from preprocessing."""

    database: TransactionDatabase
    table: ColumnTable
    dropped_items: list[Item]
    bin_ranges: dict[str, dict[str, tuple[float, float]]]
    tiers: dict[str, ActivityTiers]

    def summary(self) -> str:
        return (
            f"PreprocessResult(n_transactions={len(self.database)}, "
            f"n_items={self.database.n_items}, "
            f"dropped_skewed={len(self.dropped_items)})"
        )


def _tier_column(source: CategoricalColumn, fitted: ActivityTiers) -> CategoricalColumn:
    """Vectorised tier labelling: one ``tier_of`` call per *category*.

    The per-row reference path decodes every row to a string, looks its
    tier up, and re-interns the labels in row order.  Here the lookup
    happens once per category code and rows are remapped with a gather —
    while reproducing the reference's first-appearance (row-order)
    category ordering exactly, because the encoder interns items in
    category order and the database fingerprint depends on it.
    """
    cat_tiers = [fitted.tier_of(cat) for cat in source.categories]
    tier_labels = list(dict.fromkeys(cat_tiers))
    tier_index = {t: i for i, t in enumerate(tier_labels)}
    cat_to_tier = np.asarray([tier_index[t] for t in cat_tiers], dtype=np.int32)
    mapped = np.where(
        source.codes >= 0,
        cat_to_tier[np.clip(source.codes, 0, None)],
        np.int32(-1),
    )
    # order the tier categories by first appearance in row order
    present, first_rows = np.unique(mapped, return_index=True)
    keep = present >= 0
    present, first_rows = present[keep], first_rows[keep]
    order = present[np.argsort(first_rows)]
    final_code = np.full(len(tier_labels), -1, dtype=np.int32)
    final_code[order] = np.arange(order.size, dtype=np.int32)
    codes = np.where(mapped >= 0, final_code[np.clip(mapped, 0, None)], np.int32(-1))
    return CategoricalColumn(codes, [tier_labels[i] for i in order])


class TracePreprocessor:
    """Configurable Sec. III-E pipeline: job table → transaction database."""

    def __init__(
        self,
        features: list[FeatureSpec],
        tier_specs: list[TierSpec] | None = None,
        grouping_specs: list[GroupingSpec] | None = None,
        skew_max_share: float = 0.8,
    ):
        if not features:
            raise ValueError("at least one FeatureSpec is required")
        self.features = features
        self.tier_specs = tier_specs or []
        self.grouping_specs = grouping_specs or []
        self.skew_max_share = skew_max_share

    # -- caching ------------------------------------------------------------------
    def spec_key(self) -> tuple:
        """Deterministic, hashable digest of the full pipeline configuration."""
        return (
            tuple(
                (
                    s.column,
                    s.item_feature,
                    s.kind,
                    (
                        s.binning.scheme,
                        s.binning.n_bins,
                        s.binning.zero_label,
                        s.binning.std_label,
                        s.binning.std_threshold,
                    ),
                    s.true_label,
                )
                for s in self.features
            ),
            tuple(
                (
                    t.column,
                    t.output_column,
                    t.top_share,
                    t.bottom_share,
                    t.frequent_label,
                    t.moderate_label,
                    t.rare_label,
                )
                for t in self.tier_specs
            ),
            tuple(
                (
                    g.column,
                    tuple(sorted(g.mapping.items())) if g.mapping is not None else None,
                )
                for g in self.grouping_specs
            ),
            self.skew_max_share,
        )

    # -- execution ----------------------------------------------------------------
    def run(self, table: ColumnTable, *, use_cache: bool = True) -> PreprocessResult:
        """Execute all stages on *table* (cached by content by default)."""
        result, _ = self.run_with_status(table, use_cache=use_cache)
        return result

    def run_with_status(
        self, table: ColumnTable, *, use_cache: bool = True
    ) -> tuple[PreprocessResult, str]:
        """Like :meth:`run`, also reporting ``"hit"``/``"miss"``/``"off"``.

        Cached results are shared objects — treat the returned table and
        database as immutable, as everywhere else in the pipeline.
        """
        if not use_cache:
            return self._run_stages(table), "off"
        key = (table.fingerprint(), self.spec_key())
        cached = _RESULT_CACHE.get(key)
        if cached is not None:
            return cached, "hit"
        result = self._run_stages(table)
        _RESULT_CACHE.put(key, result)
        return result, "miss"

    def _run_stages(self, table: ColumnTable) -> PreprocessResult:
        working = table.copy()

        # 1a. semantic grouping
        with kernel_timer("ingest-tiers"):
            for gspec in self.grouping_specs:
                column = working[gspec.column]
                if not isinstance(column, CategoricalColumn):
                    raise TypeError(
                        f"grouping column {gspec.column!r} is not categorical"
                    )
                working.add_column(
                    gspec.column, apply_semantic_grouping(column, gspec.mapping)
                )

            # 1b. activity tiers
            tiers: dict[str, ActivityTiers] = {}
            for tspec in self.tier_specs:
                if tspec.output_column in working:
                    raise ValueError(
                        f"tier output column {tspec.output_column!r} already exists "
                        f"in the table; pick a distinct TierSpec.output_column"
                    )
                fitted = compute_activity_tiers(
                    working,
                    tspec.column,
                    top_share=tspec.top_share,
                    bottom_share=tspec.bottom_share,
                    frequent_label=tspec.frequent_label,
                    moderate_label=tspec.moderate_label,
                    rare_label=tspec.rare_label,
                )
                tiers[tspec.column] = fitted
                source = working[tspec.column]
                if not isinstance(source, CategoricalColumn):
                    raise TypeError(f"tier column {tspec.column!r} is not categorical")
                working.add_column(tspec.output_column, _tier_column(source, fitted))

        # 2+3. binning and one-hot encoding (ingest-bin / ingest-encode
        # kernels are recorded inside the encoder)
        encoder = TransactionEncoder(self.features)
        db = encoder.fit_transform(working)

        # 4. skew filter
        with kernel_timer("ingest-skew"):
            db, dropped = drop_skewed_items(db, self.skew_max_share)

        return PreprocessResult(
            database=db,
            table=working,
            dropped_items=dropped,
            bin_ranges=encoder.bin_ranges(),
            tiers=tiers,
        )

    def run_legacy(self, table: ColumnTable) -> PreprocessResult:
        """The pre-columnar pipeline: per-row tier lookups and labelling.

        Uncached and untimed — the oracle the columnar path is asserted
        byte-identical against (same database indptr, indices, vocabulary
        order and fingerprint) in tests and in
        ``bench_preprocess_throughput.py --check-only``.
        """
        working = table.copy()

        for gspec in self.grouping_specs:
            column = working[gspec.column]
            if not isinstance(column, CategoricalColumn):
                raise TypeError(f"grouping column {gspec.column!r} is not categorical")
            working.add_column(
                gspec.column, apply_semantic_grouping(column, gspec.mapping)
            )

        tiers: dict[str, ActivityTiers] = {}
        for tspec in self.tier_specs:
            fitted = compute_activity_tiers(
                working,
                tspec.column,
                top_share=tspec.top_share,
                bottom_share=tspec.bottom_share,
                frequent_label=tspec.frequent_label,
                moderate_label=tspec.moderate_label,
                rare_label=tspec.rare_label,
            )
            tiers[tspec.column] = fitted
            source = working[tspec.column]
            if not isinstance(source, CategoricalColumn):
                raise TypeError(f"tier column {tspec.column!r} is not categorical")
            labels = [fitted.tier_of(v) for v in source.to_list()]
            working.add_column(tspec.output_column, labels)

        encoder = TransactionEncoder(self.features)
        encoder.fit(working)
        db = encoder.transform_legacy(working)

        db, dropped = drop_skewed_items(db, self.skew_max_share)

        return PreprocessResult(
            database=db,
            table=working,
            dropped_items=dropped,
            bin_ranges=encoder.bin_ranges(),
            tiers=tiers,
        )
