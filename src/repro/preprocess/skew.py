"""Skew filtering (Sec. III-E, third paragraph).

Items present in almost every transaction produce floods of uninteresting
frequent itemsets ("if 90% of jobs have requested a single GPU … most
frequent itemsets would include the item 'single GPU'").  The paper drops
items whose share exceeds 80 %; the complementary rare side is handled by
the min-support threshold itself.
"""

from __future__ import annotations

import numpy as np

from ..core.items import Item
from ..core.transactions import TransactionDatabase

__all__ = ["drop_skewed_items", "skewed_item_ids"]


def skewed_item_ids(db: TransactionDatabase, max_share: float = 0.8) -> list[int]:
    """Ids of items present in more than *max_share* of transactions."""
    if not 0.0 < max_share <= 1.0:
        raise ValueError("max_share must be in (0, 1]")
    n = len(db)
    if n == 0:
        return []
    counts = db.item_support_counts()
    return [int(i) for i in np.flatnonzero(counts / n > max_share)]


def drop_skewed_items(
    db: TransactionDatabase, max_share: float = 0.8
) -> tuple[TransactionDatabase, list[Item]]:
    """Remove over-represented items; returns (filtered db, dropped items).

    Transactions are kept (possibly emptied) so |D| — and therefore every
    support value — is unchanged.
    """
    skewed = set(skewed_item_ids(db, max_share))
    if not skewed:
        return db, []
    keep = [i for i in range(db.n_items) if i not in skewed]
    dropped = [db.vocabulary.item_of(i) for i in sorted(skewed)]
    return db.restrict_items(keep), dropped
