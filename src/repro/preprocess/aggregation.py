"""Categorical aggregation (Sec. III-E, last paragraph).

Two transformations reduce the cardinality of categorical features so
their values reach minable support:

* **semantic grouping** — map model names into families ("resnet", "vgg",
  "inception" → "CV"; "bert", "nmt", "xlnet" → "NLP");
* **activity tiers** — rank users (or job groups) by submission count and
  label the most active ones covering the top share of jobs as
  "frequent", the least active tail as "rare", the rest "moderate".

The tier boundaries follow the paper: "grouped the most active users
responsible for 25% of the jobs in the trace as 'frequent user', and the
least active users" (the symmetric bottom-25 % cut).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataframe import CategoricalColumn, ColumnTable, value_counts

__all__ = [
    "MODEL_FAMILIES",
    "ActivityTiers",
    "compute_activity_tiers",
    "apply_semantic_grouping",
    "group_rare_categories",
]

#: the paper's example model-name → family mapping for the PAI trace
MODEL_FAMILIES: dict[str, str] = {
    "resnet": "CV",
    "vgg": "CV",
    "inception": "CV",
    "bert": "NLP",
    "nmt": "NLP",
    "xlnet": "NLP",
    "ctr": "RecSys",
    "din": "RecSys",
    "dien": "RecSys",
    "graphsage": "GNN",
    "gcn": "GNN",
    "ppo": "RL",
    "dqn": "RL",
}


@dataclass(frozen=True, slots=True)
class ActivityTiers:
    """Fitted mapping of category label → activity tier label."""

    tiers: dict[str, str]
    frequent_label: str
    moderate_label: str
    rare_label: str

    def tier_of(self, label: str | None) -> str | None:
        """Tier of one category; unseen labels count as rare, None stays None."""
        if label is None:
            return None
        return self.tiers.get(label, self.rare_label)

    def counts(self) -> dict[str, int]:
        """Number of categories assigned to each tier."""
        out = {self.frequent_label: 0, self.moderate_label: 0, self.rare_label: 0}
        for tier in self.tiers.values():
            out[tier] += 1
        return out


def compute_activity_tiers(
    table: ColumnTable,
    key: str,
    top_share: float = 0.25,
    bottom_share: float = 0.25,
    frequent_label: str = "Freq",
    moderate_label: str = "Moderate",
    rare_label: str = "Rare",
) -> ActivityTiers:
    """Rank categories of *key* by job count and split into three tiers.

    The frequent tier is the shortest prefix of the descending count
    ranking whose cumulative share reaches *top_share*; the rare tier is
    the analogous suffix; everything else is moderate.  A category can
    never be both (frequent wins), so the tiers partition the labels.
    """
    if not 0.0 < top_share < 1.0 or not 0.0 < bottom_share < 1.0:
        raise ValueError("shares must be in (0, 1)")
    ranked = value_counts(table, key)
    total = sum(count for _, count in ranked)
    tiers: dict[str, str] = {}
    if total == 0:
        return ActivityTiers(tiers, frequent_label, moderate_label, rare_label)

    # frequent: prefix reaching top_share of jobs
    cum = 0
    frequent_cut = 0
    for i, (_, count) in enumerate(ranked):
        cum += count
        frequent_cut = i + 1
        if cum / total >= top_share:
            break

    # rare: suffix reaching bottom_share, not crossing the frequent prefix
    cum = 0
    rare_start = len(ranked)
    for i in range(len(ranked) - 1, frequent_cut - 1, -1):
        cum += ranked[i][1]
        rare_start = i
        if cum / total >= bottom_share:
            break

    for i, (label, _) in enumerate(ranked):
        if i < frequent_cut:
            tiers[str(label)] = frequent_label
        elif i >= rare_start:
            tiers[str(label)] = rare_label
        else:
            tiers[str(label)] = moderate_label
    return ActivityTiers(tiers, frequent_label, moderate_label, rare_label)


def apply_semantic_grouping(
    column: CategoricalColumn, mapping: dict[str, str] | None = None
) -> CategoricalColumn:
    """Relabel categories through a semantic family mapping.

    Matching is case-insensitive on the category name; unmapped labels
    pass through unchanged.
    """
    mapping = MODEL_FAMILIES if mapping is None else mapping
    lowered = {k.lower(): v for k, v in mapping.items()}
    effective = {
        cat: lowered[cat.lower()] for cat in column.categories if cat.lower() in lowered
    }
    return column.map_categories(effective)


def group_rare_categories(
    column: CategoricalColumn, min_share: float, other_label: str = "Other"
) -> CategoricalColumn:
    """Collapse categories whose share is below *min_share* into one label.

    Complements :func:`compute_activity_tiers` for features where only a
    handful of values matter (e.g. GPU type: keep T4, fold P100/V100 into
    "NoneT4" is done upstream; this generic fold handles the long tail).
    """
    if not 0.0 <= min_share <= 1.0:
        raise ValueError("min_share must be in [0, 1]")
    n = len(column)
    if n == 0:
        return column
    counts = column.value_counts()
    mapping = {
        cat: other_label for cat, cnt in counts.items() if cnt / n < min_share
    }
    return column.map_categories(mapping)
