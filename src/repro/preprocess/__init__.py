"""Trace preprocessing (Sec. III-E): job tables → transaction databases.

Stages: semantic/categorical aggregation → equal-frequency binning with
zero/Std special bins → one-hot transactional encoding → skew filtering.
"""

from .aggregation import (
    MODEL_FAMILIES,
    ActivityTiers,
    apply_semantic_grouping,
    compute_activity_tiers,
    group_rare_categories,
)
from .binning import BinningSpec, Discretizer, equal_frequency_edges, equal_width_edges
from .encoding import FeatureSpec, TransactionEncoder
from .pipeline import (
    GroupingSpec,
    PreprocessResult,
    TierSpec,
    TracePreprocessor,
    clear_preprocess_cache,
    preprocess_cache_stats,
)
from .skew import drop_skewed_items, skewed_item_ids

__all__ = [
    "BinningSpec",
    "Discretizer",
    "equal_frequency_edges",
    "equal_width_edges",
    "FeatureSpec",
    "TransactionEncoder",
    "MODEL_FAMILIES",
    "ActivityTiers",
    "compute_activity_tiers",
    "apply_semantic_grouping",
    "group_rare_categories",
    "drop_skewed_items",
    "skewed_item_ids",
    "TierSpec",
    "GroupingSpec",
    "PreprocessResult",
    "TracePreprocessor",
    "preprocess_cache_stats",
    "clear_preprocess_cache",
]
