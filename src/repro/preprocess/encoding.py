"""Transactional (one-hot) encoding of a job table (Sec. III-E).

:class:`TransactionEncoder` turns a :class:`~repro.dataframe.ColumnTable`
into a :class:`~repro.core.transactions.TransactionDatabase`: every row
becomes one transaction whose items are feature/value pairs —
categorical values directly, continuous values through a fitted
:class:`~repro.preprocess.binning.Discretizer`, booleans as presence
flags.

The encoder is fit/transform-shaped so the same fitted bin edges can be
applied to a hold-out slice of the trace (used by the failure-prediction
takeaway experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..core.bitmap import kernel_timer
from ..core.items import Item, ItemVocabulary
from ..core.transactions import TransactionDatabase
from ..dataframe import (
    BooleanColumn,
    CategoricalColumn,
    ColumnTable,
    NumericColumn,
)
from .binning import BinningSpec, Discretizer

__all__ = ["FeatureSpec", "TransactionEncoder"]

_ABSENT = np.int32(np.iinfo(np.int32).max)


@dataclass(frozen=True, slots=True)
class FeatureSpec:
    """How one table column becomes items.

    ``kind="auto"`` resolves from the column type: numeric → binned,
    categorical → one item per value, boolean → flag.  ``item_feature``
    overrides the display name ("gpu_sm_util" column → "SM Util" items).

    ``kind="label"`` encodes a categorical column whose values are already
    self-describing item names — each value becomes a bare flag item
    ("Freq User", "Tensorflow"), matching how the paper renders such
    attributes in its rule tables.
    """

    column: str
    item_feature: str | None = None
    kind: Literal["auto", "numeric", "categorical", "flag", "label"] = "auto"
    binning: BinningSpec = field(default_factory=BinningSpec)
    #: for flags: item text used when the value is True (default: feature name)
    true_label: str | None = None

    @property
    def feature_name(self) -> str:
        return self.item_feature if self.item_feature is not None else self.column


class TransactionEncoder:
    """Fit on a job table, transform rows into transactions.

    Without explicit *specs*, every column is encoded under its own name
    with default quartile binning.  Fitted discretisers are exposed via
    ``discretizers`` / :meth:`bin_ranges` so bin labels remain
    interpretable.
    """

    def __init__(self, specs: list[FeatureSpec] | None = None):
        self.specs = specs
        self.discretizers: dict[str, Discretizer] = {}
        self._resolved: list[tuple[FeatureSpec, str]] = []  # (spec, resolved kind)
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # -- fitting -----------------------------------------------------------------
    def fit(self, table: ColumnTable) -> "TransactionEncoder":
        specs = self.specs
        if specs is None:
            specs = [FeatureSpec(column=name) for name in table.column_names]
        self._resolved = []
        self.discretizers = {}
        seen_features: set[str] = set()
        for spec in specs:
            column = table[spec.column]
            kind = spec.kind
            if kind == "auto":
                if isinstance(column, NumericColumn):
                    kind = "numeric"
                elif isinstance(column, CategoricalColumn):
                    kind = "categorical"
                elif isinstance(column, BooleanColumn):
                    kind = "flag"
                else:  # pragma: no cover
                    raise TypeError(f"cannot auto-encode column {spec.column!r}")
            name = spec.feature_name
            if kind != "label":
                # label columns mint one feature per value; uniqueness is
                # enforced per item at transform time instead
                if name in seen_features:
                    raise ValueError(f"duplicate item feature name {name!r}")
                seen_features.add(name)
            if kind == "numeric":
                if not isinstance(column, NumericColumn):
                    raise TypeError(f"column {spec.column!r} is not numeric")
                with kernel_timer("ingest-bin"):
                    self.discretizers[spec.column] = Discretizer(spec.binning).fit(
                        column.values
                    )
            self._resolved.append((spec, kind))
        self._fitted = True
        return self

    # -- transform ----------------------------------------------------------------
    def transform(
        self,
        table: ColumnTable,
        vocabulary: ItemVocabulary | None = None,
    ) -> TransactionDatabase:
        """Encode *table* rows into a transaction database.

        Missing values simply contribute no item — a job with no GPU
        telemetry still forms a transaction from its scheduler features.

        Continuous features go through the integer-coded fast path: the
        discretiser emits a bin-code array, codes map to vocab ids with
        one gather per feature, and the CSR arrays are written directly —
        no per-row Python.  Item interning order (and hence the database
        fingerprint) is identical to :meth:`transform_legacy`.
        """
        if not self._fitted:
            raise RuntimeError("TransactionEncoder.transform called before fit")
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        n_rows = len(table)
        with kernel_timer("ingest-encode"):
            id_columns = [
                self._encode_feature(spec, kind, table, vocab, n_rows)
                for spec, kind in self._resolved
            ]
            return self._assemble(id_columns, n_rows, vocab)

    def transform_legacy(
        self,
        table: ColumnTable,
        vocabulary: ItemVocabulary | None = None,
    ) -> TransactionDatabase:
        """The pre-columnar encode path (per-row numeric labelling).

        Kept as the oracle for equivalence tests and benchmarks: the
        output must be byte-identical to :meth:`transform` — same indptr,
        indices, vocabulary order and fingerprint.
        """
        if not self._fitted:
            raise RuntimeError("TransactionEncoder.transform_legacy called before fit")
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        n_rows = len(table)
        id_columns = [
            self._encode_feature(spec, kind, table, vocab, n_rows, numeric_rowwise=True)
            for spec, kind in self._resolved
        ]
        return self._assemble(id_columns, n_rows, vocab)

    def _encode_feature(
        self,
        spec: FeatureSpec,
        kind: str,
        table: ColumnTable,
        vocab: ItemVocabulary,
        n_rows: int,
        numeric_rowwise: bool = False,
    ) -> np.ndarray:
        """Per-row item ids (``_ABSENT`` for none) contributed by one spec."""
        column = table[spec.column]
        feature = spec.feature_name
        ids = np.full(n_rows, _ABSENT, dtype=np.int32)
        if kind in ("categorical", "label"):
            if not isinstance(column, CategoricalColumn):
                raise TypeError(f"column {spec.column!r} is not categorical")
            if kind == "categorical":
                items = [Item(feature, cat) for cat in column.categories]
            else:
                items = [Item.flag(cat) for cat in column.categories]
            code_to_id = np.asarray(
                [vocab.intern(item) for item in items], dtype=np.int32
            )
            present = column.codes >= 0
            if code_to_id.size:
                ids[present] = code_to_id[column.codes[present]]
        elif kind == "numeric":
            if not isinstance(column, NumericColumn):
                raise TypeError(f"column {spec.column!r} is not numeric")
            disc = self.discretizers[spec.column]
            if numeric_rowwise:
                labels = disc.transform_rowwise(column.values)
                label_ids = {
                    label: vocab.intern(Item(feature, label))
                    for label in sorted({l for l in labels if l is not None})
                }
                for row, label in enumerate(labels):
                    if label is not None:
                        ids[row] = label_ids[label]
            else:
                codes = disc.transform_codes(column.values)
                code_labels = disc.code_labels()
                present_codes = np.unique(codes)
                present_codes = present_codes[present_codes >= 0]
                # intern in sorted-label order over the codes *present* in
                # the data — the exact vocabulary order of the legacy path
                code_to_id = np.full(len(code_labels), _ABSENT, dtype=np.int32)
                for code in sorted(
                    present_codes.tolist(), key=lambda c: code_labels[c]
                ):
                    code_to_id[code] = vocab.intern(Item(feature, code_labels[code]))
                present = codes >= 0
                ids[present] = code_to_id[codes[present]]
        elif kind == "flag":
            if isinstance(column, BooleanColumn):
                truth = column.values
            elif isinstance(column, NumericColumn):
                truth = (column.values == 1.0) & ~np.isnan(column.values)
            else:
                raise TypeError(f"column {spec.column!r} cannot be a flag")
            label = spec.true_label if spec.true_label is not None else feature
            item_id = vocab.intern(Item.flag(label))
            ids[truth] = item_id
        else:  # pragma: no cover
            raise AssertionError(kind)
        return ids

    @staticmethod
    def _assemble(
        id_columns: list[np.ndarray], n_rows: int, vocab: ItemVocabulary
    ) -> TransactionDatabase:
        """Stack per-feature id columns into a row-sorted CSR database."""
        if not id_columns:
            return TransactionDatabase(
                vocab,
                np.zeros(n_rows + 1, dtype=np.int64),
                np.asarray([], dtype=np.int32),
            )
        # rows × features id matrix → CSR with per-row sorted ids
        matrix = np.stack(id_columns, axis=1)
        present = matrix != _ABSENT
        counts = present.sum(axis=1)
        sorted_rows = np.sort(matrix, axis=1)
        flat = sorted_rows[sorted_rows != _ABSENT]
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return TransactionDatabase(vocab, indptr, flat.astype(np.int32))

    def fit_transform(
        self, table: ColumnTable, vocabulary: ItemVocabulary | None = None
    ) -> TransactionDatabase:
        return self.fit(table).transform(table, vocabulary)

    # -- interpretability ----------------------------------------------------------
    def bin_ranges(self) -> dict[str, dict[str, tuple[float, float]]]:
        """column name → (bin label → numeric range) for every fitted feature."""
        return {
            column: disc.bin_ranges() for column, disc in self.discretizers.items()
        }
