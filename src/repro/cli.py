"""Command-line interface: the workflow for operators without Python.

Subcommands::

    python -m repro traces
        list the available trace generators

    python -m repro generate --trace pai --n-jobs 5000 --output pai.csv
        generate a synthetic trace and save it as CSV

    python -m repro analyze --trace supercloud --keyword "Failed" \
            [--n-jobs 5000 | --input trace.csv] [--min-support 0.05] \
            [--backend process --workers 4] [--no-cache] …
        run the full workflow for one keyword and print the rule table
        plus an engine stats footer (per-stage timing, cache status)

    python -m repro casestudy --trace philly --n-jobs 5000
        run every Sec. IV study for one trace

    python -m repro mine-rulebook --trace pai --output pai.rulebook.jsonl
        run the analysis and persist the kept rules as a RuleBook

    python -m repro serve --rulebook pai.rulebook.jsonl --port 7317 \
            [--shards 4 --lb-policy least_loaded]
        serve the RuleBook online (newline-delimited JSON over TCP);
        --shards > 1 runs N worker processes behind a balancing router

    python -m repro serve --rulebook pai.rulebook.jsonl \
            --follow stream.ndjson [--follow-drift 0.05]
        follow mode: additionally tail an NDJSON transaction stream,
        maintain a sliding bitmap window, and hot-swap the fleet's
        rulebook whenever the drift gate triggers a remine

    python -m repro reload-rulebook --rulebook new.jsonl --port 7317
        zero-downtime hot-swap of a running service's rulebook

    python -m repro match --rulebook pai.rulebook.jsonl --trace pai --input jobs.csv
        offline batch matching of a job table through the serving index

All output is plain text (the paper-style tables); exit status is 0 on
success, 2 on argument errors.
"""

from __future__ import annotations

import argparse
import itertools
import os
import sys
from typing import Sequence

from .analysis import InterpretableAnalysis, format_rule_table, full_case_study
from .core import MiningConfig
from .dataframe import ColumnTable
from .engine import BACKENDS, MiningEngine
from .shm.segment import NO_SHM_ENV
from .traces import get_trace, list_traces
from .traces.loader import load_trace, save_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interpretable GPU-cluster trace analysis via association rules",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("traces", help="list available trace generators")

    gen = sub.add_parser("generate", help="generate a synthetic trace CSV")
    gen.add_argument("--trace", required=True, choices=list_traces())
    gen.add_argument("--n-jobs", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--output", required=True, help="destination CSV path")

    ana = sub.add_parser("analyze", help="mine keyword rules from a trace")
    ana.add_argument("--trace", required=True, choices=list_traces())
    ana.add_argument("--keyword", required=True,
                     help='item text, e.g. "Failed" or "SM Util = 0%%"')
    source = ana.add_mutually_exclusive_group()
    source.add_argument("--n-jobs", type=int, default=None,
                        help="generate this many jobs (default preset)")
    source.add_argument("--input", default=None, help="analyse an existing trace CSV")
    _add_mining_flags(ana)
    ana.add_argument("--max-cause", type=int, default=6)
    ana.add_argument("--max-characteristic", type=int, default=3)
    _add_engine_flags(ana)

    book = sub.add_parser(
        "mine-rulebook", help="run the analysis and persist a servable RuleBook"
    )
    book.add_argument("--trace", required=True, choices=list_traces())
    book.add_argument("--keyword", action="append", default=None,
                      help="keyword to study (repeatable; default: the "
                           "trace's case-study keywords)")
    book_source = book.add_mutually_exclusive_group()
    book_source.add_argument("--n-jobs", type=int, default=None)
    book_source.add_argument("--input", default=None,
                             help="mine an existing trace CSV")
    book.add_argument("--output", required=True,
                      help="destination RuleBook path (JSON lines)")
    _add_mining_flags(book)
    _add_engine_flags(book)

    srv = sub.add_parser(
        "serve", help="serve a RuleBook online (NDJSON over TCP)"
    )
    srv.add_argument("--rulebook", required=True, help="RuleBook path to load")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7317)
    srv.add_argument("--shards", type=int, default=1,
                     help="worker processes; >1 runs a sharded cluster")
    srv.add_argument("--shard-mode", choices=["router", "reuseport"],
                     default="router",
                     help="asyncio front-end router, or kernel-balanced "
                          "SO_REUSEPORT workers (Linux)")
    srv.add_argument("--lb-policy", default="round_robin",
                     help="router load-balancing policy "
                          "(see repro.serve.lb.LB_POLICIES)")
    srv.add_argument("--request-timeout", type=float, default=30.0,
                     help="router-side per-request shard timeout, seconds")
    srv.add_argument("--max-queue", type=int, default=1024,
                     help="bounded request queue (backpressure beyond this)")
    srv.add_argument("--max-batch", type=int, default=64,
                     help="micro-batch size per scheduler wakeup")
    srv.add_argument("--no-batch-kernel", action="store_true",
                     help="answer micro-batches with the scalar inverted "
                          "index instead of the packed-bitmask kernel")
    srv.add_argument("--no-shm", action="store_true",
                     help="disable the shared-memory rule plane: every "
                          "shard compiles its own index from the rulebook")
    srv.add_argument("--follow", default=None, metavar="STREAM",
                     help="tail this NDJSON transaction stream and hot-swap "
                          "the fleet's rulebook as the window drifts")
    srv.add_argument("--follow-window", type=int, default=4096,
                     help="sliding window size in transactions "
                          "(rounded up to 64-transaction granules)")
    srv.add_argument("--follow-interval", type=float, default=2.0,
                     help="seconds between refresh ticks")
    srv.add_argument("--follow-min-events", type=int, default=64,
                     help="minimum new transactions before a tick runs")
    srv.add_argument("--follow-drift", type=float, default=0.05,
                     help="drift fraction that triggers a full remine "
                          "(0 remines every tick)")
    srv.add_argument("--follow-out", default="follow-books",
                     help="directory for versioned follow-mode rulebooks")
    srv.add_argument("--profile", action="store_true",
                     help="print per-tick kernel attribution in follow mode")

    rel = sub.add_parser(
        "reload-rulebook",
        help="hot-swap the rulebook of a running service/router/cluster",
    )
    rel.add_argument("--rulebook", required=True,
                     help="new RuleBook path (read by the serving processes)")
    rel.add_argument("--host", default="127.0.0.1")
    rel.add_argument("--port", type=int, action="append", required=True,
                     help="service, router, or worker control port; repeat "
                          "for reuseport clusters (rolling reload)")
    rel.add_argument("--version", type=int, default=None,
                     help="explicit version number (default: current + 1)")
    rel.add_argument("--version-tag", default=None,
                     help="tag stamped on post-flip responses "
                          "(default: the new book's fingerprint)")

    mat = sub.add_parser(
        "match", help="batch-match a job table through the serving index"
    )
    mat.add_argument("--rulebook", required=True, help="RuleBook path to load")
    mat.add_argument("--trace", default=None, choices=list_traces(),
                     help="trace whose preprocessor encodes the jobs "
                          "(required unless --jobs is given)")
    mat_source = mat.add_mutually_exclusive_group()
    mat_source.add_argument("--n-jobs", type=int, default=None)
    mat_source.add_argument("--input", default=None, help="job table CSV")
    mat_source.add_argument("--jobs", default=None, metavar="NDJSON",
                            help="bulk-score pre-encoded transactions: one "
                                 "JSON array (or {\"transaction\": [...]}) "
                                 "per line, the --follow stream format")
    mat.add_argument("--explain", action="store_true",
                     help="also count near-miss rules (one item short)")
    mat.add_argument("--top", type=int, default=15,
                     help="show at most this many rules in the summary")
    mat.add_argument("--batch-size", type=int, default=1024,
                     help="jobs per batch-kernel call")
    mat.add_argument("--scalar", action="store_true",
                     help="force the scalar inverted-index path (the "
                          "batch kernel's equivalence oracle)")

    case = sub.add_parser("casestudy", help="run all Sec. IV studies for a trace")
    case.add_argument("--trace", required=True, choices=list_traces())
    case.add_argument("--n-jobs", type=int, default=None)
    _add_engine_flags(case)

    stats = sub.add_parser("stats", help="descriptive characterisation of a trace")
    stats.add_argument("--trace", required=True, choices=list_traces())
    stats_source = stats.add_mutually_exclusive_group()
    stats_source.add_argument("--n-jobs", type=int, default=None)
    stats_source.add_argument("--input", default=None)

    ins = sub.add_parser(
        "insights", help="automated operational takeaways for a keyword"
    )
    ins.add_argument("--trace", required=True, choices=list_traces())
    ins.add_argument("--keyword", required=True)
    ins_source = ins.add_mutually_exclusive_group()
    ins_source.add_argument("--n-jobs", type=int, default=None)
    ins_source.add_argument("--input", default=None)

    return parser


def _add_mining_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--min-support", type=float, default=0.05)
    sub.add_argument("--min-lift", type=float, default=1.5)
    sub.add_argument("--max-len", type=int, default=5)
    sub.add_argument("--c-lift", type=float, default=1.5)
    sub.add_argument("--c-supp", type=float, default=1.5)
    sub.add_argument("--algorithm", default="fpgrowth",
                     choices=("fpgrowth", "apriori", "eclat"))


def _add_engine_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--backend", default="auto", choices=sorted(BACKENDS),
                     help="mining execution backend (default: auto)")
    sub.add_argument("--workers", type=int, default=None,
                     help="worker count for threaded/process backends")
    sub.add_argument("--no-cache", action="store_true",
                     help="disable the content-addressed itemset cache")
    sub.add_argument("--no-shm", action="store_true",
                     help="disable the shared-memory data plane (the "
                          "process backend ships pickled partitions)")
    sub.add_argument("--profile", action="store_true",
                     help="show per-stage kernel attribution in the stats footer")


def _engine_from(args: argparse.Namespace) -> MiningEngine:
    if getattr(args, "no_shm", False):
        # env var (not a constructor flag) so process-backend workers
        # inherit the toggle regardless of start method
        os.environ[NO_SHM_ENV] = "1"
    return MiningEngine(
        backend=args.backend,
        n_workers=args.workers,
        cache=not args.no_cache,
    )


def _config_from(args: argparse.Namespace) -> MiningConfig:
    return MiningConfig(
        min_support=args.min_support,
        max_len=args.max_len,
        min_lift=args.min_lift,
        algorithm=args.algorithm,
        c_lift=args.c_lift,
        c_supp=args.c_supp,
    )


def _load_or_generate(args: argparse.Namespace) -> ColumnTable:
    definition = get_trace(args.trace)
    if getattr(args, "input", None):
        return load_trace(args.input, trace=definition.name)
    return definition.generate_scaled(n_jobs=args.n_jobs)


def cmd_traces(_: argparse.Namespace) -> str:
    lines = []
    for name in list_traces():
        d = get_trace(name)
        lines.append(
            f"{name:<12} {d.display_name} ({d.operator}) — paper scale: "
            f"{d.paper_jobs} jobs, {d.paper_users} users, {d.paper_gpus} GPUs, "
            f"{d.paper_duration}; keywords: {', '.join(sorted(d.keywords.values()))}"
        )
    return "\n".join(lines)


def cmd_generate(args: argparse.Namespace) -> str:
    definition = get_trace(args.trace)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    table = definition.generate_scaled(n_jobs=args.n_jobs, **overrides)
    save_trace(table, args.output)
    return (
        f"wrote {len(table)} {definition.display_name} jobs "
        f"({table.n_columns} columns) to {args.output}"
    )


def cmd_analyze(args: argparse.Namespace) -> str:
    definition = get_trace(args.trace)
    table = _load_or_generate(args)
    config = _config_from(args)
    workflow = InterpretableAnalysis(
        definition.make_preprocessor(), config, _engine_from(args)
    )
    result = workflow.run(table, {"query": args.keyword})
    rules = result["query"]
    rule_table = format_rule_table(
        rules,
        title=(
            f"Rules for keyword {args.keyword!r} — "
            f"{definition.display_name} ({len(table)} jobs)"
        ),
        max_cause=args.max_cause,
        max_characteristic=args.max_characteristic,
    )
    footer = (
        f"\n{len(rules)} rules kept of {rules.n_rules_before_pruning} "
        f"generated ({rules.report})"
    )
    if result.stats is not None:
        footer += "\n\n" + result.stats.render(profile=args.profile)
    return str(rule_table) + footer


def cmd_mine_rulebook(args: argparse.Namespace) -> str:
    definition = get_trace(args.trace)
    table = _load_or_generate(args)
    keywords = (
        {kw: kw for kw in args.keyword}
        if args.keyword
        else dict(definition.keywords)
    )
    workflow = InterpretableAnalysis(
        definition.make_preprocessor(), _config_from(args), _engine_from(args)
    )
    result = workflow.run(table, keywords)
    book = result.to_rulebook(trace=definition.name)
    book.save(args.output)
    lines = [f"wrote RuleBook to {args.output}", f"  {book.provenance()}"]
    if result.stats is not None:
        lines.append("")
        lines.append(result.stats.render(profile=args.profile))
    return "\n".join(lines)


def cmd_serve(args: argparse.Namespace) -> str:
    import asyncio

    from .serve import RuleBook, RuleService

    if args.shards < 1:
        raise ValueError("--shards must be >= 1")
    if args.no_batch_kernel:
        # env var (not a constructor flag) so spawned shard workers
        # inherit the toggle without control-plane plumbing
        os.environ["REPRO_SERVE_NO_BATCH_KERNEL"] = "1"
    if args.no_shm:
        # same trick: shard workers and the follow loop see it too
        os.environ[NO_SHM_ENV] = "1"
    book = RuleBook.load(args.rulebook)  # fail fast on a bad book
    if args.follow is not None:
        return _serve_follow(args, book)
    if args.shards > 1:
        from .serve.shard import ShardCluster, run_cluster

        cluster = ShardCluster(
            args.rulebook,
            args.shards,
            mode=args.shard_mode,
            host=args.host,
            port=args.port,
            lb_policy=args.lb_policy,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            request_timeout_s=args.request_timeout,
        )
        print(
            f"serving {book.provenance()}\n"
            f"{args.shards} shards ({args.shard_mode} mode) — "
            f"SIGTERM/Ctrl-C drains and exits",
            flush=True,
        )
        asyncio.run(run_cluster(cluster))
        return "cluster drained and stopped"
    service = RuleService.from_rulebook(
        book, max_queue=args.max_queue, max_batch=args.max_batch
    )
    print(
        f"serving {book.provenance()}\n"
        f"listening on {args.host}:{args.port} "
        f"(queue={args.max_queue}, batch={args.max_batch}) — "
        f"SIGTERM/Ctrl-C drains and exits",
        flush=True,
    )
    asyncio.run(service.serve_forever(args.host, args.port))
    metrics = service.metrics
    return (
        f"drained and stopped after {metrics.uptime_s:.1f}s: "
        f"{metrics.n_matched} matches, {metrics.n_rejected} rejected, "
        f"p99 latency {metrics.latency.quantile(0.99) * 1e3:.2f}ms"
    )


def _serve_follow(args: argparse.Namespace, book) -> str:
    """Follow mode: serve + tail the stream + drift-gated hot refresh."""
    import asyncio
    import signal

    from .serve import RuleService
    from .streaming import RuleBookRefresher, StreamFollower, StreamingBitmapWindow

    window = StreamingBitmapWindow(args.follow_window)
    refresher = RuleBookRefresher(window, book, threshold=args.follow_drift)

    def print_tick(result, stats) -> None:
        line = f"FOLLOW_TICK {result}"
        if result.remined:
            line += f" saved={stats.last_book_path}"
        print(line, flush=True)
        if args.profile:
            print(result.stats.render(profile=True), flush=True)

    def make_follower(ports: list[int]) -> StreamFollower:
        return StreamFollower(
            refresher,
            args.follow,
            host=args.host,
            ports=ports,
            out_dir=args.follow_out,
            interval_s=args.follow_interval,
            min_events=args.follow_min_events,
            on_tick=print_tick,
        )

    async def run() -> "object":
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if args.shards > 1:
            from .serve.shard import ShardCluster

            cluster = ShardCluster(
                args.rulebook,
                args.shards,
                mode=args.shard_mode,
                host=args.host,
                port=args.port,
                lb_policy=args.lb_policy,
                max_queue=args.max_queue,
                max_batch=args.max_batch,
                request_timeout_s=args.request_timeout,
            )
            await cluster.start()
            print(cluster.describe(), flush=True)
            ports = (
                [cluster.port]
                if args.shard_mode == "router"
                else cluster.control_ports
            )
            print(f"FOLLOW_READY stream={args.follow}", flush=True)
            try:
                return await make_follower(ports).run(stop)
            finally:
                await cluster.shutdown()
        service = RuleService.from_rulebook(
            book, max_queue=args.max_queue, max_batch=args.max_batch
        )
        ready = asyncio.Event()

        def on_ready(svc: RuleService) -> None:
            print(
                f"SERVICE_READY host={args.host} port={svc.port}\n"
                f"FOLLOW_READY stream={args.follow}",
                flush=True,
            )
            ready.set()

        serve_task = asyncio.create_task(
            service.serve_forever(args.host, args.port, on_ready=on_ready)
        )
        await ready.wait()
        try:
            return await make_follower([service.port]).run(stop)
        finally:
            await service.shutdown()
            await serve_task

    print(
        f"serving {book.provenance()}\n"
        f"follow mode: window={window.window_size} "
        f"interval={args.follow_interval}s drift>={args.follow_drift} — "
        f"SIGTERM/Ctrl-C drains and exits",
        flush=True,
    )
    stats = asyncio.run(run())
    return (
        f"{stats.render()}\n"
        f"final book v{refresher.version} ({len(refresher.book)} rules)"
    )


def cmd_reload_rulebook(args: argparse.Namespace) -> str:
    import asyncio

    from .serve import RuleBook
    from .serve.shard import broadcast_reload

    book = RuleBook.load(args.rulebook)  # validate before telling the fleet
    result = asyncio.run(
        broadcast_reload(
            args.host,
            args.port,
            args.rulebook,
            version=args.version,
            version_tag=args.version_tag,
        )
    )
    lines = [
        f"reload {result['status']}: version={result['version']} "
        f"tag={result['version_tag'] or book.fingerprint} "
        f"n_rules={result['n_rules']}"
    ]
    for endpoint in result["endpoints"]:
        status = "ok" if endpoint["ok"] else f"FAILED ({endpoint.get('error')})"
        lines.append(f"  port {endpoint['port']}: {status}")
    if result["status"] != "ok":
        raise ValueError("\n".join(lines))
    return "\n".join(lines)


def _iter_ndjson_transactions(path: str):
    """Yield transactions from an NDJSON file (the --follow stream format)."""
    import json

    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON ({exc})") from exc
            if isinstance(record, dict):
                record = record.get("transaction")
            if not isinstance(record, list) or not all(
                isinstance(i, str) for i in record
            ):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON array of item strings"
                )
            yield record


def cmd_match(args: argparse.Namespace) -> str:
    from .serve import RuleBook, RuleIndex

    book = RuleBook.load(args.rulebook)
    index = RuleIndex.from_rulebook(book)
    if args.jobs is not None:
        transactions = _iter_ndjson_transactions(args.jobs)
    else:
        if args.trace is None:
            raise ValueError("match needs --trace (or --jobs NDJSON)")
        definition = get_trace(args.trace)
        table = _load_or_generate(args)
        db = definition.make_preprocessor().run(table).database
        transactions = db.iter_item_transactions()

    fired_counts: dict[int, int] = {}
    near_counts: dict[int, int] = {}
    n_jobs = n_covered = n_firings = 0
    if args.batch_size < 1:
        raise ValueError("--batch-size must be >= 1")
    if args.scalar:
        # the inverted-index oracle: one job at a time
        for transaction in transactions:
            n_jobs += 1
            matches = index.match(transaction)
            if matches:
                n_covered += 1
                n_firings += len(matches)
                for match in matches:
                    fired_counts[match.rule_id] = (
                        fired_counts.get(match.rule_id, 0) + 1
                    )
            if args.explain:
                for miss in index.explain(transaction):
                    near_counts[miss.rule_id] = (
                        near_counts.get(miss.rule_id, 0) + 1
                    )
    else:
        # bulk-scoring fast path: one packed-bitmask kernel call per chunk
        transactions = iter(transactions)
        while True:
            chunk = list(itertools.islice(transactions, args.batch_size))
            if not chunk:
                break
            n_jobs += len(chunk)
            for wire in index.match_wire_batch(chunk):
                if wire:
                    n_covered += 1
                    n_firings += len(wire)
                    for rule_id, _ in wire:
                        fired_counts[rule_id] = fired_counts.get(rule_id, 0) + 1
            if args.explain:
                for misses in index.explain_batch(chunk):
                    for miss in misses:
                        near_counts[miss.rule_id] = (
                            near_counts.get(miss.rule_id, 0) + 1
                        )

    lines = [
        f"matched {n_jobs} jobs against {book.provenance()}",
        f"  {n_covered} jobs fired >= 1 rule "
        f"({n_covered / n_jobs:.1%} coverage), {n_firings} total firings"
        if n_jobs
        else "  (empty job table)",
    ]
    ranked = sorted(fired_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    for rule_id, count in ranked[: args.top]:
        lines.append(f"  {count:>7}x  {index.rule_label(rule_id)}")
    if len(ranked) > args.top:
        lines.append(f"  ... and {len(ranked) - args.top} more rules")
    if args.explain and near_counts:
        lines.append("near misses (antecedent one item short):")
        near_ranked = sorted(near_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for rule_id, count in near_ranked[: args.top]:
            lines.append(f"  {count:>7}x  {index.rule_label(rule_id)}")
    return "\n".join(lines)


def cmd_casestudy(args: argparse.Namespace) -> str:
    study = full_case_study(args.trace, n_jobs=args.n_jobs, engine=_engine_from(args))
    rendered = study.render()
    if study.analysis.stats is not None:
        rendered += "\n" + study.analysis.stats.render(profile=args.profile)
    return rendered


def cmd_stats(args: argparse.Namespace) -> str:
    from .traces.stats import characterize

    definition = get_trace(args.trace)
    table = _load_or_generate(args)
    return (
        f"{definition.display_name} trace characterisation\n"
        + characterize(table).render()
    )


def cmd_insights(args: argparse.Namespace) -> str:
    from .analysis import extract_insights
    from .core import mine_keyword_rules

    definition = get_trace(args.trace)
    table = _load_or_generate(args)
    db = definition.make_preprocessor().run(table).database
    result = mine_keyword_rules(db, args.keyword, MiningConfig())
    insights = extract_insights(result)
    if not insights:
        return f"no insights detected for keyword {args.keyword!r}"
    return "\n\n".join(insight.render() for insight in insights)


_COMMANDS = {
    "traces": cmd_traces,
    "generate": cmd_generate,
    "analyze": cmd_analyze,
    "mine-rulebook": cmd_mine_rulebook,
    "serve": cmd_serve,
    "reload-rulebook": cmd_reload_rulebook,
    "match": cmd_match,
    "casestudy": cmd_casestudy,
    "stats": cmd_stats,
    "insights": cmd_insights,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # honour the documented contract: argument errors *return* 2
        # (argparse has already printed the usage message); --help is 0
        return exc.code if isinstance(exc.code, int) else 2
    try:
        output = _COMMANDS[args.command](args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
