"""Sliding-window streaming miner.

The paper notes (Sec. VI) that "recent advances in association rule
mining are focusing on … analyzing streaming data" and that its pruning
applies unchanged on top of any itemset source.  This module provides the
minimal streaming substrate that claim needs: a bounded sliding window of
the most recent transactions with O(1) amortised append/evict, plus
re-mining of the current window on demand.

Monitoring pipelines use exactly this shape: job-completion events arrive
continuously; the operator asks "what are the failure rules over the last
N jobs?" and the answer must reflect only the window.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from ..core.items import Item, ItemVocabulary, as_item
from ..core.itemsets import FrequentItemsets
from ..core.mining import MiningConfig
from ..core.transactions import TransactionDatabase
from ..engine import MiningEngine, default_engine

__all__ = ["SlidingWindowMiner"]


class SlidingWindowMiner:
    """Mine frequent itemsets over the last *window_size* transactions.

    ``observe`` appends one transaction (evicting the oldest beyond the
    window); ``mine`` runs the configured algorithm over the current
    window.  Item-level counts are maintained incrementally so callers
    can watch drift (e.g. the failure rate) without re-mining.
    """

    def __init__(
        self,
        window_size: int,
        config: MiningConfig = MiningConfig(),
        vocabulary: ItemVocabulary | None = None,
        engine: MiningEngine | None = None,
    ):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_size = window_size
        self.config = config
        self.engine = engine if engine is not None else default_engine()
        self.vocabulary = vocabulary if vocabulary is not None else ItemVocabulary()
        self._window: deque[tuple[int, ...]] = deque()
        self._item_counts: dict[int, int] = {}
        self._n_ids = 0
        self._n_seen = 0

    # -- stream interface --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._window)

    @property
    def n_seen(self) -> int:
        """Total transactions observed over the stream's lifetime."""
        return self._n_seen

    def observe(self, transaction: Iterable[Item | str]) -> None:
        """Append one transaction, evicting beyond the window."""
        ids = tuple(sorted({self.vocabulary.intern(as_item(i)) for i in transaction}))
        self._window.append(ids)
        self._n_ids += len(ids)
        for i in ids:
            self._item_counts[i] = self._item_counts.get(i, 0) + 1
        self._n_seen += 1
        if len(self._window) > self.window_size:
            evicted = self._window.popleft()
            self._n_ids -= len(evicted)
            for i in evicted:
                remaining = self._item_counts[i] - 1
                if remaining:
                    self._item_counts[i] = remaining
                else:
                    del self._item_counts[i]

    def observe_many(self, transactions: Iterable[Iterable[Item | str]]) -> None:
        for txn in transactions:
            self.observe(txn)

    # -- queries -------------------------------------------------------------------
    def item_support(self, item: Item | str) -> float:
        """Relative support of one item over the current window, O(1).

        Raises :class:`ValueError` on an empty window: support over zero
        transactions is undefined, and silently answering 0.0 would let a
        monitoring dashboard read "no failures" off a window that simply
        has no data yet.
        """
        if not self._window:
            raise ValueError(
                "item_support() is undefined on an empty window; "
                "observe() at least one transaction first"
            )
        item_id = self.vocabulary.get_id(as_item(item))
        if item_id is None:
            return 0.0
        return self._item_counts.get(item_id, 0) / len(self._window)

    def snapshot(self) -> TransactionDatabase:
        """The current window as an immutable transaction database.

        ``indptr`` and the flat id array are preallocated from the
        maintained id count (``observe`` keeps a running total), so no
        per-call Python lists are rebuilt.  The original list-building
        path is retained as :meth:`_snapshot_lists` — the equivalence
        oracle for the regression test.
        """
        n = len(self._window)
        indptr = np.zeros(n + 1, dtype=np.int64)
        flat = np.empty(self._n_ids, dtype=np.int32)
        pos = 0
        for row, txn in enumerate(self._window, start=1):
            flat[pos:pos + len(txn)] = txn
            pos += len(txn)
            indptr[row] = pos
        return TransactionDatabase(self.vocabulary, indptr, flat)

    def _snapshot_lists(self) -> TransactionDatabase:
        """The original list-building snapshot (kept as the test oracle)."""
        indptr = [0]
        flat: list[int] = []
        for txn in self._window:
            flat.extend(txn)
            indptr.append(len(flat))
        return TransactionDatabase(
            self.vocabulary,
            np.asarray(indptr, dtype=np.int64),
            np.asarray(flat, dtype=np.int32),
        )

    def mine(self) -> FrequentItemsets:
        """Frequent itemsets of the current window, via the engine.

        Repeated calls over an unchanged window are answered from the
        engine's content-addressed cache; any ``observe`` changes the
        snapshot fingerprint and forces a fresh pass.
        """
        return self.engine.mine(self.snapshot(), self.config)
