"""Drift-gated rulebook refresh — the streaming control loop.

The serving fleet holds a :class:`~repro.serve.rulebook.RuleBook` mined
from some past window.  As the stream advances, two questions recur:

1. *Are the book's rules still true?*  Answered incrementally: the
   book's antecedent/consequent/union itemsets are registered as the
   window's tracked set (:meth:`StreamingBitmapWindow.set_tracked`), so
   their supports are maintained by popcount deltas and a tick re-scores
   the whole book via :meth:`MiningEngine.recount_rules` without mining.
2. *Has the distribution shifted enough that new rules exist?*  Only
   then is a full remine worth its cost.  The gate compares the
   recounted book against itself after re-applying the mining thresholds
   (rules that died — a vectorised mask, since the recount is row-aligned
   with the book) and the window's frequent-item set against the
   baseline captured at the last remine (items that appeared/disappeared
   in the support distribution).  The full item-keyed diff
   (:mod:`repro.analysis.drift`) is attached only to remine ticks, where
   "what changed" is the report worth paying for.  When either fraction
   crosses ``threshold`` — or the caller forces it — the engine remines
   the window snapshot and a new versioned RuleBook is produced with
   stream provenance (window bounds, ``n_seen``, trigger reason) in its
   header, then the tracked set is *rebased* onto the new book.

A ``threshold`` of ``0.0`` remines on every tick (the deterministic knob
the CI smoke uses); ``1.1`` never remines short of ``force=True``.
Each tick reports an :class:`~repro.engine.stats.EngineStats` with
``stream-recount`` / ``stream-drift`` / ``stream-remine`` stages and
their kernel attribution, the same schema the batch pipeline emits, so
CLI ``--profile`` renders streaming ticks with the familiar footer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.drift import RuleDrift, diff_rules
from ..core.bitmap import kernel_delta, kernel_snapshot
from ..core.mining import MiningConfig
from ..core.ruletable import RuleTable
from ..engine import MiningEngine, default_engine
from ..engine.stats import EngineStats, StageStats, StageTimer
from ..serve.rulebook import RuleBook
from .bitwindow import StreamingBitmapWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["TrackedRules", "TickResult", "RuleBookRefresher"]


class TrackedRules:
    """A rulebook's itemsets, indexed into a window's tracked set.

    Maps every rule of *table* to three slots of the window's tracked
    support vector — antecedent, consequent and union — deduplicating
    shared itemsets (rule sets over the same keyword share most of
    them).  The gather indices are what
    :meth:`MiningEngine.recount_rules` uses to re-score the book from
    one ``tracked_counts()`` read.
    """

    __slots__ = ("table", "ant_idx", "cons_idx", "union_idx", "n_itemsets")

    def __init__(
        self,
        table: RuleTable,
        ant_idx: np.ndarray,
        cons_idx: np.ndarray,
        union_idx: np.ndarray,
        n_itemsets: int,
    ):
        self.table = table
        self.ant_idx = ant_idx
        self.cons_idx = cons_idx
        self.union_idx = union_idx
        self.n_itemsets = n_itemsets

    @classmethod
    def from_table(
        cls, table: RuleTable, window: StreamingBitmapWindow
    ) -> "TrackedRules":
        """Register *table*'s itemsets as *window*'s tracked set.

        Book ids are translated into the window's id-space by interning
        the book's items (growing the window vocabulary if the book
        mentions items the stream has not produced yet — their support
        is simply 0 until they arrive).  This is the rebase operation:
        it triggers the window's one full recount (``stream-track``).
        """
        book_vocab = table.vocabulary
        mapping = np.fromiter(
            (window.vocabulary.intern(item) for item in book_vocab),
            dtype=np.int64,
            count=len(book_vocab),
        )
        index: dict[tuple[int, ...], int] = {}
        itemsets: list[tuple[int, ...]] = []

        def slot(ids: tuple[int, ...]) -> int:
            found = index.get(ids)
            if found is None:
                found = len(itemsets)
                index[ids] = found
                itemsets.append(ids)
            return found

        n = len(table)
        ant_idx = np.empty(n, dtype=np.int64)
        cons_idx = np.empty(n, dtype=np.int64)
        union_idx = np.empty(n, dtype=np.int64)
        for i in range(n):
            ant = tuple(sorted(int(mapping[x]) for x in table.ant_row(i)))
            cons = tuple(sorted(int(mapping[x]) for x in table.cons_row(i)))
            union = tuple(sorted(set(ant) | set(cons)))
            ant_idx[i] = slot(ant)
            cons_idx[i] = slot(cons)
            union_idx[i] = slot(union)
        window.set_tracked(itemsets)
        return cls(table, ant_idx, cons_idx, union_idx, len(itemsets))

    def __repr__(self) -> str:
        return (
            f"TrackedRules(n_rules={len(self.table)}, "
            f"n_itemsets={self.n_itemsets})"
        )


@dataclass(frozen=True, slots=True)
class TickResult:
    """What one refresh tick observed and decided."""

    remined: bool
    trigger: str | None
    drift_score: float
    rule_frac: float
    item_frac: float
    #: full item-keyed diff of the outgoing book vs what survived the
    #: recount — only computed on remine ticks, where "what changed" is
    #: the report that matters; hold ticks carry the fractions alone
    #: (the gate is vectorised and never builds per-rule objects)
    drift: RuleDrift | None
    recounted: RuleTable
    book: RuleBook
    version: int
    stats: EngineStats

    def __str__(self) -> str:
        action = f"remine ({self.trigger})" if self.remined else "hold"
        return (
            f"tick: drift={self.drift_score:.3f} "
            f"(rules={self.rule_frac:.3f}, items={self.item_frac:.3f}) "
            f"→ {action}, book v{self.version} ({len(self.book)} rules)"
        )


class RuleBookRefresher:
    """Keep a RuleBook honest against a streaming window.

    Parameters
    ----------
    window:
        The delta-maintained :class:`StreamingBitmapWindow` the stream
        feeds.  Construction rebases the book's itemsets onto it.
    book:
        The currently-served RuleBook.  Its ``keywords`` and ``config``
        drive remines, so a remined book answers the same study the
        original did.
    threshold:
        Drift fraction at which a tick escalates to a full remine;
        ``0.0`` remines every tick, values above 1 only on ``force``.
    """

    __slots__ = (
        "window",
        "book",
        "engine",
        "threshold",
        "config",
        "keywords",
        "version",
        "n_ticks",
        "n_remines",
        "tracked",
        "_baseline_frequent",
    )

    def __init__(
        self,
        window: StreamingBitmapWindow,
        book: RuleBook,
        *,
        engine: MiningEngine | None = None,
        threshold: float = 0.05,
    ):
        if threshold < 0.0:
            raise ValueError("threshold must be >= 0")
        self.window = window
        self.book = book
        self.engine = engine if engine is not None else default_engine()
        self.threshold = threshold
        self.config = book.config if book.config is not None else MiningConfig()
        self.keywords = dict(book.keywords)
        self.version = 0
        self.n_ticks = 0
        self.n_remines = 0
        self._rebase()

    @classmethod
    def bootstrap(
        cls,
        window: StreamingBitmapWindow,
        keywords: dict[str, str],
        config: MiningConfig = MiningConfig(),
        *,
        engine: MiningEngine | None = None,
        threshold: float = 0.05,
        trace: str | None = None,
    ) -> "RuleBookRefresher":
        """Mine the window's current content into an initial book.

        For follow mode started without a pre-mined rulebook: observe a
        warm-up slice of the stream, then bootstrap — the forced first
        remine stamps version 1 with ``trigger="bootstrap"``.
        """
        seed = RuleBook(keywords=keywords, config=config, trace=trace)
        refresher = cls(window, seed, engine=engine, threshold=threshold)
        refresher.tick(force=True, trigger="bootstrap")
        return refresher

    # -- the tick ---------------------------------------------------------------
    def _rebase(self) -> None:
        """Re-anchor tracked itemsets and the drift baseline on the book."""
        self.tracked = TrackedRules.from_table(self.book.table, self.window)
        self._baseline_frequent = self._frequent_items()

    def _frequent_items(self) -> frozenset[int]:
        """Window ids whose support clears the mining floor right now."""
        n = len(self.window)
        if n == 0:
            return frozenset()
        counts = self.window.item_support_counts()
        return frozenset(
            int(i) for i in np.flatnonzero(counts >= self.config.min_support * n)
        )

    def tick(self, force: bool = False, trigger: str | None = None) -> TickResult:
        """Recount the book, measure drift, remine if the gate opens.

        Raises :class:`ValueError` on an empty window — there is nothing
        to recount and "the book drifted from no data" is meaningless.
        """
        n = len(self.window)
        if n == 0:
            raise ValueError("cannot tick over an empty window")
        self.n_ticks += 1
        stats = EngineStats(backend=self.engine.backend.name)

        before = kernel_snapshot()
        with StageTimer() as t:
            recounted = self.engine.recount_rules(self.window, self.tracked)
        stats.add(
            StageStats(
                "stream-recount",
                t.seconds,
                len(self.book.table),
                len(recounted),
                kernels=kernel_delta(before, kernel_snapshot()),
            )
        )

        before = kernel_snapshot()
        with StageTimer() as t:
            # recounted is row-aligned with the (deduped) book table, so
            # "rules that died" is a threshold mask, not a keyed diff —
            # the gate itself never materialises per-rule objects
            surviving_mask = (
                (recounted.support >= self.config.min_support)
                & (recounted.confidence >= self.config.min_confidence)
                & (recounted.lift >= self.config.min_lift)
            )
            n_surviving = int(surviving_mask.sum())
            rule_frac = (len(self.book.table) - n_surviving) / max(
                1, len(self.book.table)
            )
            current_frequent = self._frequent_items()
            item_frac = len(current_frequent ^ self._baseline_frequent) / max(
                1, len(self._baseline_frequent)
            )
            drift_score = max(rule_frac, item_frac)
        stats.add(
            StageStats(
                "stream-drift",
                t.seconds,
                len(recounted),
                n_surviving,
                kernels=kernel_delta(before, kernel_snapshot()),
            )
        )

        if force:
            reason = trigger if trigger is not None else "forced"
        elif drift_score >= self.threshold:
            reason = "drift"
        else:
            reason = None
        drift = None
        if reason is not None:
            drift = diff_rules(
                self.book.table,
                recounted.select(np.flatnonzero(surviving_mask)),
            )
            self._remine(stats, reason)
        return TickResult(
            remined=reason is not None,
            trigger=reason,
            drift_score=drift_score,
            rule_frac=rule_frac,
            item_frac=item_frac,
            drift=drift,
            recounted=recounted,
            book=self.book,
            version=self.version,
            stats=stats,
        )

    def remine_now(self) -> TickResult:
        """Force a full remine regardless of the drift gate."""
        return self.tick(force=True)

    def _remine(self, stats: EngineStats, trigger: str) -> None:
        """Full engine pass over the window → new versioned RuleBook."""
        before = kernel_snapshot()
        with StageTimer() as t:
            db = self.window.snapshot()
            itemsets = self.engine.mine(db, self.config)
            kept: list[RuleTable] = []
            for keyword in self.keywords.values():
                ruleset = self.engine.keyword_rules(
                    db, keyword, self.config, itemsets
                )
                if ruleset.table is not None and len(ruleset.table):
                    kept.append(ruleset.table)
            table = (
                RuleTable.concat(kept).dedup()
                if kept
                else RuleTable.empty(db.vocabulary)
            )
            first, last = self.window.window_bounds()
            self.version += 1
            self.n_remines += 1
            self.book = RuleBook(
                table=table,
                trace=self.book.trace,
                keywords=self.keywords,
                config=self.config,
                fingerprint=db.fingerprint(),
                backend=self.engine.backend.name,
                n_transactions=len(db),
                stream={
                    "window": [int(first), int(last)],
                    "n_seen": int(self.window.n_seen),
                    "n_window": len(db),
                    "version": self.version,
                    "trigger": trigger,
                },
            )
        stats.add(
            StageStats(
                "stream-remine",
                t.seconds,
                len(db),
                len(self.book),
                kernels=kernel_delta(before, kernel_snapshot()),
            )
        )
        self._rebase()

    def __repr__(self) -> str:
        return (
            f"RuleBookRefresher(v{self.version}, ticks={self.n_ticks}, "
            f"remines={self.n_remines}, threshold={self.threshold}, "
            f"book={len(self.book)} rules)"
        )
