"""Delta-maintained packed-bitmap windows — the streaming kernel.

:class:`SlidingWindowMiner` answers "what holds over the last N jobs?"
by rebuilding a snapshot and re-mining it, which is fine for a dashboard
refresh but not for a serving fleet that must track a live trace: at
100k-transaction windows a full rebuild touches every transaction to
incorporate a 1k-event delta.

:class:`StreamingBitmapWindow` keeps the window *in the bitmap domain*
instead.  Incoming transactions are packed into **granules** of exactly
64 transactions — one ``uint64`` word per item, the same bit layout and
alignment as :class:`~repro.core.bitmap.PackedBitmaps` (bit ``t & 63``
of word ``t >> 6``, matching ``partition_bounds``'s 64-alignment) — and
the window slides by appending sealed granules at the tail and evicting
whole granules at the head.  Every maintained statistic is updated by
popcount *deltas on only the changed words*:

* per-item supports: ``+popcount(new granule column)`` on seal,
  ``-popcount(evicted column)`` on evict;
* tracked-itemset supports (the serving rulebook's antecedents,
  consequents and unions): one vectorised AND-reduce + popcount over the
  single changed column per seal/evict.

Nothing is ever recounted from scratch on the steady path; a full pass
happens only when the tracked set itself changes (a remine rebased the
rulebook) and is recorded under the ``stream-track`` kernel counter.
The equivalence oracle, per house style, is the retained
:class:`SlidingWindowMiner` plus :class:`PackedBitmaps` built from
:meth:`snapshot` — the tests assert bit-identical counts against both.

Window semantics: ``window_size`` is rounded up to a whole number of
granules; after the warm-up fill the window always holds the most
recent ``len(self)`` transactions with
``window_size - 63 <= len(self) <= window_size`` (eviction is
granule-granular, so the head moves in steps of 64).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from ..core.bitmap import _POPCOUNT16, kernel_timer
from ..core.items import Item, ItemVocabulary, as_item
from ..core.transactions import TransactionDatabase

__all__ = ["GRANULE", "StreamingBitmapWindow"]

#: transactions per granule — one uint64 word per item, matching the
#: packed-bitmap kernel's word width and partition alignment
GRANULE = 64

_ONE = np.uint64(1)


def _popcount_per_row(column: np.ndarray) -> np.ndarray:
    """Per-element popcount of a 1-D uint64 array (int64 result)."""
    flat = np.ascontiguousarray(column)
    halves = flat.view(np.uint16).reshape(flat.size, 4)
    return _POPCOUNT16[halves].sum(axis=1, dtype=np.int64)


class StreamingBitmapWindow:
    """A sliding transaction window maintained as packed word granules.

    Parameters
    ----------
    window_size:
        Target number of retained transactions; rounded up to a multiple
        of :data:`GRANULE` (eviction happens in whole granules).
    vocabulary:
        Shared :class:`ItemVocabulary`; grows as unseen items arrive.
    """

    __slots__ = (
        "window_size",
        "vocabulary",
        "_words",
        "_start",
        "_stop",
        "_granule_payload",
        "_partial_words",
        "_partial_payload",
        "_item_counts",
        "_tracked_indptr",
        "_tracked_ids",
        "_tracked_counts",
        "_n_seen",
    )

    def __init__(self, window_size: int, vocabulary: ItemVocabulary | None = None):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        granules = (window_size + GRANULE - 1) // GRANULE
        self.window_size = granules * GRANULE
        self.vocabulary = vocabulary if vocabulary is not None else ItemVocabulary()
        item_cap = max(16, len(self.vocabulary))
        # sealed-granule word matrix: rows = items, columns = granules;
        # live columns are [_start, _stop), compacted/grown on demand
        col_cap = granules + 1 + max(8, granules // 2)
        self._words = np.zeros((item_cap, col_cap), dtype=np.uint64)
        self._start = 0
        self._stop = 0
        #: per sealed granule: (per-transaction lengths, flat sorted ids)
        self._granule_payload: deque[tuple[np.ndarray, np.ndarray]] = deque()
        # the in-progress granule (< 64 transactions)
        self._partial_words = np.zeros(item_cap, dtype=np.uint64)
        self._partial_payload: list[np.ndarray] = []
        # maintained statistics (sealed + partial for items; sealed only
        # for tracked itemsets — the partial column is folded in on read)
        self._item_counts = np.zeros(item_cap, dtype=np.int64)
        self._tracked_indptr = np.zeros(1, dtype=np.int64)
        self._tracked_ids = np.zeros(0, dtype=np.int64)
        self._tracked_counts = np.zeros(0, dtype=np.int64)
        self._n_seen = 0

    # -- stream interface ------------------------------------------------------
    def __len__(self) -> int:
        return (self._stop - self._start) * GRANULE + len(self._partial_payload)

    @property
    def n_seen(self) -> int:
        """Total transactions observed over the stream's lifetime."""
        return self._n_seen

    @property
    def n_granules(self) -> int:
        """Sealed (whole-word) granules currently in the window."""
        return self._stop - self._start

    def window_bounds(self) -> tuple[int, int]:
        """Stream sequence range ``[first, last)`` of retained transactions."""
        return self._n_seen - len(self), self._n_seen

    def observe(self, transaction: Iterable[Item | str]) -> None:
        """Append one transaction, evicting whole granules beyond the window."""
        ids = sorted({self.vocabulary.intern(as_item(i)) for i in transaction})
        self._append_ids(np.asarray(ids, dtype=np.int32))

    def observe_many(self, transactions: Iterable[Iterable[Item | str]]) -> None:
        with kernel_timer("stream-append"):
            for txn in transactions:
                self.observe(txn)

    def extend_encoded(self, transactions: Iterable[Sequence[int]]) -> None:
        """Append already-encoded transactions (sorted unique window ids)."""
        with kernel_timer("stream-append"):
            for ids in transactions:
                self._append_ids(np.asarray(ids, dtype=np.int32))

    def _append_ids(self, ids: np.ndarray) -> None:
        self._ensure_items(len(self.vocabulary))
        if ids.size:
            if int(ids[0]) < 0 or int(ids[-1]) >= len(self.vocabulary):
                raise ValueError("transaction id outside the vocabulary")
            bit = _ONE << np.uint64(len(self._partial_payload))
            self._partial_words[ids] |= bit
            self._item_counts[ids] += 1
        self._partial_payload.append(ids)
        self._n_seen += 1
        if len(self._partial_payload) == GRANULE:
            self._seal()
        while len(self) > self.window_size and self._stop > self._start:
            self._evict()

    # -- granule lifecycle -----------------------------------------------------
    def _seal(self) -> None:
        """Freeze the partial granule into a sealed word column."""
        with kernel_timer("stream-seal"):
            if self._stop == self._words.shape[1]:
                self._compact_or_grow()
            self._words[:, self._stop] = self._partial_words
            if self._tracked_counts.size:
                self._tracked_counts += self._counts_on_column(self._partial_words)
            lens = np.fromiter(
                (a.size for a in self._partial_payload), np.int64, count=GRANULE
            )
            flat = (
                np.concatenate(self._partial_payload)
                if any(a.size for a in self._partial_payload)
                else np.zeros(0, dtype=np.int32)
            )
            self._granule_payload.append((lens, flat))
            self._stop += 1
            self._partial_words[:] = 0
            self._partial_payload = []

    def _evict(self) -> None:
        """Drop the oldest sealed granule, subtracting its popcounts."""
        with kernel_timer("stream-evict"):
            column = np.ascontiguousarray(self._words[:, self._start])
            self._item_counts -= _popcount_per_row(column)
            if self._tracked_counts.size:
                self._tracked_counts -= self._counts_on_column(column)
            self._words[:, self._start] = 0
            self._granule_payload.popleft()
            self._start += 1

    def _compact_or_grow(self) -> None:
        live = self._stop - self._start
        if self._start > 0:
            # slide live columns to the front (amortised by the slack
            # columns allocated beyond the window's granule count)
            self._words[:, :live] = self._words[:, self._start:self._stop]
            self._words[:, live:] = 0
        else:  # pragma: no cover - capacity always exceeds live granules
            grown = np.zeros(
                (self._words.shape[0], self._words.shape[1] * 2), dtype=np.uint64
            )
            grown[:, :live] = self._words[:, self._start:self._stop]
            self._words = grown
        self._start = 0
        self._stop = live

    def _ensure_items(self, n_items: int) -> None:
        cap = self._words.shape[0]
        if n_items <= cap:
            return
        new_cap = max(cap * 2, n_items)
        grown = np.zeros((new_cap, self._words.shape[1]), dtype=np.uint64)
        grown[:cap] = self._words
        self._words = grown
        for name in ("_partial_words", "_item_counts"):
            old = getattr(self, name)
            fresh = np.zeros(new_cap, dtype=old.dtype)
            fresh[:cap] = old
            setattr(self, name, fresh)

    # -- tracked itemsets ------------------------------------------------------
    def set_tracked(self, itemsets: Sequence[Sequence[int]]) -> None:
        """Replace the tracked itemsets and recount them over the window.

        This is the *rebase* operation: after a remine the new rulebook's
        itemsets become the tracked set.  It is the only full pass the
        window ever performs (``stream-track`` kernel); every subsequent
        seal/evict maintains the counts via single-column deltas.
        """
        indptr = [0]
        ids: list[int] = []
        for itemset in itemsets:
            members = sorted({int(i) for i in itemset})
            if not members:
                raise ValueError("tracked itemsets must be non-empty")
            if members[0] < 0 or members[-1] >= len(self.vocabulary):
                raise ValueError("tracked itemset id outside the vocabulary")
            ids.extend(members)
            indptr.append(len(ids))
        with kernel_timer("stream-track"):
            self._ensure_items(len(self.vocabulary))
            self._tracked_indptr = np.asarray(indptr, dtype=np.int64)
            self._tracked_ids = np.asarray(ids, dtype=np.int64)
            self._tracked_counts = self._recount_tracked()

    @property
    def n_tracked(self) -> int:
        return len(self._tracked_indptr) - 1

    def tracked_counts(self) -> np.ndarray:
        """Maintained support counts of the tracked itemsets (int64).

        Sealed granules are pre-aggregated; the partial granule's single
        word column is folded in here, so the result always covers the
        full ``len(self)`` transactions.
        """
        if not len(self._partial_payload) or not self._tracked_counts.size:
            return self._tracked_counts.copy()
        return self._tracked_counts + self._counts_on_column(self._partial_words)

    def _recount_tracked(self, chunk: int = 4096) -> np.ndarray:
        """Full recount of the tracked itemsets over all sealed columns."""
        n_tracked = len(self._tracked_indptr) - 1
        counts = np.zeros(n_tracked, dtype=np.int64)
        live = self._stop - self._start
        if n_tracked == 0 or live == 0:
            return counts
        words = self._words[:, self._start:self._stop]
        for lo in range(0, n_tracked, chunk):
            hi = min(lo + chunk, n_tracked)
            base = self._tracked_indptr[lo]
            ids = self._tracked_ids[base:self._tracked_indptr[hi]]
            starts = (self._tracked_indptr[lo:hi] - base).astype(np.int64)
            gathered = words[ids]  # (chunk ids, live granules)
            acc = np.bitwise_and.reduceat(gathered, starts, axis=0)
            halves = np.ascontiguousarray(acc).view(np.uint16)
            counts[lo:hi] = _POPCOUNT16[halves.reshape(hi - lo, -1)].sum(
                axis=1, dtype=np.int64
            )
        return counts

    def _counts_on_column(self, column: np.ndarray) -> np.ndarray:
        """Support deltas of every tracked itemset on one word column."""
        gathered = column[self._tracked_ids]
        acc = np.bitwise_and.reduceat(gathered, self._tracked_indptr[:-1])
        halves = np.ascontiguousarray(acc).view(np.uint16)
        return _POPCOUNT16[halves.reshape(acc.size, 4)].sum(axis=1, dtype=np.int64)

    # -- queries ---------------------------------------------------------------
    def item_support_counts(self) -> np.ndarray:
        """Maintained support count of every vocabulary item (int64)."""
        return self._item_counts[: len(self.vocabulary)].copy()

    def item_support(self, item: Item | str) -> float:
        """Relative support of one item over the current window, O(1).

        Raises :class:`ValueError` on an empty window (support over zero
        transactions is undefined), matching
        :meth:`SlidingWindowMiner.item_support`.
        """
        n = len(self)
        if n == 0:
            raise ValueError(
                "item_support() is undefined on an empty window; "
                "observe() at least one transaction first"
            )
        item_id = self.vocabulary.get_id(as_item(item))
        if item_id is None:
            return 0.0
        return int(self._item_counts[item_id]) / n

    def snapshot(self) -> TransactionDatabase:
        """The current window as an immutable transaction database.

        Built by concatenating the sealed granules' retained CSR payloads
        plus the partial granule — no per-transaction Python loop.  The
        resulting database's bitmaps (via ``db.bitmaps()``) are the
        ground truth the maintained counts are tested against.
        """
        with kernel_timer("stream-snapshot"):
            lens_parts = [lens for lens, _flat in self._granule_payload]
            flat_parts = [flat for _lens, flat in self._granule_payload]
            if self._partial_payload:
                lens_parts.append(
                    np.fromiter(
                        (a.size for a in self._partial_payload),
                        np.int64,
                        count=len(self._partial_payload),
                    )
                )
                flat_parts.extend(self._partial_payload)
            n = len(self)
            indptr = np.zeros(n + 1, dtype=np.int64)
            if lens_parts:
                np.cumsum(np.concatenate(lens_parts), out=indptr[1:])
            indices = (
                np.concatenate(flat_parts)
                if flat_parts
                else np.zeros(0, dtype=np.int32)
            )
            return TransactionDatabase(self.vocabulary, indptr, indices)

    def __repr__(self) -> str:
        return (
            f"StreamingBitmapWindow(n={len(self)}/{self.window_size}, "
            f"granules={self.n_granules}, n_items={len(self.vocabulary)}, "
            f"tracked={self.n_tracked}, seen={self._n_seen})"
        )
