"""Streaming mining over sliding windows of monitoring events.

Two window substrates plus the live-refresh loop on top:

* :class:`SlidingWindowMiner` — the simple deque-of-transactions window
  (re-mines its snapshot on demand); retained as the equivalence oracle
  for the bitmap path.
* :class:`StreamingBitmapWindow` — delta-maintained packed-bitmap
  granules with incremental per-item and tracked-itemset supports.
* :class:`RuleBookRefresher` / :class:`StreamFollower` — drift-gated
  remining and the ``repro serve --follow`` fleet-refresh loop.
"""

from .bitwindow import GRANULE, StreamingBitmapWindow
from .follow import FollowStats, StreamFollower
from .refresh import RuleBookRefresher, TickResult, TrackedRules
from .window import SlidingWindowMiner

__all__ = [
    "GRANULE",
    "SlidingWindowMiner",
    "StreamingBitmapWindow",
    "TrackedRules",
    "TickResult",
    "RuleBookRefresher",
    "FollowStats",
    "StreamFollower",
]
