"""Streaming mining over sliding windows of monitoring events."""

from .window import SlidingWindowMiner

__all__ = ["SlidingWindowMiner"]
