"""Follow mode: tail a transaction stream, refresh the serving fleet.

:class:`StreamFollower` closes the loop between the streaming miner and
the serving subsystem — the ``repro serve --follow`` wiring:

1. **tail** an NDJSON transaction stream (one JSON array of item
   strings per line, or ``{"transaction": [...]}`` objects), tolerating
   partial lines at the tail and counting — not crashing on — malformed
   lines;
2. **ingest** batches into the delta-maintained
   :class:`~repro.streaming.bitwindow.StreamingBitmapWindow`;
3. **tick** the drift-gated
   :class:`~repro.streaming.refresh.RuleBookRefresher` on a cadence
   (every ``interval_s`` seconds, provided at least ``min_events`` new
   transactions arrived);
4. when a tick remines, **save** the new versioned RuleBook (stream
   provenance in its header), **publish** its compiled rule plane to
   shared memory once, and push it through
   :func:`~repro.serve.shard.broadcast_reload` — the same rolling
   hot-swap path the ``reload-rulebook`` CLI uses, so the shard fleet
   flips atomically per replica, tagged with the new book's
   fingerprint, without restarts or mixed-version batches.  Each shard
   attaches the published segment zero-copy; the saved rulebook path
   rides along as the fallback when shared memory is unavailable.

The ingest/tick work runs in a worker thread (``asyncio.to_thread``) so
the event loop that owns the serving cluster keeps answering control
traffic mid-remine.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..serve.shard import broadcast_reload
from ..shm.ruleplane import publish_rule_plane
from ..shm.segment import SegmentError, SegmentLease, shm_available
from .refresh import RuleBookRefresher, TickResult

__all__ = ["FollowStats", "StreamFollower"]


@dataclass(slots=True)
class FollowStats:
    """Lifetime counters of one follower run."""

    n_events: int = 0
    n_bad_lines: int = 0
    n_ticks: int = 0
    n_remines: int = 0
    n_reloads: int = 0
    n_reload_failures: int = 0
    last_version_tag: str | None = None
    last_book_path: str | None = None
    reload_reports: list[dict] = field(default_factory=list)

    def render(self) -> str:
        return (
            f"follow stats — events={self.n_events} "
            f"bad_lines={self.n_bad_lines} ticks={self.n_ticks} "
            f"remines={self.n_remines} reloads={self.n_reloads} "
            f"failed_reloads={self.n_reload_failures}"
        )


def _decode_line(line: bytes) -> list | None:
    """One NDJSON stream record → item-string list (None when bad)."""
    try:
        record = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(record, dict):
        record = record.get("transaction")
    if not isinstance(record, list):
        return None
    if not all(isinstance(item, str) for item in record):
        return None
    return record


class StreamFollower:
    """Tail a stream file and keep a refresher + shard fleet current.

    Parameters
    ----------
    refresher:
        The drift-gated control loop (owns window, book and engine).
    stream_path:
        NDJSON file to tail; may not exist yet (the follower waits).
    host, ports:
        Reload endpoints — a router's public port, reuseport workers'
        control ports, or a lone service's port.  Empty *ports* disables
        pushing (mine-only follow, used by tests and dry runs).
    out_dir:
        Where versioned rulebooks land (``rulebook.v<N>.jsonl`` plus a
        ``rulebook.latest.jsonl`` convenience copy).
    interval_s, min_events:
        Tick cadence: at most one tick per *interval_s*, and only once
        *min_events* new transactions arrived (a final drain tick on
        stop ignores the floor so no tail events are lost).
    """

    def __init__(
        self,
        refresher: RuleBookRefresher,
        stream_path: str | os.PathLike,
        *,
        host: str = "127.0.0.1",
        ports: list[int] | tuple[int, ...] = (),
        out_dir: str | os.PathLike = ".",
        interval_s: float = 2.0,
        min_events: int = 1,
        poll_s: float = 0.2,
        on_tick: Callable[[TickResult, "FollowStats"], None] | None = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if min_events < 1:
            raise ValueError("min_events must be >= 1")
        self.refresher = refresher
        self.stream_path = Path(stream_path)
        self.host = host
        self.ports = list(ports)
        self.out_dir = Path(out_dir)
        self.interval_s = interval_s
        self.min_events = min_events
        self.poll_s = poll_s
        self.on_tick = on_tick
        self.stats = FollowStats()
        self._offset = 0
        self._tail_buffer = b""
        self._pending: list[list] = []
        self._plane_lease: SegmentLease | None = None
        self._generation = 0

    # -- tailing ----------------------------------------------------------------
    def _poll_stream(self) -> int:
        """Read newly appended bytes, decode whole lines into pending."""
        try:
            size = self.stream_path.stat().st_size
        except FileNotFoundError:
            return 0
        if size < self._offset:  # truncated/rotated: start over
            self._offset = 0
            self._tail_buffer = b""
        if size == self._offset:
            return 0
        with open(self.stream_path, "rb") as fh:
            fh.seek(self._offset)
            chunk = fh.read(size - self._offset)
        self._offset = size
        data = self._tail_buffer + chunk
        lines = data.split(b"\n")
        self._tail_buffer = lines.pop()  # partial last line (b"" if none)
        n_new = 0
        for line in lines:
            if not line.strip():
                continue
            decoded = _decode_line(line)
            if decoded is None:
                self.stats.n_bad_lines += 1
                continue
            self._pending.append(decoded)
            n_new += 1
        return n_new

    # -- the tick ---------------------------------------------------------------
    def _ingest_and_tick(self, batch: list[list]) -> TickResult:
        """Worker-thread body: feed the window, run one refresh tick."""
        self.refresher.window.observe_many(batch)
        self.stats.n_events += len(batch)
        result = self.refresher.tick()
        self.stats.n_ticks += 1
        if result.remined:
            self.stats.n_remines += 1
        return result

    def _save_book(self, result: TickResult) -> Path:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        path = self.out_dir / f"rulebook.v{result.version}.jsonl"
        result.book.save(path)
        latest = self.out_dir / "rulebook.latest.jsonl"
        tmp = self.out_dir / "rulebook.latest.jsonl.tmp"
        result.book.save(tmp)
        os.replace(tmp, latest)  # readers never see a half-written book
        self.stats.last_book_path = str(path)
        return path

    def _publish_plane(self, result: TickResult) -> SegmentLease | None:
        """Worker-thread body: compile the new book's plane once.

        Returns ``None`` when shared memory is unavailable — the
        broadcast then ships only the rulebook path and every shard
        compiles its own index, exactly the pre-shm behaviour.
        """
        if not shm_available():
            return None
        from ..serve.index import RuleIndex

        index = RuleIndex.from_rulebook(result.book)
        self._generation += 1
        return publish_rule_plane(
            index,
            generation=self._generation,
            version_tag=result.book.fingerprint,
        )

    async def _push(self, result: TickResult, path: Path) -> None:
        if not self.ports:
            return
        previous = self._plane_lease
        try:
            lease = await asyncio.to_thread(self._publish_plane, result)
        except SegmentError:
            lease = None
        report = await broadcast_reload(
            self.host,
            self.ports,
            str(path),
            version_tag=result.book.fingerprint,
            segment=lease.name if lease is not None else None,
        )
        if lease is not None:
            self._plane_lease = lease
            if previous is not None and previous.name != lease.name:
                # shards that attached it keep their mappings alive
                previous.unlink()
        self.stats.reload_reports.append(report)
        if report["status"] == "ok":
            self.stats.n_reloads += 1
            self.stats.last_version_tag = report.get("version_tag")
        else:
            self.stats.n_reload_failures += 1

    async def _tick_once(self) -> TickResult:
        batch, self._pending = self._pending, []
        result = await asyncio.to_thread(self._ingest_and_tick, batch)
        if result.remined:
            path = await asyncio.to_thread(self._save_book, result)
            await self._push(result, path)
        if self.on_tick is not None:
            self.on_tick(result, self.stats)
        return result

    # -- main loop --------------------------------------------------------------
    async def run(self, stop: asyncio.Event) -> FollowStats:
        """Follow until *stop* is set; returns the final counters.

        One last drain (poll + tick with whatever arrived, even below
        ``min_events``) runs after *stop* fires, so a finite stream is
        fully accounted for when the follower exits.
        """
        loop = asyncio.get_running_loop()
        next_tick = loop.time() + self.interval_s
        while not stop.is_set():
            self._poll_stream()
            now = loop.time()
            if now >= next_tick and len(self._pending) >= self.min_events:
                await self._tick_once()
                next_tick = loop.time() + self.interval_s
            try:
                await asyncio.wait_for(stop.wait(), timeout=self.poll_s)
            except asyncio.TimeoutError:
                pass
        self._poll_stream()
        if self._pending:
            await self._tick_once()
        if self._plane_lease is not None:
            # the fleet already attached (or fell back); drop our name
            self._plane_lease.unlink()
            self._plane_lease = None
        return self.stats
