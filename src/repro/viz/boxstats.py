"""Box-plot statistics (Fig. 2: confidence/lift dispersion across traces)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxStats", "box_stats"]


@dataclass(frozen=True, slots=True)
class BoxStats:
    """The five-number summary a box plot draws, plus whisker bounds.

    Whiskers follow the Tukey convention (1.5 × IQR, clipped to data);
    points outside are outliers.
    """

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    n: int
    n_outliers: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "whisker_low": self.whisker_low,
            "whisker_high": self.whisker_high,
            "n": float(self.n),
            "n_outliers": float(self.n_outliers),
        }


def box_stats(values) -> BoxStats:
    """Compute box-plot statistics of a sample (NaNs dropped)."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        raise ValueError("box_stats of an empty sample")
    q1, median, q3 = (float(q) for q in np.quantile(arr, [0.25, 0.5, 0.75]))
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= low_fence) & (arr <= high_fence)]
    whisker_low = float(inside.min()) if inside.size else q1
    whisker_high = float(inside.max()) if inside.size else q3
    return BoxStats(
        minimum=float(arr.min()),
        q1=q1,
        median=median,
        q3=q3,
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        n=int(arr.size),
        n_outliers=int(arr.size - inside.size),
    )
