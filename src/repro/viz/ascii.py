"""Terminal rendering of the figure data (no plotting dependencies).

Benchmarks and examples print figures as aligned text: bar charts for the
exit-status distribution (Fig. 5), a staircase for the SM-util CDF
(Fig. 4), and box summaries (Fig. 2).  The rendering is intentionally
simple; the *data* behind each figure is what the reproduction checks.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .boxstats import BoxStats
from .cdf import CDF

__all__ = ["bar_chart", "cdf_chart", "box_chart", "series_table"]

_BAR = "█"


def bar_chart(
    data: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.1%}",
    title: str | None = None,
) -> str:
    """Horizontal bar chart of label → value."""
    if not data:
        return title or ""
    label_w = max(len(str(k)) for k in data)
    peak = max(data.values()) or 1.0
    lines = [title] if title else []
    for label, value in data.items():
        bar = _BAR * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{str(label).ljust(label_w)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)


def cdf_chart(
    cdf: CDF, points: Sequence[float], width: int = 40, title: str | None = None
) -> str:
    """CDF sampled at chosen x points, rendered as bars."""
    data = {f"≤{p:g}": cdf.at(p) for p in points}
    return bar_chart(data, width=width, title=title)


def box_chart(stats: Mapping[str, BoxStats], title: str | None = None) -> str:
    """Aligned table of box statistics per group."""
    lines = [title] if title else []
    lines.append(
        f"{'group':<14} {'min':>8} {'q1':>8} {'median':>8} {'q3':>8} {'max':>8}  n"
    )
    for name, s in stats.items():
        lines.append(
            f"{name:<14} {s.minimum:>8.3f} {s.q1:>8.3f} {s.median:>8.3f} "
            f"{s.q3:>8.3f} {s.maximum:>8.3f}  {s.n}"
        )
    return "\n".join(lines)


def series_table(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Numeric series as a column table (e.g. Fig. 1's support sweep)."""
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch with x values")
    lines = [title] if title else []
    header = [x_label.ljust(12)] + [name.rjust(12) for name in series]
    lines.append(" ".join(header))
    for i, x in enumerate(x_values):
        row = [f"{x!s:<12}"] + [
            f"{series[name][i]:>12g}" for name in series
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)
