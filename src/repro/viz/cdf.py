"""Empirical CDFs (Fig. 4: GPU SM-utilisation distribution per trace)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CDF", "empirical_cdf"]


@dataclass(frozen=True, slots=True)
class CDF:
    """An empirical CDF: sorted support points and cumulative fractions."""

    values: np.ndarray
    fractions: np.ndarray

    def at(self, x: float) -> float:
        """P(X <= x)."""
        idx = np.searchsorted(self.values, x, side="right")
        if idx == 0:
            return 0.0
        return float(self.fractions[idx - 1])

    def quantile(self, q: float) -> float:
        """Smallest value v with P(X <= v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        idx = int(np.searchsorted(self.fractions, q, side="left"))
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])

    def share_at_most(self, x: float) -> float:
        """Alias of :meth:`at`, reads better for 'near-zero share' checks."""
        return self.at(x)


def empirical_cdf(values: np.ndarray) -> CDF:
    """Build the ECDF of a sample (NaNs dropped)."""
    arr = np.asarray(values, dtype=np.float64)
    arr = np.sort(arr[~np.isnan(arr)])
    if arr.size == 0:
        raise ValueError("empirical_cdf of an empty sample")
    uniq, counts = np.unique(arr, return_counts=True)
    fractions = np.cumsum(counts) / arr.size
    return CDF(values=uniq, fractions=fractions)
