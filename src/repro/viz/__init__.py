"""Text-based figure substrate: the data behind Figs. 1–5, plus rendering."""

from .ascii import bar_chart, box_chart, cdf_chart, series_table
from .boxstats import BoxStats, box_stats
from .cdf import CDF, empirical_cdf
from .scatter import RuleScatter, pruning_scatter, rule_scatter

__all__ = [
    "CDF",
    "empirical_cdf",
    "BoxStats",
    "box_stats",
    "RuleScatter",
    "rule_scatter",
    "pruning_scatter",
    "bar_chart",
    "cdf_chart",
    "box_chart",
    "series_table",
]
