"""Rule scatter data (Fig. 3: support × lift, before vs after pruning)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import AssociationRule

__all__ = ["RuleScatter", "rule_scatter", "pruning_scatter"]


@dataclass(frozen=True, slots=True)
class RuleScatter:
    """Point cloud of rules in (support, lift[, confidence]) space."""

    support: np.ndarray
    lift: np.ndarray
    confidence: np.ndarray

    def __len__(self) -> int:
        return self.support.shape[0]

    def lift_histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of lift values — the reduction Fig. 3 visualises is
        concentrated at low lift."""
        return np.histogram(self.lift, bins=bins)


def rule_scatter(rules: list[AssociationRule]) -> RuleScatter:
    """Extract scatter coordinates from a rule list."""
    return RuleScatter(
        support=np.asarray([r.support for r in rules], dtype=np.float64),
        lift=np.asarray([r.lift for r in rules], dtype=np.float64),
        confidence=np.asarray([r.confidence for r in rules], dtype=np.float64),
    )


def pruning_scatter(
    before: list[AssociationRule], after: list[AssociationRule]
) -> dict[str, RuleScatter]:
    """The two panels of Fig. 3."""
    return {"before": rule_scatter(before), "after": rule_scatter(after)}
