"""TransactionDatabase ⇄ shared-memory segment.

Publishing places the CSR arrays (``indptr``, ``indices``), the packed
uint64 bitmaps, and the vocabulary (a JSON blob) into one segment named
by the database's content fingerprint.  Attaching rebuilds a
:class:`~repro.core.transactions.TransactionDatabase` whose arrays are
read-only zero-copy views of the segment and whose bitmap cache is
pre-seeded with a view-backed :class:`~repro.core.bitmap.PackedBitmaps`
— so a mining worker that attaches never re-derives a vertical
representation, exactly the property fork inheritance used to provide.

Publishing memoises by fingerprint (a small LRU of live leases), so the
engine mining the same content repeatedly pays the publish memcpy once;
evicted leases unlink their name immediately (attached workers keep
their mappings — POSIX frees the pages when the last mapping closes).
"""

from __future__ import annotations

import json
from collections import OrderedDict

from ..core.bitmap import PackedBitmaps
from ..core.items import Item, ItemVocabulary
from ..core.transactions import TransactionDatabase
from .segment import SegmentError, SegmentLease, attach_segment, publish_segment

__all__ = ["publish_database", "attach_database", "clear_database_leases"]

KIND = "d"

#: live database leases by fingerprint; mining loops re-publish the same
#: database, so keep the last few around instead of re-copying bitmaps
_LEASE_CACHE: "OrderedDict[str, SegmentLease]" = OrderedDict()
_LEASE_CACHE_MAX = 2


def publish_database(
    db: TransactionDatabase, *, generation: int = 0
) -> SegmentLease:
    """Publish *db* (CSR + bitmaps + vocabulary); memoised by fingerprint."""
    fingerprint = db.fingerprint()
    lease = _LEASE_CACHE.get(fingerprint)
    if lease is not None:
        _LEASE_CACHE.move_to_end(fingerprint)
        return lease
    bitmaps = db.bitmaps()
    vocab_blob = json.dumps(
        [[item.feature, item.value] for item in db.vocabulary]
    ).encode()
    lease = publish_segment(
        KIND,
        fingerprint,
        arrays={
            "indptr": db.indptr,
            "indices": db.indices,
            "bitmap_words": bitmaps.words,
        },
        blobs={"vocabulary": vocab_blob},
        meta={"n_transactions": len(db), "n_items": db.n_items},
        generation=generation,
    )
    _LEASE_CACHE[fingerprint] = lease
    while len(_LEASE_CACHE) > _LEASE_CACHE_MAX:
        _, evicted = _LEASE_CACHE.popitem(last=False)
        evicted.unlink()
    return lease


def clear_database_leases() -> None:
    """Unlink every cached database lease (tests, explicit drains)."""
    while _LEASE_CACHE:
        _, lease = _LEASE_CACHE.popitem(last=False)
        lease.unlink()


def attach_database(name: str) -> TransactionDatabase:
    """Attach a published database as read-only zero-copy views.

    The returned database's ``indptr``/``indices`` and bitmap words are
    views straight into the segment (writes raise), its fingerprint
    cache is pre-seeded from the manifest, and the segment handle rides
    along on :attr:`~TransactionDatabase.shm_segment` so the mapping
    outlives any scope the views escape to.
    """
    seg = attach_segment(name)
    if seg.kind != KIND:
        seg.close()
        raise SegmentError(
            f"segment {name} holds kind {seg.kind!r}, expected a database"
        )
    try:
        vocabulary = ItemVocabulary(
            Item(feature, value)
            for feature, value in json.loads(seg.blob_bytes("vocabulary"))
        )
        db = TransactionDatabase(
            vocabulary, seg.arrays["indptr"], seg.arrays["indices"]
        )
        n = len(db)
        db._bitmaps_cache = PackedBitmaps(seg.arrays["bitmap_words"], n)
        db._fingerprint_cache = seg.fingerprint
        db.shm_segment = seg
        return db
    except (KeyError, ValueError) as exc:
        seg.close()
        raise SegmentError(f"segment {name}: bad database payload: {exc}") from exc
