"""Shared-memory segments: format, naming, lifecycle, GC.

One segment is one immutable artifact.  The byte layout is::

    [0:4)    magic  b"RSHM"
    [4:8)    schema version, uint32 little-endian
    [8:16)   manifest length in bytes, uint64 little-endian
    [16:16+L) manifest — UTF-8 JSON:
              {"schema": 1, "kind": ..., "fingerprint": ...,
               "generation": ..., "owner_pid": ...,
               "arrays": [{"name", "dtype", "shape", "offset", "nbytes"}],
               "blobs":  [{"name", "offset", "nbytes"}],
               "meta": {...}}
    payload  starts at the first 64-byte boundary past the manifest;
             every array/blob offset in the manifest is payload-relative
             and itself 64-byte aligned, so attached numpy views are
             aligned no matter what precedes them.

Naming is content-addressed and generation-tagged::

    rsm.<kind>.<fingerprint[:10]>.<owner_pid>.g<generation>

Short on purpose — macOS caps POSIX shm names at 31 characters — and
self-describing enough that the stale-segment GC never has to map a
segment: the owner pid is in the name, so startup GC just unlinks any
``rsm.*`` entry in ``/dev/shm`` whose owner is no longer alive.

Lifecycle:

* a :class:`SegmentLease` is the *owner* handle: it registers in a
  module-level table whose atexit hook unlinks everything the process
  still owns, so a drained service or finished mining run leaves
  nothing behind; explicit :meth:`SegmentLease.unlink` is used by the
  cluster parent to retire the previous generation right after a
  successful hot-swap (POSIX keeps the memory alive for every process
  still attached — unlink only removes the name);
* an :class:`AttachedSegment` is a *reader* handle: it is unregistered
  from ``multiprocessing.resource_tracker`` immediately (on 3.13+ via
  ``track=False``), because a tracked attachment would unlink the
  owner's segment when the attaching process exits — the classic
  resource-tracker foot-gun for shared segments;
* :func:`gc_stale_segments` sweeps orphans from crashed owners (SIGKILL
  skips atexit) and runs at cluster startup.
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import sys
import weakref
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "SegmentError",
    "SegmentLease",
    "AttachedSegment",
    "publish_segment",
    "attach_segment",
    "shm_available",
    "gc_stale_segments",
    "list_segments",
    "unlink_all_leases",
]

SCHEMA_VERSION = 1

_MAGIC = b"RSHM"
_HEADER = struct.Struct("<4sIQ")  # magic, schema, manifest length
_ALIGN = 64

#: segment name prefix; everything the GC considers ours starts with it
NAME_PREFIX = "rsm."

#: where POSIX shared memory is enumerable (Linux); GC is a no-op elsewhere
_SHM_DIR = "/dev/shm"

#: environment switch disabling the whole data plane (``--no-shm``)
NO_SHM_ENV = "REPRO_NO_SHM"


class SegmentError(RuntimeError):
    """A segment could not be published, attached, or understood."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _open_untracked(name: str, *, create: bool = False, size: int = 0):
    """Open a SharedMemory handle that the resource tracker will not reap.

    Nothing may stay tracked: the tracker "cleans up" registered
    segments when the *last* process sharing it exits, which would
    unlink a segment the owner is still serving from — and its cache is
    keyed by bare name, so even an attach in another process would
    clobber the owner's registration.  Python 3.13 grew ``track=False``;
    earlier versions need the explicit unregister after the fact (and
    :func:`_unlink_handle` to keep ``unlink`` from re-notifying the
    tracker).  Orphans from crashed owners are instead reaped by
    :func:`gc_stale_segments`.
    """
    from multiprocessing import shared_memory

    if sys.version_info >= (3, 13):  # pragma: no cover - version dependent
        return shared_memory.SharedMemory(
            name=name, create=create, size=size, track=False
        )
    shm = shared_memory.SharedMemory(name=name, create=create, size=size)
    try:  # pragma: no cover - version/platform dependent
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


def _unlink_handle(shm) -> None:
    """Unlink without notifying the resource tracker.

    This process never left the segment registered (see
    :func:`_open_untracked`), so ``SharedMemory.unlink``'s unregister
    call would make the tracker print a spurious KeyError at shutdown.
    On 3.13+ ``track=False`` already suppresses it; earlier versions go
    straight to ``shm_unlink``.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - version dependent
        shm.unlink()
        return
    try:
        import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except ImportError:  # pragma: no cover - non-POSIX platform
        shm.unlink()


def _close_handle(shm) -> None:
    """Close a SharedMemory handle, tolerating live exported views.

    numpy views pin the underlying buffer, so ``close()`` raises
    BufferError until the last view dies — which at process exit may be
    never (module teardown order is arbitrary), leaving ``__del__`` to
    print an ignored exception.  On BufferError the handle's references
    are dropped instead: the fd closes here, the mapping is reclaimed by
    process exit, and ``__del__`` becomes a no-op.
    """
    try:
        shm.close()
    except OSError:  # pragma: no cover - already closed
        pass
    except BufferError:
        shm._buf = None
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            shm._fd = -1


#: leases owned by this process, by segment name; the atexit hook and
#: :func:`unlink_all_leases` (SIGTERM drain paths) unlink every survivor
_LEASES: dict[str, "SegmentLease"] = {}

#: live attachments, weakly held — closed by the atexit hook so handles
#: with still-exported numpy views never reach ``__del__`` noisily
_ATTACHMENTS: "weakref.WeakSet[AttachedSegment]" = weakref.WeakSet()


def _atexit_unlink() -> None:  # pragma: no cover - exercised via subprocesses
    for attached in list(_ATTACHMENTS):
        attached.close()
    unlink_all_leases()


atexit.register(_atexit_unlink)


def unlink_all_leases() -> int:
    """Unlink every segment this process still owns; returns the count."""
    n = 0
    for lease in list(_LEASES.values()):
        lease.unlink()
        n += 1
    return n


class SegmentLease:
    """Owner handle of one published segment."""

    __slots__ = ("name", "kind", "fingerprint", "generation", "nbytes", "_shm")

    def __init__(self, shm, name: str, kind: str, fingerprint: str, generation: int):
        self._shm = shm
        self.name = name
        self.kind = kind
        self.fingerprint = fingerprint
        self.generation = generation
        self.nbytes = shm.size

    def unlink(self) -> None:
        """Remove the name and drop the owner mapping (idempotent).

        Processes already attached keep their zero-copy views — POSIX
        frees the memory only when the last mapping closes.
        """
        shm, self._shm = self._shm, None
        _LEASES.pop(self.name, None)
        if shm is None:
            return
        try:
            _unlink_handle(shm)
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass
        _close_handle(shm)

    def __repr__(self) -> str:
        return (
            f"SegmentLease(name={self.name!r}, kind={self.kind!r}, "
            f"generation={self.generation}, nbytes={self.nbytes})"
        )


class AttachedSegment:
    """Reader handle: manifest plus read-only zero-copy views.

    Keep the instance alive as long as any of its ``arrays`` views is in
    use — the views borrow the segment mapping.  :meth:`close` drops the
    mapping (it never unlinks; only the owner does that) and is safe to
    skip: a worker that holds its attachment for its whole lifetime lets
    process exit clean up.
    """

    __slots__ = (
        "name",
        "kind",
        "fingerprint",
        "generation",
        "owner_pid",
        "meta",
        "arrays",
        "blobs",
        "_shm",
        "__weakref__",
    )

    def __init__(self, shm, name: str, manifest: dict, payload_offset: int):
        self._shm = shm
        self.name = name
        self.kind = manifest["kind"]
        self.fingerprint = manifest["fingerprint"]
        self.generation = int(manifest.get("generation", 0))
        self.owner_pid = int(manifest.get("owner_pid", 0))
        self.meta = dict(manifest.get("meta") or {})
        self.arrays: dict[str, np.ndarray] = {}
        self.blobs: dict[str, memoryview] = {}
        buf = shm.buf
        for spec in manifest.get("arrays", ()):
            start = payload_offset + int(spec["offset"])
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=buf,
                offset=start,
            )
            view.flags.writeable = False
            self.arrays[spec["name"]] = view
        for spec in manifest.get("blobs", ()):
            start = payload_offset + int(spec["offset"])
            self.blobs[spec["name"]] = buf[start : start + int(spec["nbytes"])]
        _ATTACHMENTS.add(self)

    def blob_bytes(self, name: str) -> bytes:
        """One blob, copied out (the only copy the attach path makes)."""
        return bytes(self.blobs[name])

    def close(self) -> None:
        """Drop the mapping; no-op if views are still exported."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self.arrays = {}
        self.blobs = {}
        _ATTACHMENTS.discard(self)
        _close_handle(shm)

    def __del__(self) -> None:
        # a hot-swap drops the previous index (and this attachment) while
        # its numpy views may still be reachable; going through close()
        # neutralises the handle so SharedMemory.__del__ never raises a
        # noisy BufferError over the still-exported buffer
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __repr__(self) -> str:
        return (
            f"AttachedSegment(name={self.name!r}, kind={self.kind!r}, "
            f"arrays={sorted(self.arrays)})"
        )


_CAPABILITY: bool | None = None


def shm_available() -> bool:
    """Can (and may) this process use the shared-memory data plane?

    ``REPRO_NO_SHM`` wins unconditionally (checked per call, so tests
    and the ``--no-shm`` flag can flip it at runtime); the platform
    capability probe — create, map, unlink one page — runs once.
    """
    if os.environ.get(NO_SHM_ENV):
        return False
    global _CAPABILITY
    if _CAPABILITY is None:
        try:
            probe = _open_untracked(
                f"{NAME_PREFIX}probe.{os.getpid()}", create=True, size=_ALIGN
            )
            _unlink_handle(probe)
            probe.close()
            _CAPABILITY = True
        except Exception:  # pragma: no cover - platform without POSIX shm
            _CAPABILITY = False
    return _CAPABILITY


def segment_name(kind: str, fingerprint: str, generation: int) -> str:
    """Content-addressed, generation-tagged, owner-stamped segment name."""
    return f"{NAME_PREFIX}{kind}.{fingerprint[:10]}.{os.getpid()}.g{generation}"


def publish_segment(
    kind: str,
    fingerprint: str,
    arrays: Mapping[str, np.ndarray],
    blobs: Mapping[str, bytes] | None = None,
    meta: Mapping[str, object] | None = None,
    *,
    generation: int = 0,
) -> SegmentLease:
    """Create a segment holding *arrays* and *blobs*; returns the lease.

    The payload is written once (one memcpy per array); the name is
    derived from *fingerprint* so equal content published by the same
    process in the same generation reuses the existing lease.
    """
    name = segment_name(kind, fingerprint, generation)
    existing = _LEASES.get(name)
    if existing is not None:
        return existing
    blobs = dict(blobs or {})
    array_specs = []
    blob_specs = []
    offset = 0
    packed: list[tuple[int, np.ndarray]] = []
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        array_specs.append(
            {
                "name": key,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            }
        )
        packed.append((offset, array))
        offset = _align(offset + int(array.nbytes))
    blob_payload: list[tuple[int, bytes]] = []
    for key, blob in blobs.items():
        blob_specs.append({"name": key, "offset": offset, "nbytes": len(blob)})
        blob_payload.append((offset, blob))
        offset = _align(offset + len(blob))
    manifest = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "generation": int(generation),
            "owner_pid": os.getpid(),
            "arrays": array_specs,
            "blobs": blob_specs,
            "meta": dict(meta or {}),
        },
        sort_keys=True,
    ).encode()
    payload_offset = _align(_HEADER.size + len(manifest))
    total = max(payload_offset + offset, _ALIGN)
    try:
        shm = _open_untracked(name, create=True, size=total)
    except FileExistsError:
        # same content, same generation, same pid — but no live lease
        # (e.g. a previous interpreter with this pid crashed): replace it
        try:
            stale = _open_untracked(name)
            _unlink_handle(stale)
            stale.close()
            shm = _open_untracked(name, create=True, size=total)
        except OSError as exc:  # pragma: no cover - racing publisher
            raise SegmentError(f"cannot publish segment {name}: {exc}") from exc
    except OSError as exc:
        raise SegmentError(f"cannot publish segment {name}: {exc}") from exc
    buf = shm.buf
    buf[: _HEADER.size] = _HEADER.pack(_MAGIC, SCHEMA_VERSION, len(manifest))
    buf[_HEADER.size : _HEADER.size + len(manifest)] = manifest
    for off, array in packed:
        start = payload_offset + off
        dst = np.ndarray(
            array.shape, dtype=array.dtype, buffer=buf, offset=start
        )
        dst[...] = array
    for off, blob in blob_payload:
        start = payload_offset + off
        buf[start : start + len(blob)] = blob
    lease = SegmentLease(shm, name, kind, fingerprint, int(generation))
    _LEASES[name] = lease
    return lease


def attach_segment(name: str) -> AttachedSegment:
    """Map an existing segment and expose read-only zero-copy views."""
    try:
        shm = _open_untracked(name)
    except (FileNotFoundError, OSError) as exc:
        raise SegmentError(f"segment {name} is not attachable: {exc}") from exc
    try:
        header = bytes(shm.buf[: _HEADER.size])
        magic, schema, manifest_len = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise SegmentError(f"segment {name}: bad magic {magic!r}")
        if schema != SCHEMA_VERSION:
            raise SegmentError(
                f"segment {name}: schema {schema} unsupported "
                f"(this build reads {SCHEMA_VERSION})"
            )
        raw = bytes(shm.buf[_HEADER.size : _HEADER.size + manifest_len])
        try:
            manifest = json.loads(raw)
        except ValueError as exc:
            raise SegmentError(f"segment {name}: bad manifest: {exc}") from exc
        payload_offset = _align(_HEADER.size + manifest_len)
        return AttachedSegment(shm, name, manifest, payload_offset)
    except SegmentError:
        shm.close()
        raise


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    except OSError:  # pragma: no cover - defensive
        return False
    return True


def list_segments(kinds: Iterable[str] | None = None) -> list[str]:
    """Names of every ``rsm.*`` segment currently published on this host."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - no /dev/shm
        return []
    wanted = None if kinds is None else set(kinds)
    out = []
    for entry in entries:
        if not entry.startswith(NAME_PREFIX):
            continue
        parts = entry.split(".")
        if wanted is not None and (len(parts) < 2 or parts[1] not in wanted):
            continue
        out.append(entry)
    return sorted(out)


def gc_stale_segments() -> list[str]:
    """Unlink segments whose owner process is gone; returns what was removed.

    The owner pid lives in the segment *name*, so the sweep never maps a
    segment.  Runs at cluster/service startup to mop up after crashed
    or SIGKILLed owners (clean exits unlink via the atexit hook).
    """
    removed: list[str] = []
    for entry in list_segments():
        parts = entry.split(".")
        # rsm.<kind>.<hash>.<pid>.g<gen>
        if len(parts) < 5:
            continue
        try:
            pid = int(parts[3])
        except ValueError:
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
            removed.append(entry)
        except OSError:  # pragma: no cover - raced another GC
            pass
    return removed
