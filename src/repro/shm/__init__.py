"""Shared-memory zero-copy data plane.

The two big immutable artifacts of this codebase — a mined
:class:`~repro.core.transactions.TransactionDatabase` (CSR arrays plus
packed uint64 bitmaps) and a compiled rule plane (RuleTable columns,
:class:`~repro.serve.batchmatch.BatchMaskKernel` masks, per-rule wire
JSON) — are published once into ``multiprocessing.shared_memory``
segments and attached read-only by every worker process that needs them:

* mining's :class:`~repro.engine.backends.ProcessBackend` ships a
  segment *name* to its phase-1 workers instead of relying on fork
  inheritance, so SON parallelises under any start method (spawn
  included);
* the serving fleet's hot-swap ships a segment name through
  ``broadcast_reload``, so each shard attaches the already-compiled
  rule plane in milliseconds and fleet RSS stays ~1× the book instead
  of N×.

Layout, naming and lifecycle live in :mod:`repro.shm.segment`; the two
artifact codecs are :mod:`repro.shm.database` and
:mod:`repro.shm.ruleplane`.  Everything degrades gracefully: when
shared memory is unavailable (or ``REPRO_NO_SHM`` is set / ``--no-shm``
passed) callers fall back to the per-worker load paths that predate
this module, which are also retained as the CI equivalence oracle.
"""

from .segment import (
    SegmentError,
    SegmentLease,
    AttachedSegment,
    attach_segment,
    publish_segment,
    shm_available,
    gc_stale_segments,
    list_segments,
    unlink_all_leases,
)
from .database import attach_database, publish_database
from .ruleplane import attach_rule_plane, publish_rule_plane

__all__ = [
    "SegmentError",
    "SegmentLease",
    "AttachedSegment",
    "attach_segment",
    "publish_segment",
    "shm_available",
    "gc_stale_segments",
    "list_segments",
    "unlink_all_leases",
    "attach_database",
    "publish_database",
    "attach_rule_plane",
    "publish_rule_plane",
]
