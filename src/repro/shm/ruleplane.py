"""Compiled rule plane ⇄ shared-memory segment.

A hot-swap used to cost every shard the same work: parse the rulebook
JSON, canonical-sort the table, pack the bitmask matrices, encode 2·N
wire fragments.  Publishing moves all of that to the cluster parent:
one segment holds the canonical :class:`~repro.core.ruletable.RuleTable`
columns, the :class:`~repro.serve.batchmatch.BatchMaskKernel` mask
matrices, and the concatenated per-rule wire JSON with a character
offset table — everything a serving index needs that is expensive to
rebuild.  A shard attaches in milliseconds: array views are zero-copy,
the only decode is one UTF-8 pass over the wire blob, and construction
goes through :meth:`~repro.serve.index.RuleIndex.from_compiled`, which
trusts the published canonical order instead of re-sorting.

The wire offset table is in *characters*, not bytes — fragments are
sliced out of the decoded string, so multi-byte item spellings can never
tear a fragment at a byte boundary.

Imports from ``repro.serve`` stay inside the functions: this module is
below the serving layer in the dependency order (serve and engine both
import ``repro.shm``), so pulling serve in at import time would cycle.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

import numpy as np

from ..core.items import Item, ItemVocabulary
from ..core.ruletable import RuleTable
from .segment import SegmentError, SegmentLease, attach_segment, publish_segment

if TYPE_CHECKING:  # pragma: no cover - type-only (serve imports are lazy)
    from ..serve.index import RuleIndex

__all__ = ["publish_rule_plane", "attach_rule_plane", "rule_plane_fingerprint"]

KIND = "r"


def rule_plane_fingerprint(table: RuleTable) -> str:
    """Content hash of a canonical rule table (columns + vocabulary)."""
    digest = hashlib.blake2b(digest_size=16)
    for column in (
        table.ant_indptr, table.ant_ids, table.cons_indptr, table.cons_ids,
        table.support, table.confidence, table.lift,
        table.leverage, table.conviction,
    ):
        digest.update(np.ascontiguousarray(column).tobytes())
    for item in table.vocabulary:
        digest.update(str(item).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def publish_rule_plane(
    index: "RuleIndex",
    *,
    generation: int = 0,
    version_tag: str | None = None,
) -> SegmentLease:
    """Publish one compiled index as a rule-plane segment.

    The index's scalar structures are forced first if needed (wire
    fragments are part of the plane), then every compiled artifact goes
    into the segment: 9 table columns, 2 mask matrices, the wire blob
    and its character-offset table, and the vocabulary.
    """
    index._build_scalar()  # wire fragments must exist to publish them
    table = index.table
    kernel = index.kernel
    n = len(table)
    offsets = np.zeros(2 * n + 1, dtype=np.int64)
    parts: list[str] = []
    pos = 0
    for i, (miss_json, hit_json) in enumerate(index._wire_json):
        parts.append(miss_json)
        pos += len(miss_json)
        offsets[2 * i + 1] = pos
        parts.append(hit_json)
        pos += len(hit_json)
        offsets[2 * i + 2] = pos
    wire_blob = "".join(parts).encode("utf-8")
    vocab_blob = json.dumps(
        [[item.feature, item.value] for item in table.vocabulary]
    ).encode()
    fingerprint = rule_plane_fingerprint(table)
    return publish_segment(
        KIND,
        fingerprint,
        arrays={
            "ant_indptr": table.ant_indptr,
            "ant_ids": table.ant_ids,
            "cons_indptr": table.cons_indptr,
            "cons_ids": table.cons_ids,
            "support": table.support,
            "confidence": table.confidence,
            "lift": table.lift,
            "leverage": table.leverage,
            "conviction": table.conviction,
            "ant_masks": kernel.ant_masks,
            "cons_masks": kernel.cons_masks,
            "wire_offsets": offsets,
        },
        blobs={"vocabulary": vocab_blob, "wire": wire_blob},
        meta={
            "n_rules": n,
            "version_tag": version_tag,
            "n_skipped_lookups": table.n_skipped_lookups,
        },
        generation=generation,
    )


def attach_rule_plane(name: str) -> tuple["RuleIndex", dict]:
    """Attach a published rule plane; returns ``(index, segment meta)``.

    The returned index's table columns and kernel masks are read-only
    zero-copy views of the segment; the segment handle rides along on
    ``index.shm_segment`` so the mapping lives as long as the index.
    """
    from ..serve.batchmatch import BatchMaskKernel
    from ..serve.index import RuleIndex

    seg = attach_segment(name)
    if seg.kind != KIND:
        seg.close()
        raise SegmentError(
            f"segment {name} holds kind {seg.kind!r}, expected a rule plane"
        )
    try:
        vocabulary = ItemVocabulary(
            Item(feature, value)
            for feature, value in json.loads(seg.blob_bytes("vocabulary"))
        )
        arrays = seg.arrays
        table = RuleTable(
            vocabulary,
            arrays["ant_indptr"], arrays["ant_ids"],
            arrays["cons_indptr"], arrays["cons_ids"],
            arrays["support"], arrays["confidence"], arrays["lift"],
            arrays["leverage"], arrays["conviction"],
            n_skipped_lookups=int(seg.meta.get("n_skipped_lookups", 0)),
        )
        kernel = BatchMaskKernel.from_masks(
            arrays["ant_masks"],
            arrays["cons_masks"],
            np.diff(table.ant_indptr).astype(np.int32),
            np.diff(table.cons_indptr).astype(np.int32),
        )
        wire_text = seg.blob_bytes("wire").decode("utf-8")
        offsets = arrays["wire_offsets"]
        wire_json = [
            (
                wire_text[offsets[2 * i] : offsets[2 * i + 1]],
                wire_text[offsets[2 * i + 1] : offsets[2 * i + 2]],
            )
            for i in range(len(table))
        ]
        index = RuleIndex.from_compiled(table, kernel=kernel, wire_json=wire_json)
        index.shm_segment = seg
        return index, dict(seg.meta)
    except (KeyError, ValueError) as exc:
        seg.close()
        raise SegmentError(f"segment {name}: bad rule plane payload: {exc}") from exc
