"""High-level mining orchestration: database → frequent itemsets → rules.

This module wires the pieces of Sec. III together behind one entry point:

1. frequent-itemset extraction (FP-Growth by default, min-support 5 %,
   max length 5);
2. rule generation with the minimum-lift filter (1.5);
3. optional keyword restriction and Conditions 1–4 pruning.

:class:`MiningConfig` carries every knob with the paper's defaults, so the
three case studies run with literally identical parameters — one of the
paper's headline claims ("our empirical studies across three distinct
datacenter traces consistently applied identical support and lift
thresholds").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Literal

from .apriori import apriori
from .eclat import eclat
from .fpgrowth import fpgrowth
from .items import Item, as_item
from .itemsets import FrequentItemsets
from .pruning import PruningConfig, PruningReport, prune_rule_table
from .rules import AssociationRule, generate_rule_table, generate_rules
from .ruletable import RuleTable
from .transactions import TransactionDatabase

__all__ = [
    "MiningConfig",
    "KeywordRuleSet",
    "mine_frequent_itemsets",
    "mine_rules",
    "mine_keyword_rules",
    "ALGORITHMS",
]

#: algorithm registry shared with the parallel miner and benchmarks
ALGORITHMS: dict[str, Callable[..., dict[frozenset[int], int]]] = {
    "fpgrowth": fpgrowth,
    "apriori": apriori,
    "eclat": eclat,
}


@dataclass(frozen=True, slots=True)
class MiningConfig:
    """All parameters of the analysis workflow (paper defaults)."""

    min_support: float = 0.05
    max_len: int | None = 5
    min_lift: float = 1.5
    min_confidence: float = 0.0
    algorithm: Literal["fpgrowth", "apriori", "eclat"] = "fpgrowth"
    c_lift: float = 1.5
    c_supp: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_support <= 1.0:
            raise ValueError("min_support must be in [0, 1]")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; have {sorted(ALGORITHMS)}"
            )
        if self.min_lift < 0:
            raise ValueError(f"min_lift must be >= 0, got {self.min_lift}")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.max_len is not None and self.max_len < 1:
            raise ValueError(f"max_len must be >= 1 (or None), got {self.max_len}")
        if self.c_lift <= 0:
            raise ValueError(f"c_lift must be > 0, got {self.c_lift}")
        if self.c_supp <= 0:
            raise ValueError(f"c_supp must be > 0, got {self.c_supp}")

    def with_(self, **overrides) -> "MiningConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def itemset_key(self) -> tuple:
        """The fields that determine a frequent-itemset result.

        Rule-level knobs (lift, confidence, pruning constants) do not
        change which itemsets are frequent, so the engine cache keys on
        this projection only — a lift sweep over one trace is a string of
        cache hits.
        """
        return (self.min_support, self.max_len, self.algorithm)

    @property
    def pruning(self) -> PruningConfig:
        return PruningConfig(c_lift=self.c_lift, c_supp=self.c_supp)


@dataclass(frozen=True, slots=True)
class KeywordRuleSet:
    """The outcome of a keyword-centric mining pass.

    ``cause`` rules carry the keyword in the consequent ("C" rows of the
    paper's tables); ``characteristic`` rules carry it in the antecedent
    ("A" rows).  ``table`` holds the surviving rules in columnar form
    (pruned :class:`RuleTable`, canonical order) when the pass ran
    through the table pipeline; persistence and serving consume it
    without re-materialising objects.
    """

    keyword: Item
    cause: tuple[AssociationRule, ...]
    characteristic: tuple[AssociationRule, ...]
    report: PruningReport
    n_rules_before_pruning: int
    table: RuleTable | None = field(default=None, compare=False)

    @property
    def all_rules(self) -> tuple[AssociationRule, ...]:
        return self.cause + self.characteristic

    def __len__(self) -> int:
        return len(self.cause) + len(self.characteristic)

    def __str__(self) -> str:
        return (
            f"KeywordRuleSet(keyword={self.keyword.render()!r}, "
            f"cause={len(self.cause)}, characteristic={len(self.characteristic)})"
        )


def mine_frequent_itemsets(
    db: TransactionDatabase, config: MiningConfig = MiningConfig()
) -> FrequentItemsets:
    """Frequent itemsets of *db*, via the process-wide mining engine.

    This is the one-call convenience path: it routes through
    :func:`repro.engine.default_engine`, so repeated calls on identical
    database content (support sweeps, multi-keyword studies, benchmark
    rounds) are answered from the content-addressed itemset cache.
    Callers needing a specific backend or an isolated cache build their
    own :class:`repro.engine.MiningEngine`.
    """
    # imported lazily: repro.engine sits one layer above repro.core
    from ..engine import default_engine

    return default_engine().mine(db, config)


def mine_rules(
    db: TransactionDatabase,
    config: MiningConfig = MiningConfig(),
    keyword: Item | str | None = None,
) -> list[AssociationRule]:
    """Mine lift-filtered rules; optionally restricted to a keyword."""
    itemsets = mine_frequent_itemsets(db, config)
    keyword_ids = None
    if keyword is not None:
        kw_id = db.vocabulary.get_id(as_item(keyword))
        if kw_id is None:
            return []
        keyword_ids = (kw_id,)
    return generate_rules(
        itemsets,
        min_lift=config.min_lift,
        min_confidence=config.min_confidence,
        keyword_ids=keyword_ids,
    )


def mine_keyword_rules(
    db: TransactionDatabase,
    keyword: Item | str,
    config: MiningConfig = MiningConfig(),
    itemsets: FrequentItemsets | None = None,
) -> KeywordRuleSet:
    """Full keyword workflow: mine → filter → prune → split into C/A rules.

    Passing a precomputed *itemsets* lets a caller amortise one mining
    pass over several keywords (the case studies investigate both GPU
    underutilisation and failure on the same trace).
    """
    kw = as_item(keyword)
    if itemsets is None:
        itemsets = mine_frequent_itemsets(db, config)
    kw_id = db.vocabulary.get_id(kw)
    if kw_id is None:
        # keyword never appears in the trace; nothing to analyse
        return KeywordRuleSet(
            keyword=kw,
            cause=(),
            characteristic=(),
            report=PruningReport(),
            n_rules_before_pruning=0,
        )
    table = generate_rule_table(
        itemsets,
        min_lift=config.min_lift,
        min_confidence=config.min_confidence,
        keyword_ids=(kw_id,),
    )
    kept_table, report = prune_rule_table(table, kw, config.pruning)
    kept = kept_table.to_rules()
    cause = tuple(r for r in kept if kw in r.consequent)
    characteristic = tuple(r for r in kept if kw in r.antecedent)
    return KeywordRuleSet(
        keyword=kw,
        cause=cause,
        characteristic=characteristic,
        report=report,
        n_rules_before_pruning=len(table),
        table=kept_table,
    )
