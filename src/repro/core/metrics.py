"""Rule quality metrics (Sec. III-B of the paper).

All metrics are derived from three supports: ``supp(X)``, ``supp(Y)`` and
``supp(X ∪ Y)``.  Besides the paper's support / confidence / lift triple we
provide leverage and conviction, two standard complements often consulted
when triaging rules.

Functions take *relative* supports in ``[0, 1]`` and are defined for edge
cases as follows:

* ``confidence`` is 0 when the antecedent never occurs;
* ``lift`` is 0 when either side never occurs (an absent rule carries no
  dependence signal), ∞ never arises because supp(X∪Y) ≤ min side;
* ``conviction`` is ``inf`` for confidence 1 (the textbook convention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["confidence", "lift", "leverage", "conviction", "RuleMetrics", "compute_metrics"]


def confidence(supp_xy: float, supp_x: float) -> float:
    """conf(X ⇒ Y) = supp(X ∪ Y) / supp(X)  (Eq. 3)."""
    if supp_x <= 0.0:
        return 0.0
    return supp_xy / supp_x


def lift(supp_xy: float, supp_x: float, supp_y: float) -> float:
    """lift(X ⇒ Y) = supp(X ∪ Y) / (supp(X) · supp(Y))  (Eq. 4).

    Symmetric in X and Y; equals 1 under independence.
    """
    denom = supp_x * supp_y
    if denom <= 0.0:
        return 0.0
    return supp_xy / denom


def leverage(supp_xy: float, supp_x: float, supp_y: float) -> float:
    """leverage(X ⇒ Y) = supp(X ∪ Y) − supp(X)·supp(Y).

    The additive analogue of lift: 0 under independence.
    """
    return supp_xy - supp_x * supp_y


def conviction(supp_xy: float, supp_x: float, supp_y: float) -> float:
    """conviction(X ⇒ Y) = (1 − supp(Y)) / (1 − conf(X ⇒ Y)).

    Sensitive to rule direction (unlike lift); ∞ for exact implications.
    """
    conf = confidence(supp_xy, supp_x)
    if conf >= 1.0:
        return math.inf
    return (1.0 - supp_y) / (1.0 - conf)


@dataclass(frozen=True, slots=True)
class RuleMetrics:
    """The full metric bundle for one rule."""

    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float


def compute_metrics(supp_xy: float, supp_x: float, supp_y: float) -> RuleMetrics:
    """Compute every metric of a rule from its three supports."""
    for name, value in (("supp_xy", supp_xy), ("supp_x", supp_x), ("supp_y", supp_y)):
        if not 0.0 <= value <= 1.0 + 1e-12:
            raise ValueError(f"{name} must be a relative support in [0, 1], got {value}")
    return RuleMetrics(
        support=supp_xy,
        confidence=confidence(supp_xy, supp_x),
        lift=lift(supp_xy, supp_x, supp_y),
        leverage=leverage(supp_xy, supp_x, supp_y),
        conviction=conviction(supp_xy, supp_x, supp_y),
    )
