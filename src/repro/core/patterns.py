"""Condensed pattern representations: closed and maximal itemsets.

At a 5 % support floor the full frequent-itemset table can still be
large (Fig. 1: 232k itemsets for PAI); the streaming-mining literature
the paper cites (Sec. VI — CICLAD, FGC-Stream) works with *closed*
itemsets precisely to shrink it.  These filters are lossless
(closed: every frequent itemset's support is recoverable) or lossy but
minimal (maximal: only the frontier of frequency).

Definitions over a frequent-itemset table ``F``:

* ``X`` is **closed** iff no proper superset in ``F`` has the same
  support count;
* ``X`` is **maximal** iff no proper superset is in ``F`` at all.

Maximal ⊆ closed ⊆ frequent, which the property tests assert.
"""

from __future__ import annotations

from collections import defaultdict

from .itemsets import FrequentItemsets

__all__ = [
    "closed_itemsets",
    "maximal_itemsets",
    "support_of_from_closed",
]


def _by_length(counts: dict[frozenset[int], int]) -> dict[int, list[frozenset[int]]]:
    buckets: dict[int, list[frozenset[int]]] = defaultdict(list)
    for itemset in counts:
        buckets[len(itemset)].append(itemset)
    return buckets


def closed_itemsets(itemsets: FrequentItemsets) -> FrequentItemsets:
    """The closed subset of a frequent-itemset table.

    An itemset is removed when some superset one item larger has the same
    count; by anti-monotonicity it then has an equal-support superset in
    general.  O(Σ |X| · supersets) via candidate-extension lookups.
    """
    counts = itemsets.counts
    buckets = _by_length(counts)
    closed: dict[frozenset[int], int] = {}
    # group supersets by length for O(1) bucket access
    for length, members in buckets.items():
        larger = buckets.get(length + 1, [])
        # index supersets by each (itemset minus one item) to avoid the
        # quadratic all-pairs subset scan
        by_subset: dict[frozenset[int], list[frozenset[int]]] = defaultdict(list)
        for sup in larger:
            for item in sup:
                by_subset[sup - {item}].append(sup)
        for itemset in members:
            count = counts[itemset]
            if any(counts[sup] == count for sup in by_subset.get(itemset, ())):
                continue
            closed[itemset] = count
    return FrequentItemsets(
        closed,
        itemsets.vocabulary,
        itemsets.n_transactions,
        itemsets.min_support,
        itemsets.max_len,
    )


def maximal_itemsets(itemsets: FrequentItemsets) -> FrequentItemsets:
    """The maximal subset of a frequent-itemset table."""
    counts = itemsets.counts
    buckets = _by_length(counts)
    maximal: dict[frozenset[int], int] = {}
    for length, members in buckets.items():
        larger = buckets.get(length + 1, [])
        by_subset: dict[frozenset[int], set[frozenset[int]]] = defaultdict(set)
        for sup in larger:
            for item in sup:
                by_subset[sup - {item}].add(sup)
        for itemset in members:
            if by_subset.get(itemset):
                continue
            maximal[itemset] = counts[itemset]
    return FrequentItemsets(
        maximal,
        itemsets.vocabulary,
        itemsets.n_transactions,
        itemsets.min_support,
        itemsets.max_len,
    )


def support_of_from_closed(
    closed: FrequentItemsets, itemset: frozenset[int]
) -> int | None:
    """Recover the support of any frequent itemset from the closed table.

    The support of ``X`` equals the maximum support among closed supersets
    of ``X`` (its *closure*); None if no closed superset exists (i.e. X
    was not frequent).  This is the losslessness property of the closed
    representation.
    """
    best: int | None = None
    for candidate, count in closed.counts.items():
        if itemset <= candidate and (best is None or count > best):
            best = count
    return best
