"""Eclat frequent-itemset mining (Zaki, 2000) over packed TID-bitsets.

A depth-first alternative included as a second baseline: each itemset
carries its transaction-occurrence bitset (64 transactions per uint64
word), and extending an itemset is one word-wise AND followed by a
popcount — the dEclat-style vertical representation, 8× smaller and
proportionally less memory traffic than the dense boolean vectors it
replaced (see :mod:`repro.core.legacy` for that reference).  Matches
:func:`fpgrowth`/:func:`apriori` output exactly (property-tested), and
tends to win on dense, narrow databases — exactly the shape produced by
quartile-binned trace tables.
"""

from __future__ import annotations

import numpy as np

from .bitmap import kernel_timer, popcount
from .transactions import TransactionDatabase

__all__ = ["eclat"]


def eclat(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Mine all frequent itemsets; same contract as :func:`fpgrowth`."""
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support must be in [0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError("max_len must be >= 1 or None")
    n = len(db)
    if n == 0:
        return {}
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))

    item_counts = db.item_support_counts()
    frequent_items = [int(i) for i in np.flatnonzero(item_counts >= min_count)]
    words = db.bitmaps().words

    out: dict[frozenset[int], int] = {}

    def extend(prefix: tuple[int, ...], mask: np.ndarray, tail: list[int]) -> None:
        """DFS: try appending each tail item (ids ascending) to *prefix*."""
        for pos, item in enumerate(tail):
            new_mask = mask & words[item]
            count = popcount(new_mask)
            if count < min_count:
                continue
            new_prefix = prefix + (item,)
            out[frozenset(new_prefix)] = count
            if max_len is None or len(new_prefix) < max_len:
                extend(new_prefix, new_mask, tail[pos + 1 :])

    with kernel_timer("eclat-bitmap"):
        for pos, item in enumerate(frequent_items):
            out[frozenset((item,))] = int(item_counts[item])
            if max_len is None or max_len > 1:
                extend((item,), words[item], frequent_items[pos + 1 :])
    return out
