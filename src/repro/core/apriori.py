"""Apriori frequent-itemset mining (Agrawal & Srikant, 1994).

The classical baseline the paper contrasts FP-Growth against
(Sec. III-C).  Level-wise: frequent k-itemsets are joined into (k+1)
candidates, candidates with an infrequent k-subset are pruned
(anti-monotonicity of support), and survivors are counted against the
database.

Counting uses packed vertical TID-bitsets (word-wise AND + popcount via
:mod:`repro.core.bitmap`), which keeps the inner loop vectorised — the
per-transaction subset test of the textbook formulation is what makes
naive Apriori unusably slow in Python.  The *algorithmic* structure
(candidate explosion at low support) is preserved, which is what the
runtime-comparison benchmark measures.
"""

from __future__ import annotations

import numpy as np

from .bitmap import kernel_timer, popcount
from .transactions import TransactionDatabase

__all__ = ["apriori", "apriori_naive", "generate_candidates"]


def generate_candidates(frequent_k: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """F_k × F_k join with prefix sharing, plus the subset-pruning step.

    *frequent_k* must contain sorted id tuples of equal length k; returns
    sorted candidate (k+1)-tuples whose every k-subset is in *frequent_k*.
    """
    if not frequent_k:
        return []
    k = len(frequent_k[0])
    frequent_set = set(frequent_k)
    ordered = sorted(frequent_k)
    candidates: list[tuple[int, ...]] = []
    # classic join: two k-itemsets sharing the first k-1 items combine into
    # one (k+1)-itemset
    for a_idx in range(len(ordered)):
        a = ordered[a_idx]
        prefix = a[:-1]
        for b_idx in range(a_idx + 1, len(ordered)):
            b = ordered[b_idx]
            if b[:-1] != prefix:
                break  # sorted order ⇒ no later tuple shares this prefix
            candidate = a + (b[-1],)
            # prune: all k-subsets must be frequent; the two parents are by
            # construction, so check only subsets dropping one of the shared
            # prefix items
            if k == 1 or all(
                candidate[:i] + candidate[i + 1 :] in frequent_set
                for i in range(k - 1)
            ):
                candidates.append(candidate)
    return candidates


def apriori(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Mine all frequent itemsets; same contract as :func:`fpgrowth`."""
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support must be in [0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError("max_len must be >= 1 or None")
    n = len(db)
    if n == 0:
        return {}
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))

    out: dict[frozenset[int], int] = {}

    # level 1 straight from the item histogram
    item_counts = db.item_support_counts()
    frequent_1 = [int(i) for i in np.flatnonzero(item_counts >= min_count)]
    for i in frequent_1:
        out[frozenset((i,))] = int(item_counts[i])
    if max_len == 1 or not frequent_1:
        return out

    words = db.bitmaps().words
    #: itemset tuple → its packed occurrence words, reused to extend to k+1
    level_masks: dict[tuple[int, ...], np.ndarray] = {
        (i,): words[i] for i in frequent_1
    }
    frequent_k = [(i,) for i in frequent_1]
    k = 1
    with kernel_timer("apriori-bitmap"):
        while frequent_k and (max_len is None or k < max_len):
            candidates = generate_candidates(frequent_k)
            next_masks: dict[tuple[int, ...], np.ndarray] = {}
            next_frequent: list[tuple[int, ...]] = []
            for cand in candidates:
                # extend the cached k-mask of the prefix with the last item
                mask = level_masks[cand[:-1]] & words[cand[-1]]
                count = popcount(mask)
                if count >= min_count:
                    out[frozenset(cand)] = count
                    next_masks[cand] = mask
                    next_frequent.append(cand)
            level_masks = next_masks
            frequent_k = next_frequent
            k += 1
    return out


def apriori_naive(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Textbook Apriori with per-transaction subset counting.

    This is the formulation whose "exponential runtime and memory
    requirements … when the database is large" the paper cites as the
    reason to use FP-Growth (Sec. III-C): every level re-scans the whole
    database and tests each candidate against each transaction.  Kept as
    the honest baseline for the algorithm-comparison bench; the answer is
    identical to :func:`apriori` and :func:`fpgrowth` (property-tested).
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support must be in [0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError("max_len must be >= 1 or None")
    n = len(db)
    if n == 0:
        return {}
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))

    transactions = [frozenset(t.tolist()) for t in db.iter_id_transactions()]
    out: dict[frozenset[int], int] = {}

    item_counts = db.item_support_counts()
    frequent_k = sorted(
        (int(i),) for i in np.flatnonzero(item_counts >= min_count)
    )
    for (i,) in frequent_k:
        out[frozenset((i,))] = int(item_counts[i])

    k = 1
    while frequent_k and (max_len is None or k < max_len):
        candidates = generate_candidates(frequent_k)
        if not candidates:
            break
        counts = {cand: 0 for cand in candidates}
        candidate_sets = {cand: frozenset(cand) for cand in candidates}
        # the expensive part: full database scan with subset tests
        for transaction in transactions:
            if len(transaction) <= k:
                continue
            for cand in candidates:
                if candidate_sets[cand] <= transaction:
                    counts[cand] += 1
        frequent_k = []
        for cand, count in counts.items():
            if count >= min_count:
                out[candidate_sets[cand]] = count
                frequent_k.append(cand)
        frequent_k.sort()
        k += 1
    return out
