"""Additional interestingness measures for ranking rules.

Support/confidence/lift (Sec. III-B) are what the paper reports, but the
rule-mining literature it builds on (Tan et al., Han et al.) consults a
wider family when triaging output.  These are pure functions of the same
three supports, so they bolt onto any mined rule:

* **Jaccard** — |X∩Y| / |X∪Y| at the transaction level; symmetric
  co-occurrence strength in [0, 1].
* **Cosine** (a.k.a. IS measure) — geometric mean of the two directed
  confidences; null-invariant (ignores transactions containing neither
  side), unlike lift.
* **Kulczynski** — arithmetic mean of the two directed confidences; also
  null-invariant, paired with the imbalance ratio per Han et al.
* **Imbalance ratio** — how asymmetric the two directions are; near 0
  means X and Y imply each other equally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .rules import AssociationRule

if TYPE_CHECKING:  # pragma: no cover
    from .ruletable import RuleTable

__all__ = [
    "jaccard",
    "cosine",
    "kulczynski",
    "imbalance_ratio",
    "ExtendedMetrics",
    "ExtendedMetricsColumns",
    "extended_metrics",
    "extended_metrics_columns",
    "extended_metrics_table",
]


def jaccard(supp_xy: float, supp_x: float, supp_y: float) -> float:
    """supp(X∪Y) / (supp(X) + supp(Y) − supp(X∪Y))."""
    denom = supp_x + supp_y - supp_xy
    if denom <= 0.0:
        return 0.0
    return supp_xy / denom


def cosine(supp_xy: float, supp_x: float, supp_y: float) -> float:
    """supp(X∪Y) / sqrt(supp(X) · supp(Y)) — the IS measure."""
    denom = (supp_x * supp_y) ** 0.5
    if denom <= 0.0:
        return 0.0
    return supp_xy / denom


def kulczynski(supp_xy: float, supp_x: float, supp_y: float) -> float:
    """(conf(X⇒Y) + conf(Y⇒X)) / 2."""
    if supp_x <= 0.0 or supp_y <= 0.0:
        return 0.0
    return 0.5 * (supp_xy / supp_x + supp_xy / supp_y)


def imbalance_ratio(supp_xy: float, supp_x: float, supp_y: float) -> float:
    """|supp(X) − supp(Y)| / (supp(X) + supp(Y) − supp(X∪Y))."""
    denom = supp_x + supp_y - supp_xy
    if denom <= 0.0:
        return 0.0
    return abs(supp_x - supp_y) / denom


@dataclass(frozen=True, slots=True)
class ExtendedMetrics:
    """The null-invariant measure bundle for one rule."""

    jaccard: float
    cosine: float
    kulczynski: float
    imbalance_ratio: float


def extended_metrics(rule: AssociationRule) -> ExtendedMetrics:
    """Compute the extended measures from a rule's stored metrics.

    The three base supports are recovered from (support, confidence,
    lift): ``supp_x = supp/conf`` and ``supp_y = conf/lift``.
    """
    supp_xy = rule.support
    if rule.confidence <= 0.0 or rule.lift <= 0.0:
        return ExtendedMetrics(0.0, 0.0, 0.0, 0.0)
    supp_x = supp_xy / rule.confidence
    supp_y = rule.confidence / rule.lift
    return ExtendedMetrics(
        jaccard=jaccard(supp_xy, supp_x, supp_y),
        cosine=cosine(supp_xy, supp_x, supp_y),
        kulczynski=kulczynski(supp_xy, supp_x, supp_y),
        imbalance_ratio=imbalance_ratio(supp_xy, supp_x, supp_y),
    )


@dataclass(frozen=True, slots=True)
class ExtendedMetricsColumns:
    """Columnar form of :class:`ExtendedMetrics` — one float64 per rule."""

    jaccard: np.ndarray
    cosine: np.ndarray
    kulczynski: np.ndarray
    imbalance_ratio: np.ndarray


def extended_metrics_columns(
    support: np.ndarray, confidence: np.ndarray, lift: np.ndarray
) -> ExtendedMetricsColumns:
    """Vectorised :func:`extended_metrics` over metric columns.

    Per-row semantics match the scalar function exactly, including the
    all-zero result for rules with non-positive confidence or lift and
    the zero fallback for degenerate denominators.
    """
    support = np.asarray(support, dtype=np.float64)
    confidence = np.asarray(confidence, dtype=np.float64)
    lift = np.asarray(lift, dtype=np.float64)
    ok = (confidence > 0.0) & (lift > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        supp_x = np.where(ok, support / confidence, 0.0)
        supp_y = np.where(ok, confidence / lift, 0.0)
        union = supp_x + supp_y - support
        jac = np.where(ok & (union > 0.0), support / union, 0.0)
        cos_denom = (supp_x * supp_y) ** 0.5
        cos = np.where(ok & (cos_denom > 0.0), support / cos_denom, 0.0)
        kul = np.where(
            ok & (supp_x > 0.0) & (supp_y > 0.0),
            0.5 * (support / supp_x + support / supp_y),
            0.0,
        )
        imb = np.where(
            ok & (union > 0.0), np.abs(supp_x - supp_y) / union, 0.0
        )
    return ExtendedMetricsColumns(
        jaccard=jac, cosine=cos, kulczynski=kul, imbalance_ratio=imb
    )


def extended_metrics_table(table: "RuleTable") -> ExtendedMetricsColumns:
    """Extended measures for every row of a :class:`RuleTable`."""
    return extended_metrics_columns(table.support, table.confidence, table.lift)
