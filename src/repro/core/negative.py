"""Negative association rules: ``X ⇒ ¬K`` for a keyword K.

The paper's related work includes "prediction and analysis … using
positive and negative association rule mining" (ref [53]).  For the
operational questions here, the useful negative form is keyword-directed:
*which job profiles reliably do NOT fail / do NOT idle their GPUs?* —
the protective factors complementing the cause rules.

Metrics derive from positive supports only (no complemented database is
materialised)::

    supp(X ∪ ¬K) = supp(X) − supp(X ∪ K)
    conf(X ⇒ ¬K) = 1 − conf(X ⇒ K)
    lift(X ⇒ ¬K) = conf(X ⇒ ¬K) / (1 − supp(K))

Antecedents are the frequent itemsets not containing K; the same
min-support / min-lift discipline as the positive pass applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from .items import Item, as_item
from .itemsets import FrequentItemsets
from .mining import MiningConfig, mine_frequent_itemsets
from .transactions import TransactionDatabase

__all__ = ["NegativeRule", "mine_negative_keyword_rules"]


@dataclass(frozen=True, slots=True)
class NegativeRule:
    """An implication ``antecedent ⇒ NOT keyword``."""

    antecedent: frozenset[Item]
    antecedent_ids: frozenset[int]
    keyword: Item
    support: float  # supp(X ∪ ¬K)
    confidence: float  # conf(X ⇒ ¬K)
    lift: float  # against supp(¬K)

    def __str__(self) -> str:
        items = ", ".join(i.render() for i in sorted(self.antecedent))
        return (
            f"{{{items}}} => NOT {self.keyword.render()}"
            f"  [supp={self.support:.3f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f}]"
        )


def mine_negative_keyword_rules(
    db: TransactionDatabase,
    keyword: Item | str,
    config: MiningConfig = MiningConfig(),
    itemsets: FrequentItemsets | None = None,
    exclude_items: "list[Item | str] | None" = None,
) -> list[NegativeRule]:
    """Mine ``X ⇒ ¬keyword`` rules (protective factors).

    Thresholds reuse the config: ``supp(X ∪ ¬K) ≥ min_support`` and
    ``lift ≥ min_lift``.  Returns rules sorted by lift descending.

    *exclude_items* drops antecedents containing any of the given items —
    pass the keyword's sibling status labels ("Job Killed" when asking
    what protects against "Failed"), whose mutual exclusivity makes them
    trivially perfect but operationally useless protectors.
    """
    kw = as_item(keyword)
    kw_id = db.vocabulary.get_id(kw)
    n = len(db)
    if kw_id is None or n == 0:
        return []
    if itemsets is None:
        itemsets = mine_frequent_itemsets(db, config)
    excluded_ids: set[int] = set()
    for excluded in exclude_items or ():
        eid = db.vocabulary.get_id(as_item(excluded))
        if eid is not None:
            excluded_ids.add(eid)

    supp_k = db.support([kw_id])
    supp_not_k = 1.0 - supp_k
    if supp_not_k <= 0.0:
        return []

    bitmaps = db.bitmaps()

    rules: list[NegativeRule] = []
    for itemset, count_x in itemsets.counts.items():
        if kw_id in itemset or (excluded_ids and itemset & excluded_ids):
            continue
        supp_x = count_x / n
        # supp(X ∪ K) from the table when frequent, else exact count
        with_k = itemsets.counts.get(itemset | {kw_id})
        if with_k is not None:
            supp_xk = with_k / n
        else:
            supp_xk = bitmaps.support_count(sorted(itemset) + [kw_id]) / n
        supp_x_not_k = supp_x - supp_xk
        if supp_x_not_k < config.min_support - 1e-12:
            continue
        confidence = supp_x_not_k / supp_x if supp_x > 0 else 0.0
        lift = confidence / supp_not_k
        if lift < config.min_lift:
            continue
        rules.append(
            NegativeRule(
                antecedent=db.vocabulary.items_of(itemset),
                antecedent_ids=frozenset(itemset),
                keyword=kw,
                support=supp_x_not_k,
                confidence=confidence,
                lift=lift,
            )
        )
    rules.sort(key=lambda r: (-r.lift, -r.confidence, -r.support, str(sorted(r.antecedent))))
    return rules
