"""Items and item vocabularies.

In association analysis each transaction is a set of *items* drawn from a
universe ``I`` (Sec. III-B).  For trace analysis an item is a
feature/value pair such as ``SM Util = 0%`` or ``GPU Type = None``; purely
boolean attributes ("Multi-GPU", "Tensorflow") are items whose value is
the flag name itself.

Internally, all mining algorithms operate on dense integer item ids
interned through :class:`ItemVocabulary`; item objects only appear at the
API boundary.  This keeps the hot loops allocation-free and lets itemsets
be plain ``frozenset[int]`` keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

__all__ = ["Item", "ItemVocabulary", "render_itemset"]

#: separator used in the canonical textual form of an item
_SEP = " = "


@dataclass(frozen=True, slots=True, order=True)
class Item:
    """A feature/value attribute of a job, e.g. ``Item("SM Util", "0%")``.

    Items are immutable, hashable and totally ordered (by feature then
    value), so they can live in frozensets and produce deterministic
    renderings of rules.
    """

    feature: str
    value: str

    def __str__(self) -> str:
        return f"{self.feature}{_SEP}{self.value}"

    @classmethod
    def flag(cls, name: str) -> "Item":
        """A boolean attribute item, rendered as just its name.

        The paper writes boolean items without a value part, e.g.
        ``{"Multi-GPU"} ⇒ {"Failed"}``; we encode them as feature == value.
        """
        return cls(name, name)

    @classmethod
    def parse(cls, text: str) -> "Item":
        """Parse the canonical textual form ``feature = value``.

        A string without the separator parses as a flag item, so keyword
        arguments in the high-level API accept either ``"Failed"`` or
        ``"SM Util = 0%"``.
        """
        if _SEP in text:
            feature, value = text.split(_SEP, 1)
            return cls(feature, value)
        return cls.flag(text)

    @property
    def is_flag(self) -> bool:
        return self.feature == self.value

    def render(self) -> str:
        """Human-readable form: flags render as their bare name."""
        return self.feature if self.is_flag else str(self)


def as_item(value: "Item | str") -> Item:
    """Coerce a string (canonical form) or Item into an Item."""
    if isinstance(value, Item):
        return value
    if isinstance(value, str):
        return Item.parse(value)
    raise TypeError(f"cannot interpret {value!r} as an Item")


class ItemVocabulary:
    """Bidirectional mapping between :class:`Item` objects and dense ids.

    Ids are assigned in insertion order and never recycled.  The mining
    code paths only ever touch ids; rendering back to items happens when
    building :class:`~repro.core.rules.AssociationRule` objects.
    """

    __slots__ = ("_items", "_ids")

    def __init__(self, items: Iterable[Item | str] = ()):
        self._items: list[Item] = []
        self._ids: dict[Item, int] = {}
        for item in items:
            self.intern(item)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __contains__(self, item: Item | str) -> bool:
        return as_item(item) in self._ids

    def __repr__(self) -> str:
        return f"ItemVocabulary(n_items={len(self)})"

    def intern(self, item: Item | str) -> int:
        """Return the id for *item*, assigning a new one if unseen."""
        item = as_item(item)
        item_id = self._ids.get(item)
        if item_id is None:
            item_id = len(self._items)
            self._ids[item] = item_id
            self._items.append(item)
        return item_id

    def id_of(self, item: Item | str) -> int:
        """Return the id of a known item; KeyError if absent."""
        item = as_item(item)
        try:
            return self._ids[item]
        except KeyError:
            raise KeyError(f"item {item!r} is not in the vocabulary") from None

    def get_id(self, item: Item | str) -> int | None:
        """Return the id of *item* or None if it was never interned."""
        return self._ids.get(as_item(item))

    def item_of(self, item_id: int) -> Item:
        """Return the Item for a dense id."""
        return self._items[item_id]

    def items_of(self, ids: Iterable[int]) -> frozenset[Item]:
        """Decode a collection of ids into a frozenset of items."""
        return frozenset(self._items[i] for i in ids)

    def encode(self, items: Iterable[Item | str]) -> frozenset[int]:
        """Intern every item of a collection and return the id set."""
        return frozenset(self.intern(i) for i in items)


def render_itemset(items: Iterable[Item]) -> str:
    """Deterministic ``{a, b, c}`` rendering of an itemset, sorted."""
    return "{" + ", ".join(i.render() for i in sorted(items)) + "}"
