"""FP-Growth frequent-itemset mining (Han et al., 2004).

The paper uses FP-Growth as its mining workhorse (Sec. III-C): "FP-Growth
uses a data structure called FP-tree to deal with performance issues
(exponential runtime and memory requirements) presented in the Apriori
algorithm when the database is large."

Two implementations share this module:

* :func:`fpgrowth` — the production kernel.  The FP-tree is a
  struct-of-arrays (flat ``item`` / ``count`` / ``parent`` numpy arrays
  plus a header table of node indices), built from *deduplicated*
  transactions: the database is encoded to frequency ranks in one
  vectorised pass, identical filtered transactions are collapsed with
  ``np.unique`` (quartile-binned traces repeat the same few thousand
  row shapes across 100k jobs), and the unique rows — already in
  lexicographic order — are inserted with a prefix-sharing stack, so
  construction does no per-node object allocation and no hash lookups.
* :func:`fpgrowth_object` — the original pointer-chasing object tree
  (:class:`FPNode`/:class:`FPTree`), kept verbatim as the reference the
  SoA kernel is property-tested against and benchmarked over.

Both honour the same contract:

* Items enter the tree in decreasing global-frequency order, the ordering
  that maximises prefix sharing (ties broken by item id, deterministic).
* Conditional pattern bases are mined recursively; the classic
  single-path shortcut enumerates all subsets of a chain directly.
* ``max_len`` bounds itemset length *during* the recursion (the paper
  limits frequent itemsets to length 5), so oversized branches are never
  explored rather than filtered afterwards.
* The output is a plain ``dict[frozenset[int], int]`` of support counts,
  shared with the Apriori and Eclat implementations so all miners can be
  property-tested for equivalence.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

import numpy as np

from .bitmap import kernel_timer
from .transactions import TransactionDatabase

__all__ = ["fpgrowth", "fpgrowth_object", "FPTree", "FPNode"]


def _min_count(n: int, min_support: float) -> int:
    # "support >= threshold" on real counts: ceil(min_support * n) with a
    # floor of 1 so that support-0 itemsets are never emitted
    return max(1, int(np.ceil(min_support * n - 1e-9)))


def _validate(min_support: float, max_len: int | None) -> None:
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support must be in [0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError("max_len must be >= 1 or None")


# ---------------------------------------------------------------------------
# struct-of-arrays FP-tree (the production kernel)
# ---------------------------------------------------------------------------


class _SoATree:
    """FP-tree as flat parallel arrays: node *i* is ``(item[i], count[i],
    parent[i], prefix[i])``.

    ``item`` holds *order positions* within this tree (0 = the tree's
    most frequent item), not raw item ids; ``pos_to_id`` translates back
    at emission time.  ``prefix[i]`` is the tuple of ancestor positions
    of node *i*, captured while the insertion stack already holds it, so
    a conditional pattern base is a header-list lookup instead of a
    per-node parent-chain walk.  ``totals`` (position → count) is
    supplied by the caller, which always knows it already: the global
    histogram for the root tree, the conditional counts for conditional
    trees.
    """

    __slots__ = ("item", "count", "parent", "prefix", "header", "totals",
                 "pos_to_id")

    def __init__(self, pos_to_id: Sequence[int], totals: dict[int, int]) -> None:
        self.item: list[int] = []
        self.count: list[int] = []
        self.parent: list[int] = []
        self.prefix: list[tuple[int, ...]] = []
        self.header: dict[int, list[int]] = defaultdict(list)
        self.totals = totals
        self.pos_to_id = pos_to_id

    def __len__(self) -> int:
        return len(self.item)

    def is_empty(self) -> bool:
        return not self.item

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The (item-position, count, parent) columns as numpy arrays."""
        return (
            np.asarray(self.item, dtype=np.int64),
            np.asarray(self.count, dtype=np.int64),
            np.asarray(self.parent, dtype=np.int64),
        )

    def insert_sorted(self, rows: Iterable[tuple[Sequence[int], int]]) -> None:
        """Insert (row, count) pairs arriving in prefix-contiguous order.

        Rows are sequences of order positions.  The only ordering
        requirement is that rows sharing a prefix are consecutive (both
        lexicographic and packed-mask integer order satisfy it), so each
        row shares a prefix with its predecessor and insertion is a
        stack walk: pop to the common prefix, push the rest.  No
        per-node children dict, no hash probes — the allocation profile
        is a few ``list.append`` calls per tree node.
        """
        item, count, parent = self.item, self.count, self.parent
        prefix, header = self.prefix, self.header
        stack: list[int] = []  # node indices of the current path
        path: list[int] = []  # the positions along the current path
        for row, c in rows:
            width = len(row)
            shared = 0
            limit = min(len(path), width)
            while shared < limit and path[shared] == row[shared]:
                shared += 1
            del stack[shared:], path[shared:]
            for j in range(shared):
                count[stack[j]] += c
            for j in range(shared, width):
                pos = row[j]
                node = len(item)
                item.append(pos)
                count.append(c)
                parent.append(stack[-1] if stack else -1)
                prefix.append(tuple(path))
                header[pos].append(node)
                stack.append(node)
                path.append(pos)

    def single_path(self) -> list[tuple[int, int]] | None:
        """Return [(position, count), ...] if the tree is a single chain.

        With prefix-sharing insertion, a chain is exactly the case where
        every node's parent is the node before it.
        """
        parent = self.parent
        for i, p in enumerate(parent):
            if p != i - 1:
                return None
        return list(zip(self.item, self.count))

    def prefix_paths(self, pos: int) -> list[tuple[tuple[int, ...], int]]:
        """Conditional pattern base of *pos*: (prefix positions, count)."""
        count, prefix = self.count, self.prefix
        return [
            (prefix[n], count[n]) for n in self.header.get(pos, ()) if prefix[n]
        ]


def _soa_from_paths(
    base: list[tuple[tuple[int, ...], int]],
    cond_counts: dict[int, int],
    min_count: int,
    parent_pos_to_id: Sequence[int],
) -> _SoATree | None:
    """Build a conditional SoA tree from a pattern base, or None if empty.

    Conditional trees keep their *parent's* position order rather than
    re-ranking by conditional frequency (the object tree's reordering is
    a compression heuristic, not a correctness requirement — the set of
    frequent itemsets is order-independent).  Prefix tuples are already
    position-sorted, so dropping infrequent items preserves row order
    without any per-path sort, and the position → position remap is
    monotonic.
    """
    kept = sorted(pos for pos, c in cond_counts.items() if c >= min_count)
    if not kept:
        return None
    remap = {pos: j for j, pos in enumerate(kept)}
    rows: dict[tuple[int, ...], int] = {}
    for pfx, c in base:
        key = tuple(remap[p] for p in pfx if p in remap)
        if key:
            rows[key] = rows.get(key, 0) + c
    if not rows:
        return None
    tree = _SoATree(
        [parent_pos_to_id[pos] for pos in kept],
        # an item's total over the inserted rows is exactly its
        # conditional count: every base path containing it survives
        {j: cond_counts[pos] for j, pos in enumerate(kept)},
    )
    tree.insert_sorted(sorted(rows.items()))
    return tree


def _mine_soa(
    tree: _SoATree,
    suffix: tuple[int, ...],
    min_count: int,
    max_len: int | None,
    out: dict[frozenset[int], int],
) -> None:
    """Recursively mine *tree*, emitting itemsets extending *suffix*."""
    if max_len is not None and len(suffix) >= max_len:
        return

    pos_to_id = tree.pos_to_id
    path = tree.single_path()
    if path is not None:
        budget = None if max_len is None else max_len - len(suffix)
        _emit_single_path(
            [(pos_to_id[p], c) for p, c in path], suffix, min_count, budget, out
        )
        return

    # every position in the tree is frequent by construction; process
    # from the bottom (least frequent) upward
    totals = tree.totals
    for pos in range(len(pos_to_id) - 1, -1, -1):
        count = totals.get(pos, 0)
        if count < min_count:
            continue
        new_suffix = suffix + (pos_to_id[pos],)
        out[frozenset(new_suffix)] = count
        if max_len is not None and len(new_suffix) >= max_len:
            continue
        base = tree.prefix_paths(pos)
        if not base:
            continue
        cond_counts: dict[int, int] = defaultdict(int)
        for pfx, c in base:
            for p in pfx:
                cond_counts[p] += c
        if max_len is not None and len(new_suffix) + 1 >= max_len:
            # room for exactly one more item: the conditional counts ARE
            # the answer — skip building the conditional tree (with the
            # paper's max_len=5 this leaf level is the bulk of the trees)
            for p, c in cond_counts.items():
                if c >= min_count:
                    out[frozenset(new_suffix + (pos_to_id[p],))] = c
            continue
        cond_tree = _soa_from_paths(base, cond_counts, min_count, pos_to_id)
        if cond_tree is not None:
            _mine_soa(cond_tree, new_suffix, min_count, max_len, out)


def _unique_rows_packed(
    ranks: np.ndarray, rows: np.ndarray, n_txns: int, n_ranks: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate rank rows by packing each one into a single uint64.

    A filtered transaction is a *set* of ranks, so with at most 64 ranks
    it packs into one machine word (rank *r* at bit ``63 - r``).  Dedup
    is then ``np.unique`` over scalars instead of over a row matrix —
    an order of magnitude cheaper than the ``axis=0`` void-view sort.
    Unsigned integer order on the masks is prefix-contiguous: rows whose
    rank sequences share a first-*k* prefix agree on all bits above the
    prefix's last rank, i.e. form one contiguous mask interval.  That is
    the only ordering property the stack inserter needs.
    """
    bits = np.uint64(1) << (63 - ranks).astype(np.uint64)
    lengths = np.bincount(rows, minlength=n_txns)
    nonempty = lengths > 0
    starts = np.concatenate(([0], np.cumsum(lengths)))[:-1][nonempty]
    masks = np.bitwise_or.reduceat(bits, starts)
    uniq_masks, counts = np.unique(masks, return_counts=True)
    shifts = np.uint64(63) - np.arange(n_ranks, dtype=np.uint64)
    present = (uniq_masks[:, None] >> shifts[None, :]) & np.uint64(1)
    widths = present.sum(axis=1).astype(np.int64)
    width = int(widths.max())
    padded = np.full((uniq_masks.size, width), n_ranks, dtype=np.int64)
    # row-major nonzero: per row, columns (= ranks) come out ascending
    r_idx, rank_vals = np.nonzero(present)
    row_start = np.concatenate(([0], np.cumsum(widths)))
    pos = np.arange(rank_vals.size, dtype=np.int64) - row_start[r_idx]
    padded[r_idx, pos] = rank_vals
    return padded, widths, counts.astype(np.int64)


def _encode_unique_rows(
    db: TransactionDatabase, rank_of: np.ndarray, n_ranks: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Filter + rank-order + deduplicate every transaction, vectorised.

    Returns ``(rows, widths, counts)``: unique rank rows padded with the
    sentinel ``n_ranks``, in a prefix-contiguous order (identical rank
    prefixes occupy consecutive rows, as the stack inserter requires),
    their true lengths, and how many transactions collapsed into each.
    """
    ranks = rank_of[db.indices]
    rows = np.repeat(
        np.arange(len(db), dtype=np.int64), np.diff(db.indptr)
    )
    keep = ranks >= 0
    ranks = ranks[keep]
    rows = rows[keep]
    if ranks.size == 0:
        empty = np.empty((0, 0), dtype=np.int64)
        return empty, np.empty(0, np.int64), np.empty(0, np.int64)
    if n_ranks <= 64:
        # CSR order already groups entries by transaction, so the packed
        # path needs no sort at all before the scalar dedup
        return _unique_rows_packed(ranks, rows, len(db), n_ranks)
    order = np.lexsort((ranks, rows))
    ranks = ranks[order]
    rows = rows[order]
    lengths = np.bincount(rows, minlength=len(db))
    nonempty = lengths > 0
    width = int(lengths.max())
    padded = np.full((int(nonempty.sum()), width), n_ranks, dtype=np.int64)
    row_start = np.concatenate(([0], np.cumsum(lengths)))
    pos = np.arange(ranks.size, dtype=np.int64) - row_start[rows]
    compact = np.cumsum(nonempty) - 1  # original row → padded row index
    padded[compact[rows], pos] = ranks
    uniq, counts = np.unique(padded, axis=0, return_counts=True)
    widths = (uniq != n_ranks).sum(axis=1)
    return uniq, widths.astype(np.int64), counts.astype(np.int64)


def fpgrowth(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Mine all frequent itemsets of *db* with support ≥ *min_support*.

    Parameters
    ----------
    db:
        The transaction database.
    min_support:
        Relative support threshold in ``[0, 1]`` (the paper uses 0.05).
    max_len:
        Maximum itemset length (the paper uses 5), or None for unbounded.

    Returns
    -------
    dict mapping ``frozenset`` of item ids → absolute support count.

    Answer-identical to :func:`fpgrowth_object` (property-tested); this
    variant builds the struct-of-arrays FP-tree over deduplicated
    transactions.
    """
    _validate(min_support, max_len)
    n = len(db)
    if n == 0:
        return {}
    min_count = _min_count(n, min_support)

    counts = db.item_support_counts()
    freq_ids = np.flatnonzero(counts >= min_count)
    out: dict[frozenset[int], int] = {
        frozenset((int(i),)): int(counts[i]) for i in freq_ids
    }
    if freq_ids.size == 0 or max_len == 1:
        return out

    with kernel_timer("fptree-soa"):
        # rank items by (-count, id); rank 0 = most frequent
        order = np.lexsort((freq_ids, -counts[freq_ids]))
        ranked_ids = freq_ids[order].astype(np.int64)
        n_ranks = int(ranked_ids.size)
        rank_of = np.full(db.n_items, -1, dtype=np.int64)
        rank_of[ranked_ids] = np.arange(n_ranks, dtype=np.int64)

        uniq, widths, row_counts = _encode_unique_rows(db, rank_of, n_ranks)
        tree = _SoATree(
            ranked_ids.tolist(),
            {pos: int(counts[i]) for pos, i in enumerate(ranked_ids)},
        )
        if uniq.size:
            rows_list = uniq.tolist()
            widths_list = widths.tolist()
            counts_list = row_counts.tolist()
            tree.insert_sorted(
                (rows_list[i][: widths_list[i]], counts_list[i])
                for i in range(len(rows_list))
            )
        if not tree.is_empty():
            # re-emits the singletons with identical counts (a node's total
            # equals the histogram count), so the pre-seeding above only
            # matters for the freq_ids.size == 0 / max_len == 1 early outs
            _mine_soa(tree, (), min_count, max_len, out)
    return out


# ---------------------------------------------------------------------------
# object-tree reference implementation
# ---------------------------------------------------------------------------


class FPNode:
    """A node of an FP-tree: one item, a count, children keyed by item id."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int, parent: "FPNode | None"):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, FPNode] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FPNode(item={self.item}, count={self.count})"


class FPTree:
    """FP-tree with header links for bottom-up conditional mining."""

    __slots__ = ("root", "header", "counts")

    def __init__(self) -> None:
        self.root = FPNode(-1, None)
        #: item id → list of nodes carrying that item (the header table)
        self.header: dict[int, list[FPNode]] = defaultdict(list)
        #: item id → total count in this (conditional) tree
        self.counts: dict[int, int] = defaultdict(int)

    def insert(self, items: Iterable[int], count: int) -> None:
        """Insert a transaction (items already filtered+ordered) *count* times."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self.header[item].append(child)
            child.count += count
            self.counts[item] += count
            node = child

    def is_empty(self) -> bool:
        return not self.root.children

    def single_path(self) -> list[tuple[int, int]] | None:
        """Return [(item, count), ...] if the tree is a single chain, else None."""
        path: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return path

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of *item*: (prefix id list, count) pairs."""
        paths: list[tuple[list[int], int]] = []
        for node in self.header.get(item, ()):
            prefix: list[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                prefix.append(parent.item)
                parent = parent.parent
            if prefix:
                prefix.reverse()
                paths.append((prefix, node.count))
        return paths


def _build_tree(
    transactions: Iterable[tuple[list[int], int]],
    item_counts: dict[int, int],
    min_count: int,
) -> FPTree:
    """Build an FP-tree keeping only frequent items, frequency-ordered.

    Ties in frequency are broken by item id so construction is
    deterministic for a given database.
    """
    frequent = {i for i, c in item_counts.items() if c >= min_count}
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda i: (-item_counts[i], i))
        )
    }
    tree = FPTree()
    for items, count in transactions:
        filtered = sorted(
            (i for i in items if i in frequent), key=order.__getitem__
        )
        if filtered:
            tree.insert(filtered, count)
    return tree


def _mine_tree(
    tree: FPTree,
    suffix: tuple[int, ...],
    min_count: int,
    max_len: int | None,
    out: dict[frozenset[int], int],
) -> None:
    """Recursively mine *tree*, emitting itemsets extending *suffix*."""
    if max_len is not None and len(suffix) >= max_len:
        return

    path = tree.single_path()
    if path is not None:
        # every combination of path items (capped at max_len) is frequent,
        # supported by the minimum count along the chosen chain prefix
        budget = None if max_len is None else max_len - len(suffix)
        _emit_single_path(path, suffix, min_count, budget, out)
        return

    # process items from least frequent (bottom of the tree) upward
    items = sorted(tree.counts, key=lambda i: (tree.counts[i], -i))
    for item in items:
        count = tree.counts[item]
        if count < min_count:
            continue
        new_suffix = suffix + (item,)
        out[frozenset(new_suffix)] = count
        if max_len is not None and len(new_suffix) >= max_len:
            continue
        base = tree.prefix_paths(item)
        if not base:
            continue
        cond_counts: dict[int, int] = defaultdict(int)
        for prefix, c in base:
            for i in prefix:
                cond_counts[i] += c
        cond_tree = _build_tree(base, cond_counts, min_count)
        if not cond_tree.is_empty():
            _mine_tree(cond_tree, new_suffix, min_count, max_len, out)


def _emit_single_path(
    path: list[tuple[int, int]],
    suffix: tuple[int, ...],
    min_count: int,
    budget: int | None,
    out: dict[frozenset[int], int],
) -> None:
    """Emit all subsets of a single-path tree (with their min-count support)."""
    usable = [(item, count) for item, count in path if count >= min_count]

    def recurse(start: int, chosen: tuple[int, ...], support: int) -> None:
        for k in range(start, len(usable)):
            item, count = usable[k]
            new_support = min(support, count)
            if new_support < min_count:
                continue
            new_chosen = chosen + (item,)
            out[frozenset(suffix + new_chosen)] = new_support
            if budget is None or len(new_chosen) < budget:
                recurse(k + 1, new_chosen, new_support)

    recurse(0, (), np.iinfo(np.int64).max)


def fpgrowth_object(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Object-tree FP-Growth: the pre-kernel reference implementation.

    Same contract and answer as :func:`fpgrowth`; one ``FPNode`` (plus a
    children dict) is allocated per tree node and every transaction is
    inserted individually.  Kept as the equivalence oracle and as the
    "legacy" side of the mining-throughput benchmark.
    """
    _validate(min_support, max_len)
    n = len(db)
    if n == 0:
        return {}
    min_count = _min_count(n, min_support)

    counts = db.item_support_counts()
    item_counts = {int(i): int(c) for i, c in enumerate(counts) if c >= min_count}
    tree = _build_tree(
        ((txn.tolist(), 1) for txn in db.iter_id_transactions()),
        item_counts,
        min_count,
    )
    out: dict[frozenset[int], int] = {}
    if not tree.is_empty():
        _mine_tree(tree, (), min_count, max_len, out)
    return out
