"""FP-Growth frequent-itemset mining (Han et al., 2004).

The paper uses FP-Growth as its mining workhorse (Sec. III-C): "FP-Growth
uses a data structure called FP-tree to deal with performance issues
(exponential runtime and memory requirements) presented in the Apriori
algorithm when the database is large."

Implementation notes
---------------------
* Items enter the tree in decreasing global-frequency order, the ordering
  that maximises prefix sharing.
* Conditional pattern bases are mined recursively; the classic
  single-path shortcut enumerates all subsets of a chain directly.
* ``max_len`` bounds itemset length *during* the recursion (the paper
  limits frequent itemsets to length 5), so oversized branches are never
  explored rather than filtered afterwards.
* The output is a plain ``dict[frozenset[int], int]`` of support counts,
  shared with the Apriori and Eclat implementations so the three can be
  property-tested for equivalence.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

import numpy as np

from .transactions import TransactionDatabase

__all__ = ["fpgrowth", "FPTree", "FPNode"]


class FPNode:
    """A node of an FP-tree: one item, a count, children keyed by item id."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int, parent: "FPNode | None"):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, FPNode] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FPNode(item={self.item}, count={self.count})"


class FPTree:
    """FP-tree with header links for bottom-up conditional mining."""

    __slots__ = ("root", "header", "counts")

    def __init__(self) -> None:
        self.root = FPNode(-1, None)
        #: item id → list of nodes carrying that item (the header table)
        self.header: dict[int, list[FPNode]] = defaultdict(list)
        #: item id → total count in this (conditional) tree
        self.counts: dict[int, int] = defaultdict(int)

    def insert(self, items: Iterable[int], count: int) -> None:
        """Insert a transaction (items already filtered+ordered) *count* times."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self.header[item].append(child)
            child.count += count
            self.counts[item] += count
            node = child

    def is_empty(self) -> bool:
        return not self.root.children

    def single_path(self) -> list[tuple[int, int]] | None:
        """Return [(item, count), ...] if the tree is a single chain, else None."""
        path: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return path

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of *item*: (prefix id list, count) pairs."""
        paths: list[tuple[list[int], int]] = []
        for node in self.header.get(item, ()):
            prefix: list[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                prefix.append(parent.item)
                parent = parent.parent
            if prefix:
                prefix.reverse()
                paths.append((prefix, node.count))
        return paths


def _build_tree(
    transactions: Iterable[tuple[list[int], int]],
    item_counts: dict[int, int],
    min_count: int,
) -> FPTree:
    """Build an FP-tree keeping only frequent items, frequency-ordered.

    Ties in frequency are broken by item id so construction is
    deterministic for a given database.
    """
    frequent = {i for i, c in item_counts.items() if c >= min_count}
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda i: (-item_counts[i], i))
        )
    }
    tree = FPTree()
    for items, count in transactions:
        filtered = sorted(
            (i for i in items if i in frequent), key=order.__getitem__
        )
        if filtered:
            tree.insert(filtered, count)
    return tree


def _mine_tree(
    tree: FPTree,
    suffix: tuple[int, ...],
    min_count: int,
    max_len: int | None,
    out: dict[frozenset[int], int],
) -> None:
    """Recursively mine *tree*, emitting itemsets extending *suffix*."""
    if max_len is not None and len(suffix) >= max_len:
        return

    path = tree.single_path()
    if path is not None:
        # every combination of path items (capped at max_len) is frequent,
        # supported by the minimum count along the chosen chain prefix
        budget = None if max_len is None else max_len - len(suffix)
        _emit_single_path(path, suffix, min_count, budget, out)
        return

    # process items from least frequent (bottom of the tree) upward
    items = sorted(tree.counts, key=lambda i: (tree.counts[i], -i))
    for item in items:
        count = tree.counts[item]
        if count < min_count:
            continue
        new_suffix = suffix + (item,)
        out[frozenset(new_suffix)] = count
        if max_len is not None and len(new_suffix) >= max_len:
            continue
        base = tree.prefix_paths(item)
        if not base:
            continue
        cond_counts: dict[int, int] = defaultdict(int)
        for prefix, c in base:
            for i in prefix:
                cond_counts[i] += c
        cond_tree = _build_tree(base, cond_counts, min_count)
        if not cond_tree.is_empty():
            _mine_tree(cond_tree, new_suffix, min_count, max_len, out)


def _emit_single_path(
    path: list[tuple[int, int]],
    suffix: tuple[int, ...],
    min_count: int,
    budget: int | None,
    out: dict[frozenset[int], int],
) -> None:
    """Emit all subsets of a single-path tree (with their min-count support)."""
    usable = [(item, count) for item, count in path if count >= min_count]

    def recurse(start: int, chosen: tuple[int, ...], support: int) -> None:
        for k in range(start, len(usable)):
            item, count = usable[k]
            new_support = min(support, count)
            if new_support < min_count:
                continue
            new_chosen = chosen + (item,)
            out[frozenset(suffix + new_chosen)] = new_support
            if budget is None or len(new_chosen) < budget:
                recurse(k + 1, new_chosen, new_support)

    recurse(0, (), np.iinfo(np.int64).max)


def fpgrowth(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Mine all frequent itemsets of *db* with support ≥ *min_support*.

    Parameters
    ----------
    db:
        The transaction database.
    min_support:
        Relative support threshold in ``[0, 1]`` (the paper uses 0.05).
    max_len:
        Maximum itemset length (the paper uses 5), or None for unbounded.

    Returns
    -------
    dict mapping ``frozenset`` of item ids → absolute support count.
    """
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support must be in [0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError("max_len must be >= 1 or None")
    n = len(db)
    if n == 0:
        return {}
    # "support >= threshold" on real counts: ceil(min_support * n) with a
    # floor of 1 so that support-0 itemsets are never emitted
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))

    counts = db.item_support_counts()
    item_counts = {int(i): int(c) for i, c in enumerate(counts) if c >= min_count}
    tree = _build_tree(
        ((txn.tolist(), 1) for txn in db.iter_id_transactions()),
        item_counts,
        min_count,
    )
    out: dict[frozenset[int], int] = {}
    if not tree.is_empty():
        _mine_tree(tree, (), min_count, max_len, out)
    return out
