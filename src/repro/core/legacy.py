"""Dense-boolean reference implementations of the mining kernels.

Before the packed-bitmap kernel (:mod:`repro.core.bitmap`), Eclat,
Apriori and SON candidate counting all ran over a dense boolean
occurrence matrix of ``n_items × n_transactions`` *bytes*.  Those code
paths live on here, verbatim, for two jobs:

* **equivalence contracts** — the property tests assert the packed
  kernel produces bit-identical itemset tables against these references
  on random databases and on the three synthetic traces;
* **benchmarking** — ``benchmarks/bench_mining_throughput.py`` reports
  kernel-vs-legacy speedups into ``BENCH_mining.json``.

Nothing in the production path imports this module; it exists so the
fast kernels always have a slow, obviously-correct twin to answer to.
"""

from __future__ import annotations

import numpy as np

from .transactions import TransactionDatabase

__all__ = [
    "dense_vertical",
    "eclat_dense",
    "apriori_dense",
    "count_candidates_dense",
]


def dense_vertical(db: TransactionDatabase) -> np.ndarray:
    """Boolean occurrence matrix of shape (n_items, n_transactions).

    The representation the packed kernel replaced: one byte per
    (item, transaction) cell, built fresh on every call (no cache).
    """
    mat = np.zeros((db.n_items, len(db)), dtype=bool)
    rows = np.repeat(np.arange(len(db), dtype=np.int64), np.diff(db.indptr))
    mat[db.indices, rows] = True
    return mat


def eclat_dense(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Eclat over dense boolean vectors; same contract as :func:`eclat`."""
    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support must be in [0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError("max_len must be >= 1 or None")
    n = len(db)
    if n == 0:
        return {}
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))

    item_counts = db.item_support_counts()
    frequent_items = [int(i) for i in np.flatnonzero(item_counts >= min_count)]
    vertical = dense_vertical(db)

    out: dict[frozenset[int], int] = {}

    def extend(prefix: tuple[int, ...], mask: np.ndarray, tail: list[int]) -> None:
        for pos, item in enumerate(tail):
            new_mask = mask & vertical[item]
            count = int(new_mask.sum())
            if count < min_count:
                continue
            new_prefix = prefix + (item,)
            out[frozenset(new_prefix)] = count
            if max_len is None or len(new_prefix) < max_len:
                extend(new_prefix, new_mask, tail[pos + 1 :])

    for pos, item in enumerate(frequent_items):
        out[frozenset((item,))] = int(item_counts[item])
        if max_len is None or max_len > 1:
            extend((item,), vertical[item], frequent_items[pos + 1 :])
    return out


def apriori_dense(
    db: TransactionDatabase,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], int]:
    """Level-wise Apriori over dense vectors; same contract as :func:`apriori`."""
    from .apriori import generate_candidates

    if not 0.0 <= min_support <= 1.0:
        raise ValueError(f"min_support must be in [0, 1], got {min_support}")
    if max_len is not None and max_len < 1:
        raise ValueError("max_len must be >= 1 or None")
    n = len(db)
    if n == 0:
        return {}
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))

    out: dict[frozenset[int], int] = {}

    item_counts = db.item_support_counts()
    frequent_1 = [int(i) for i in np.flatnonzero(item_counts >= min_count)]
    for i in frequent_1:
        out[frozenset((i,))] = int(item_counts[i])
    if max_len == 1 or not frequent_1:
        return out

    vertical = dense_vertical(db)
    level_masks: dict[tuple[int, ...], np.ndarray] = {
        (i,): vertical[i] for i in frequent_1
    }
    frequent_k = [(i,) for i in frequent_1]
    k = 1
    while frequent_k and (max_len is None or k < max_len):
        candidates = generate_candidates(frequent_k)
        next_masks: dict[tuple[int, ...], np.ndarray] = {}
        next_frequent: list[tuple[int, ...]] = []
        for cand in candidates:
            mask = level_masks[cand[:-1]] & vertical[cand[-1]]
            count = int(mask.sum())
            if count >= min_count:
                out[frozenset(cand)] = count
                next_masks[cand] = mask
                next_frequent.append(cand)
        level_masks = next_masks
        frequent_k = next_frequent
        k += 1
    return out


def count_candidates_dense(
    db: TransactionDatabase,
    candidates: set[frozenset[int]],
) -> dict[frozenset[int], int]:
    """Exact candidate counts over a dense occurrence matrix."""
    vertical = dense_vertical(db)
    out: dict[frozenset[int], int] = {}
    for itemset in candidates:
        ids = sorted(itemset)
        mask = vertical[ids[0]]
        for i in ids[1:]:
            mask = mask & vertical[i]
        out[itemset] = int(mask.sum())
    return out
