"""Packed-bitmap vertical kernel: uint64 bitsets + popcount counting.

The mining hot loop is "how many transactions contain every item of X?".
The previous answer was a dense boolean occurrence matrix
(``n_items × n_transactions`` bytes) combined with numpy ``&`` / ``sum``.
This module replaces it with the representation high-throughput pattern
miners use (Eclat/dEclat-style TID-bitsets): each item's occurrence
vector is packed 64 transactions per ``uint64`` word, so

* memory drops 8× (one *bit* per transaction instead of one byte);
* an itemset's support is ``popcount(AND of word rows)`` — the AND
  touches 64 transactions per word, and the popcount is a 16-bit
  lookup-table gather, both releasing the GIL inside numpy;
* partition views of a 64-aligned transaction range are word *slices*
  of the parent's bitmaps, so SON workers inherit them for free.

Bit layout: transaction ``t`` lives in word ``t >> 6`` at bit ``t & 63``
(little-endian within the word).  Pad bits past ``n_transactions`` are
always zero, so popcounts never over-count.

A small content-addressed cache keyed by
:meth:`TransactionDatabase.fingerprint` lets independently built
databases with identical content share one bitmap build (the same
addressing scheme the engine's itemset cache uses).

The module also hosts the *kernel counters*: lightweight named
wall-time accumulators that the mining kernels report into and the
engine surfaces per stage (CLI ``--profile``).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .transactions import TransactionDatabase

__all__ = [
    "PackedBitmaps",
    "popcount",
    "get_shared_bitmaps",
    "bitmap_cache_info",
    "clear_bitmap_cache",
    "kernel_timer",
    "record_kernel",
    "kernel_snapshot",
    "kernel_delta",
    "reset_kernel_counters",
]

#: popcount lookup table: uint16 value → number of set bits (0..16)
_POPCOUNT16 = np.zeros(1 << 16, dtype=np.uint8)
_v = np.arange(1 << 16, dtype=np.uint32)
for _s in range(16):
    _POPCOUNT16 += ((_v >> _s) & 1).astype(np.uint8)
del _v, _s

_WORD_BITS = 64
_LE_U64 = np.dtype("<u8")


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a uint64 word array."""
    words = np.ascontiguousarray(words)
    return int(_POPCOUNT16[words.view(np.uint16)].sum(dtype=np.int64))


class PackedBitmaps:
    """Per-item occurrence bitsets over one transaction database.

    ``words`` has shape ``(n_items, n_words)`` with
    ``n_words = ceil(n_transactions / 64)``; row ``i`` is item ``i``'s
    packed occurrence vector.
    """

    __slots__ = ("words", "n_transactions")

    def __init__(self, words: np.ndarray, n_transactions: int):
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError("words must be 2-D (n_items, n_words)")
        expected = (n_transactions + _WORD_BITS - 1) // _WORD_BITS
        if words.shape[1] != expected:
            raise ValueError(
                f"expected {expected} words for {n_transactions} transactions, "
                f"got {words.shape[1]}"
            )
        self.words = words
        self.n_transactions = n_transactions

    # -- construction --------------------------------------------------------
    @classmethod
    def from_database(cls, db: "TransactionDatabase") -> "PackedBitmaps":
        """Build packed bitmaps straight from CSR storage.

        Fully vectorised: bits are grouped by (item, word) with one sort
        and OR-combined via ``np.bitwise_or.reduceat`` — no dense
        ``n_items × n_transactions`` intermediate is ever materialised.
        """
        n = len(db)
        n_items = db.n_items
        n_words = (n + _WORD_BITS - 1) // _WORD_BITS
        words = np.zeros((n_items, max(n_words, 0)), dtype=np.uint64)
        if db.indices.size and n_words:
            cols = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(db.indptr)
            )
            rows = db.indices.astype(np.int64)
            word_idx = cols >> 6
            bits = np.uint64(1) << (cols & 63).astype(np.uint64)
            flat = rows * n_words + word_idx
            order = np.argsort(flat, kind="stable")
            flat = flat[order]
            bits = bits[order]
            starts = np.flatnonzero(
                np.concatenate(([True], flat[1:] != flat[:-1]))
            )
            words.reshape(-1)[flat[starts]] = np.bitwise_or.reduceat(
                bits, starts
            )
        return cls(words, n)

    @classmethod
    def from_onehot(cls, matrix: np.ndarray) -> "PackedBitmaps":
        """Build from a boolean one-hot matrix (n_transactions × n_items).

        Uses ``np.packbits`` along the transaction axis; bytes are
        assembled little-endian into uint64 words so bit ``t & 63`` of
        word ``t >> 6`` is transaction ``t`` on any host byte order.
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("one-hot matrix must be 2-D")
        n, n_items = matrix.shape
        n_words = (n + _WORD_BITS - 1) // _WORD_BITS
        packed = np.packbits(matrix.T, axis=1, bitorder="little")
        padded = np.zeros((n_items, n_words * 8), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        if sys.byteorder == "big":  # pragma: no cover - LE-only CI
            padded = padded.reshape(n_items, n_words, 8)[:, :, ::-1].reshape(
                n_items, -1
            )
        return cls(padded.view(_LE_U64).astype(np.uint64, copy=False), n)

    # -- views ---------------------------------------------------------------
    def slice_range(self, start: int, stop: int) -> "PackedBitmaps":
        """Bitmaps of the transaction range ``[start, stop)``.

        *start* must be 64-aligned so the range maps to whole words; the
        word block is a cheap slice-copy of this object's rows (with the
        tail bits of the final word masked off), which is how SON
        partitions inherit the parent database's bitmaps instead of
        rebuilding their own from scratch.
        """
        if start % _WORD_BITS != 0:
            raise ValueError(f"start must be a multiple of 64, got {start}")
        if not 0 <= start <= stop <= self.n_transactions:
            raise ValueError(f"invalid range [{start}, {stop})")
        n = stop - start
        w0 = start >> 6
        w1 = w0 + (n + _WORD_BITS - 1) // _WORD_BITS
        # always copy: the tail masking below must never touch self.words
        words = self.words[:, w0:w1].copy()
        tail = n % _WORD_BITS
        if tail and words.shape[1]:
            words[:, -1] &= np.uint64((1 << tail) - 1)
        return PackedBitmaps(words, n)

    # -- counting ------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return self.words.shape[0]

    def row(self, item_id: int) -> np.ndarray:
        """Item *item_id*'s packed occurrence words (a read-only view)."""
        return self.words[item_id]

    def item_counts(self) -> np.ndarray:
        """Support count of every item, shape (n_items,)."""
        if self.words.size == 0:
            return np.zeros(self.n_items, dtype=np.int64)
        halves = self.words.view(np.uint16).reshape(self.n_items, -1)
        return _POPCOUNT16[halves].sum(axis=1, dtype=np.int64)

    def and_words(self, ids: Sequence[int]) -> np.ndarray:
        """AND of the given items' word rows (a fresh array)."""
        if not ids:
            raise ValueError("need at least one item id")
        acc = self.words[ids[0]].copy()
        for i in ids[1:]:
            acc &= self.words[i]
        return acc

    def support_count(self, ids: Sequence[int]) -> int:
        """σ(X) = popcount(AND of the items' bitsets)."""
        if not ids:
            return self.n_transactions
        if len(ids) == 1:
            return popcount(self.words[ids[0]])
        return popcount(self.and_words(ids))

    def counts_for(
        self, itemsets: Iterable[Iterable[int]]
    ) -> dict[frozenset[int], int]:
        """Batch support counts for many itemsets (one AND chain each)."""
        out: dict[frozenset[int], int] = {}
        for itemset in itemsets:
            key = frozenset(itemset)
            out[key] = self.support_count(sorted(key))
        return out

    def to_bool(self, words: np.ndarray | None = None) -> np.ndarray:
        """Unpack a word row (or any AND result) to a boolean vector."""
        if words is None:
            raise ValueError("pass the word array to unpack")
        raw = np.ascontiguousarray(words, dtype=_LE_U64).view(np.uint8)
        bits = np.unpackbits(raw, bitorder="little")
        return bits[: self.n_transactions].astype(bool)

    def nbytes(self) -> int:
        return int(self.words.nbytes)

    def __repr__(self) -> str:
        return (
            f"PackedBitmaps(n_items={self.n_items}, "
            f"n_transactions={self.n_transactions}, "
            f"words={self.words.shape[1]})"
        )


# -- content-addressed bitmap cache ------------------------------------------
#: fingerprint → PackedBitmaps; small LRU, guarded for thread safety
_CACHE_MAX = 8
_CACHE: OrderedDict[str, PackedBitmaps] = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0


def get_shared_bitmaps(db: "TransactionDatabase") -> PackedBitmaps:
    """Bitmaps for *db*, shared across equal-content databases.

    Keyed by :meth:`TransactionDatabase.fingerprint`, so a re-generated
    trace, a cache-restored database, or an shm-attached worker's copy
    all resolve to one build.  Falls through to a fresh
    :meth:`PackedBitmaps.from_database` on a miss (recorded under the
    ``bitmap-build`` kernel counter).
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = db.fingerprint()
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _CACHE_HITS += 1
            return cached
    with kernel_timer("bitmap-build"):
        built = PackedBitmaps.from_database(db)
    with _CACHE_LOCK:
        _CACHE_MISSES += 1
        _CACHE[key] = built
        while len(_CACHE) > _CACHE_MAX:
            _CACHE.popitem(last=False)
    return built


def bitmap_cache_info() -> dict[str, int]:
    """Lifetime counters of the shared bitmap cache."""
    with _CACHE_LOCK:
        return {
            "size": len(_CACHE),
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
        }


def clear_bitmap_cache() -> None:
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


# -- kernel counters ----------------------------------------------------------
#: kernel name → [seconds, calls]; global (not thread-local) so threaded
#: backend workers report into the same ledger
_KERNELS: dict[str, list[float]] = {}
_KERNEL_LOCK = threading.Lock()


def record_kernel(name: str, seconds: float, calls: int = 1) -> None:
    """Accumulate *seconds* of wall time under kernel *name*."""
    with _KERNEL_LOCK:
        entry = _KERNELS.setdefault(name, [0.0, 0])
        entry[0] += seconds
        entry[1] += calls


@contextmanager
def kernel_timer(name: str):
    """Time a block and record it under kernel *name*."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record_kernel(name, time.perf_counter() - start)


def kernel_snapshot() -> dict[str, tuple[float, int]]:
    """Current accumulated (seconds, calls) per kernel name."""
    with _KERNEL_LOCK:
        return {name: (entry[0], entry[1]) for name, entry in _KERNELS.items()}


def kernel_delta(
    before: dict[str, tuple[float, int]],
    after: dict[str, tuple[float, int]],
) -> tuple[tuple[str, float, int], ...]:
    """Sorted (name, seconds, calls) tuples of what ran between snapshots."""
    out = []
    for name, (seconds, calls) in after.items():
        prev_s, prev_c = before.get(name, (0.0, 0))
        if calls > prev_c or seconds > prev_s:
            out.append((name, seconds - prev_s, calls - prev_c))
    return tuple(sorted(out))


def reset_kernel_counters() -> None:
    with _KERNEL_LOCK:
        _KERNELS.clear()
