"""Columnar (struct-of-arrays) rule storage — the canonical rule form.

A :class:`RuleTable` holds ``n`` association rules as parallel arrays
instead of ``n`` :class:`~repro.core.rules.AssociationRule` objects:

* antecedent / consequent item ids in CSR form (``ant_indptr`` /
  ``ant_ids`` and ``cons_indptr`` / ``cons_ids``, ids sorted ascending
  within each row), and
* one float64 column per quality metric
  (``support``, ``confidence``, ``lift``, ``leverage``, ``conviction``).

Every layer that used to pass ``list[AssociationRule]`` around — rule
generation, Sec. III-D pruning, RuleBook persistence, the serving index —
can instead operate on these columns with numpy, materialising
``AssociationRule`` views lazily (``table[i]`` / ``table.to_rules()``)
only at the presentation boundary.

Subset tests for the pruning algebra come from :meth:`side_masks`: each
side is packed into ``ceil(n_items/64)`` uint64 words (bit ``t & 63`` of
word ``t >> 6`` set iff item ``t`` is present), the same layout as
``core/bitmap.py`` uses for transactions, so ``X ⊆ Y`` is
``(x & y) == x`` over a handful of words.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from .items import Item, ItemVocabulary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rules imports us)
    from .rules import AssociationRule

__all__ = ["RuleTable", "METRIC_COLUMNS"]

#: metric column names, in canonical (persistence) order
METRIC_COLUMNS = ("support", "confidence", "lift", "leverage", "conviction")

_IDS_DTYPE = np.int32
_INDPTR_DTYPE = np.int64


def _as_indptr(values: object) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=_INDPTR_DTYPE)
    if arr.ndim != 1 or arr.size == 0 or arr[0] != 0:
        raise ValueError("indptr must be 1-D, non-empty and start at 0")
    return arr


def _as_ids(values: object) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=_IDS_DTYPE)


def _as_metric(values: object, n: int, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"metric column {name!r} must have shape ({n},)")
    return arr


def csr_range_gather(indptr: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised gather of CSR rows.

    Returns ``(new_indptr, flat_index)`` where ``flat_index`` selects, from
    the source value array, the concatenation of the requested rows.
    """
    lens = np.diff(indptr)[rows]
    new_indptr = np.concatenate(([0], np.cumsum(lens, dtype=_INDPTR_DTYPE)))
    total = int(new_indptr[-1])
    if total == 0:
        return new_indptr, np.empty(0, dtype=np.int64)
    flat = (
        np.repeat(indptr[rows], lens)
        + np.arange(total, dtype=np.int64)
        - np.repeat(new_indptr[:-1], lens)
    )
    return new_indptr, flat


def pack_side_masks(indptr: np.ndarray, ids: np.ndarray, n_items: int) -> np.ndarray:
    """Pack CSR id rows into ``(n_rows, ceil(n_items/64))`` uint64 masks."""
    n_rows = len(indptr) - 1
    n_words = max(1, (int(n_items) + 63) >> 6)
    masks = np.zeros((n_rows, n_words), dtype=np.uint64)
    if ids.size:
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))
        ids64 = ids.astype(np.uint64)
        np.bitwise_or.at(masks, (rows, ids64 >> np.uint64(6)),
                         np.uint64(1) << (ids64 & np.uint64(63)))
    return masks


def rows_containing(indptr: np.ndarray, ids: np.ndarray, item_id: int) -> np.ndarray:
    """Boolean array: does CSR row ``i`` contain *item_id*?"""
    n_rows = len(indptr) - 1
    if n_rows == 0 or ids.size == 0:
        return np.zeros(n_rows, dtype=bool)
    hits = ids == item_id
    # segment-OR via cumulative sum of hits at row boundaries
    csum = np.concatenate(([0], np.cumsum(hits, dtype=np.int64)))
    return (csum[indptr[1:]] - csum[indptr[:-1]]) > 0


class RuleTable:
    """Struct-of-arrays container for scored association rules.

    The table is immutable by convention: transformation methods
    (:meth:`select`, :meth:`concat`, :meth:`sort_canonical`,
    :meth:`remap_ids`) return new tables sharing the vocabulary.
    """

    __slots__ = (
        "vocabulary",
        "ant_indptr", "ant_ids", "cons_indptr", "cons_ids",
        "support", "confidence", "lift", "leverage", "conviction",
        "n_skipped_lookups",
        "_sort_strings_cache",
    )

    def __init__(
        self,
        vocabulary: ItemVocabulary,
        ant_indptr: object,
        ant_ids: object,
        cons_indptr: object,
        cons_ids: object,
        support: object,
        confidence: object,
        lift: object,
        leverage: object,
        conviction: object,
        *,
        n_skipped_lookups: int = 0,
    ) -> None:
        self.vocabulary = vocabulary
        self.ant_indptr = _as_indptr(ant_indptr)
        self.ant_ids = _as_ids(ant_ids)
        self.cons_indptr = _as_indptr(cons_indptr)
        self.cons_ids = _as_ids(cons_ids)
        n = len(self.ant_indptr) - 1
        if len(self.cons_indptr) - 1 != n:
            raise ValueError("antecedent and consequent indptr disagree on row count")
        if self.ant_indptr[-1] != len(self.ant_ids):
            raise ValueError("ant_indptr does not cover ant_ids")
        if self.cons_indptr[-1] != len(self.cons_ids):
            raise ValueError("cons_indptr does not cover cons_ids")
        self.support = _as_metric(support, n, "support")
        self.confidence = _as_metric(confidence, n, "confidence")
        self.lift = _as_metric(lift, n, "lift")
        self.leverage = _as_metric(leverage, n, "leverage")
        self.conviction = _as_metric(conviction, n, "conviction")
        self.n_skipped_lookups = int(n_skipped_lookups)
        self._sort_strings_cache: tuple[np.ndarray, np.ndarray] | None = None

    # -- pickling (slots class) ------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls, vocabulary: ItemVocabulary | None = None) -> "RuleTable":
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        zero = np.zeros(0, dtype=np.float64)
        return cls(
            vocab,
            np.zeros(1, dtype=_INDPTR_DTYPE), np.zeros(0, dtype=_IDS_DTYPE),
            np.zeros(1, dtype=_INDPTR_DTYPE), np.zeros(0, dtype=_IDS_DTYPE),
            zero, zero.copy(), zero.copy(), zero.copy(), zero.copy(),
        )

    @classmethod
    def from_rules(
        cls,
        rules: Sequence["AssociationRule"],
        vocabulary: ItemVocabulary | None = None,
    ) -> "RuleTable":
        """Build a table from materialised rule objects.

        With no *vocabulary* the id space is reconstructed from the rules'
        own ids; gaps (ids the rules never use) get placeholder items so
        every rule id stays valid in the rebuilt vocabulary.
        """
        rules = list(rules)
        if vocabulary is None:
            id_to_item: dict[int, Item] = {}
            for rule in rules:
                for item, item_id in zip(
                    sorted(rule.antecedent) + sorted(rule.consequent),
                    sorted(rule.antecedent_ids) + sorted(rule.consequent_ids),
                ):
                    id_to_item[item_id] = item
            max_id = max(id_to_item) if id_to_item else -1
            vocabulary = ItemVocabulary(
                id_to_item.get(i, Item("__unused__", str(i)))
                for i in range(max_id + 1)
            )
        ant_indptr = [0]
        cons_indptr = [0]
        ant_ids: list[int] = []
        cons_ids: list[int] = []
        cols: dict[str, list[float]] = {name: [] for name in METRIC_COLUMNS}
        for rule in rules:
            ant_ids.extend(sorted(rule.antecedent_ids))
            cons_ids.extend(sorted(rule.consequent_ids))
            ant_indptr.append(len(ant_ids))
            cons_indptr.append(len(cons_ids))
            for name in METRIC_COLUMNS:
                cols[name].append(getattr(rule, name))
        return cls(
            vocabulary, ant_indptr, ant_ids, cons_indptr, cons_ids,
            cols["support"], cols["confidence"], cols["lift"],
            cols["leverage"], cols["conviction"],
        )

    @classmethod
    def concat(cls, tables: Sequence["RuleTable"]) -> "RuleTable":
        """Concatenate tables row-wise (shared vocabulary assumed)."""
        tables = [t for t in tables if t is not None]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]
        vocab = tables[0].vocabulary
        ant_off = 0
        cons_off = 0
        ant_parts = []
        cons_parts = []
        for i, table in enumerate(tables):
            if i:
                ant_parts.append(table.ant_indptr[1:] + ant_off)
                cons_parts.append(table.cons_indptr[1:] + cons_off)
            else:
                ant_parts.append(table.ant_indptr)
                cons_parts.append(table.cons_indptr)
            ant_off += int(table.ant_indptr[-1])
            cons_off += int(table.cons_indptr[-1])
        out = cls(
            vocab,
            np.concatenate(ant_parts),
            np.concatenate([t.ant_ids for t in tables]),
            np.concatenate(cons_parts),
            np.concatenate([t.cons_ids for t in tables]),
            np.concatenate([t.support for t in tables]),
            np.concatenate([t.confidence for t in tables]),
            np.concatenate([t.lift for t in tables]),
            np.concatenate([t.leverage for t in tables]),
            np.concatenate([t.conviction for t in tables]),
            n_skipped_lookups=sum(t.n_skipped_lookups for t in tables),
        )
        if all(t._sort_strings_cache is not None for t in tables):
            out._sort_strings_cache = (
                np.concatenate([t._sort_strings_cache[0] for t in tables]),
                np.concatenate([t._sort_strings_cache[1] for t in tables]),
            )
        return out

    # -- basic container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.ant_indptr) - 1

    def __iter__(self) -> Iterator["AssociationRule"]:
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:
        return f"RuleTable(n_rules={len(self)}, n_items={len(self.vocabulary)})"

    def ant_row(self, i: int) -> np.ndarray:
        return self.ant_ids[self.ant_indptr[i]:self.ant_indptr[i + 1]]

    def cons_row(self, i: int) -> np.ndarray:
        return self.cons_ids[self.cons_indptr[i]:self.cons_indptr[i + 1]]

    def __getitem__(self, i: int) -> "AssociationRule":
        from .rules import AssociationRule

        ant = frozenset(int(x) for x in self.ant_row(i))
        cons = frozenset(int(x) for x in self.cons_row(i))
        return AssociationRule(
            antecedent=self.vocabulary.items_of(ant),
            consequent=self.vocabulary.items_of(cons),
            antecedent_ids=ant,
            consequent_ids=cons,
            support=float(self.support[i]),
            confidence=float(self.confidence[i]),
            lift=float(self.lift[i]),
            leverage=float(self.leverage[i]),
            conviction=float(self.conviction[i]),
        )

    def to_rules(self) -> list["AssociationRule"]:
        """Materialise every row as an :class:`AssociationRule` (in order)."""
        return [self[i] for i in range(len(self))]

    # -- derived columns -------------------------------------------------------

    @property
    def n_items(self) -> int:
        """Width of the id space covered by the table's masks."""
        width = len(self.vocabulary)
        if self.ant_ids.size:
            width = max(width, int(self.ant_ids.max()) + 1)
        if self.cons_ids.size:
            width = max(width, int(self.cons_ids.max()) + 1)
        return width

    def ant_sizes(self) -> np.ndarray:
        return np.diff(self.ant_indptr)

    def cons_sizes(self) -> np.ndarray:
        return np.diff(self.cons_indptr)

    def side_masks(self, side: str) -> np.ndarray:
        """Packed uint64 id-masks for one side ('antecedent'/'consequent')."""
        if side == "antecedent":
            return pack_side_masks(self.ant_indptr, self.ant_ids, self.n_items)
        if side == "consequent":
            return pack_side_masks(self.cons_indptr, self.cons_ids, self.n_items)
        raise ValueError(f"unknown side {side!r}")

    def contains_id(self, item_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(in_antecedent, in_consequent) boolean columns for *item_id*."""
        return (
            rows_containing(self.ant_indptr, self.ant_ids, item_id),
            rows_containing(self.cons_indptr, self.cons_ids, item_id),
        )

    def rule_keys(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """(antecedent ids, consequent ids) tuple keys, one per row."""
        return [
            (tuple(int(x) for x in self.ant_row(i)),
             tuple(int(x) for x in self.cons_row(i)))
            for i in range(len(self))
        ]

    # -- transformations -------------------------------------------------------

    def select(self, rows: object) -> "RuleTable":
        """New table with the given rows (keeps the given order)."""
        rows = np.asarray(rows, dtype=np.int64)
        ant_indptr, ant_flat = csr_range_gather(self.ant_indptr, rows)
        cons_indptr, cons_flat = csr_range_gather(self.cons_indptr, rows)
        out = RuleTable(
            self.vocabulary,
            ant_indptr, self.ant_ids[ant_flat],
            cons_indptr, self.cons_ids[cons_flat],
            self.support[rows], self.confidence[rows], self.lift[rows],
            self.leverage[rows], self.conviction[rows],
            n_skipped_lookups=self.n_skipped_lookups,
        )
        if self._sort_strings_cache is not None:
            ant_strs, cons_strs = self._sort_strings_cache
            out._sort_strings_cache = (ant_strs[rows], cons_strs[rows])
        return out

    def remap_ids(
        self, mapping: np.ndarray, vocabulary: ItemVocabulary
    ) -> "RuleTable":
        """New table with ids translated through ``mapping[old] = new``.

        The mapping must preserve item identity (``vocabulary.item_of(new)
        == old vocabulary.item_of(old)``), so cached sort strings — which
        depend only on the items — stay valid.  Ids are re-sorted within
        each row after translation.
        """
        ant_ids = mapping[self.ant_ids].astype(_IDS_DTYPE)
        cons_ids = mapping[self.cons_ids].astype(_IDS_DTYPE)
        ant_ids = _sort_within_rows(self.ant_indptr, ant_ids)
        cons_ids = _sort_within_rows(self.cons_indptr, cons_ids)
        out = RuleTable(
            vocabulary,
            self.ant_indptr, ant_ids, self.cons_indptr, cons_ids,
            self.support, self.confidence, self.lift,
            self.leverage, self.conviction,
            n_skipped_lookups=self.n_skipped_lookups,
        )
        out._sort_strings_cache = self._sort_strings_cache
        return out

    # -- canonical ordering ----------------------------------------------------

    def sort_strings(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row ``str(sorted(items))`` for each side (object arrays).

        These are the exact tie-break strings the object path uses in its
        deterministic sort, cached because persistence and merging reuse
        them.
        """
        if self._sort_strings_cache is None:
            cache: dict[tuple[int, ...], str] = {}
            self._sort_strings_cache = (
                _side_strings(self.ant_indptr, self.ant_ids, self.vocabulary, cache),
                _side_strings(self.cons_indptr, self.cons_ids, self.vocabulary, cache),
            )
        return self._sort_strings_cache

    def canonical_order(self) -> np.ndarray:
        """Permutation sorting rows by the canonical deterministic key.

        The key is ``(-lift, -confidence, -support, str(sorted(antecedent
        items)), str(sorted(consequent items)))`` — byte-for-byte the sort
        the object path applies.
        """
        n = len(self)
        if n <= 1:
            return np.arange(n, dtype=np.int64)
        ant_strs, cons_strs = self.sort_strings()
        rank = {s: i for i, s in enumerate(sorted(set(ant_strs) | set(cons_strs)))}
        ant_rank = np.fromiter((rank[s] for s in ant_strs), np.int64, count=n)
        cons_rank = np.fromiter((rank[s] for s in cons_strs), np.int64, count=n)
        return np.lexsort(
            (cons_rank, ant_rank, -self.support, -self.confidence, -self.lift)
        )

    def sort_canonical(self) -> "RuleTable":
        """New table in canonical deterministic order."""
        order = self.canonical_order()
        if np.array_equal(order, np.arange(len(self))):
            return self
        return self.select(order)

    def dedup(self) -> "RuleTable":
        """New table keeping the first occurrence of each (ant, cons) pair."""
        seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
        keep: list[int] = []
        for i, key in enumerate(self.rule_keys()):
            if key not in seen:
                seen.add(key)
                keep.append(i)
        if len(keep) == len(self):
            return self
        return self.select(np.asarray(keep, dtype=np.int64))


def _sort_within_rows(indptr: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Sort ids ascending within each CSR row."""
    if ids.size == 0:
        return ids
    rows = np.repeat(np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr))
    order = np.lexsort((ids, rows))
    return ids[order]


def _side_strings(
    indptr: np.ndarray,
    ids: np.ndarray,
    vocabulary: ItemVocabulary,
    cache: dict[tuple[int, ...], str],
) -> np.ndarray:
    out = np.empty(len(indptr) - 1, dtype=object)
    for i in range(len(indptr) - 1):
        key = tuple(int(x) for x in ids[indptr[i]:indptr[i + 1]])
        text = cache.get(key)
        if text is None:
            text = str(sorted(vocabulary.items_of(key)))
            cache[key] = text
        out[i] = text
    return out
