"""Transaction database: the mining algorithms' shared input format.

A :class:`TransactionDatabase` stores one transaction per job in CSR
layout — a flat ``indices`` array of item ids plus an ``indptr`` offset
array — exactly like a scipy CSR matrix but without the dependency.  The
layout gives cache-friendly sequential scans (Apriori counting,
FP-tree construction) and cheap per-item *vertical* views (boolean
occurrence vectors) used by Eclat and by rule-metric evaluation.

Invariants:

* within each transaction, item ids are strictly increasing (sorted,
  deduplicated at construction);
* every id is a valid index into the attached :class:`ItemVocabulary`.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from .items import Item, ItemVocabulary, as_item

__all__ = ["TransactionDatabase"]


class TransactionDatabase:
    """An immutable set of transactions over an interned item vocabulary."""

    __slots__ = (
        "vocabulary",
        "indptr",
        "indices",
        "_vertical_cache",
        "_fingerprint_cache",
    )

    def __init__(
        self,
        vocabulary: ItemVocabulary,
        indptr: np.ndarray,
        indices: np.ndarray,
    ):
        self.vocabulary = vocabulary
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int32)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if self.indptr.size == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must end at len(indices)")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= len(vocabulary)
        ):
            raise ValueError("item id out of vocabulary range")
        self._vertical_cache: np.ndarray | None = None
        self._fingerprint_cache: str | None = None

    # -- construction --------------------------------------------------------
    @classmethod
    def from_itemsets(
        cls,
        transactions: Iterable[Iterable[Item | str]],
        vocabulary: ItemVocabulary | None = None,
    ) -> "TransactionDatabase":
        """Build from an iterable of item collections.

        Items are interned into *vocabulary* (a fresh one by default);
        duplicates within a transaction are collapsed.
        """
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        indptr = [0]
        flat: list[int] = []
        for txn in transactions:
            ids = sorted({vocab.intern(as_item(i)) for i in txn})
            flat.extend(ids)
            indptr.append(len(flat))
        return cls(
            vocab,
            np.asarray(indptr, dtype=np.int64),
            np.asarray(flat, dtype=np.int32),
        )

    @classmethod
    def from_onehot(
        cls,
        matrix: np.ndarray,
        items: Sequence[Item | str],
        vocabulary: ItemVocabulary | None = None,
    ) -> "TransactionDatabase":
        """Build from a boolean one-hot matrix (n_transactions × n_items).

        This is the hand-off point from the preprocessing pipeline, which
        produces exactly this encoding (Sec. III-E: "the database gets
        transformed using one-hot encoding into the FP-Growth algorithm's
        supported format").
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("one-hot matrix must be 2-D")
        if matrix.shape[1] != len(items):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns but {len(items)} items given"
            )
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        col_ids = np.asarray([vocab.intern(as_item(i)) for i in items], dtype=np.int32)
        if len(set(col_ids.tolist())) != col_ids.size:
            raise ValueError("duplicate items in one-hot column list")
        rows, cols = np.nonzero(matrix)
        ids = col_ids[cols]
        # sort by (row, id) so per-transaction ids are increasing
        order = np.lexsort((ids, rows))
        indices = ids[order]
        counts = np.bincount(rows, minlength=matrix.shape[0])
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return cls(vocab, indptr, indices)

    # -- basic protocol --------------------------------------------------------
    def __len__(self) -> int:
        return self.indptr.size - 1

    @property
    def n_transactions(self) -> int:
        return len(self)

    @property
    def n_items(self) -> int:
        return len(self.vocabulary)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n_transactions={len(self)}, "
            f"n_items={self.n_items}, nnz={self.indices.size})"
        )

    def transaction(self, i: int) -> np.ndarray:
        """Item ids of transaction *i* (a read-only view, sorted)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def iter_id_transactions(self) -> Iterator[np.ndarray]:
        """Iterate transactions as sorted id arrays (views, do not mutate)."""
        indptr, indices = self.indptr, self.indices
        for i in range(len(self)):
            yield indices[indptr[i] : indptr[i + 1]]

    def iter_item_transactions(self) -> Iterator[frozenset[Item]]:
        """Iterate transactions decoded back to Item frozensets."""
        for ids in self.iter_id_transactions():
            yield self.vocabulary.items_of(ids.tolist())

    # -- support machinery ------------------------------------------------------
    def item_support_counts(self) -> np.ndarray:
        """Support count of every item id, shape (n_items,)."""
        return np.bincount(self.indices, minlength=self.n_items).astype(np.int64)

    def vertical(self) -> np.ndarray:
        """Boolean occurrence matrix of shape (n_items, n_transactions).

        Column-major per item: ``vertical()[i]`` is the occurrence vector
        of item ``i``.  Built lazily and cached; at trace scale (hundreds
        of items × ~1e5 jobs) this is tens of MB of bools, which is the
        memory/speed trade-off Eclat makes by design.
        """
        if self._vertical_cache is None:
            mat = np.zeros((self.n_items, len(self)), dtype=bool)
            rows = np.repeat(
                np.arange(len(self), dtype=np.int64), np.diff(self.indptr)
            )
            mat[self.indices, rows] = True
            self._vertical_cache = mat
        return self._vertical_cache

    def fingerprint(self) -> str:
        """Content hash of the database: transactions plus vocabulary.

        Two databases with identical transactions over identical
        vocabularies fingerprint equally even when built independently,
        which is what lets the engine's itemset cache address results by
        *content* rather than object identity.  Computed lazily and
        cached — the database is immutable, so the hash never changes.
        """
        if self._fingerprint_cache is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.ascontiguousarray(self.indptr).tobytes())
            digest.update(np.ascontiguousarray(self.indices).tobytes())
            for item in self.vocabulary:
                digest.update(str(item).encode())
                digest.update(b"\x00")
            self._fingerprint_cache = digest.hexdigest()
        return self._fingerprint_cache

    def support_count(self, itemset: Iterable[int | Item | str]) -> int:
        """σ(X): number of transactions containing every element of X."""
        ids = self._to_ids(itemset)
        if not ids:
            return len(self)
        vertical = self.vertical()
        mask = vertical[ids[0]]
        for i in ids[1:]:
            mask = mask & vertical[i]
        return int(mask.sum())

    def support(self, itemset: Iterable[int | Item | str]) -> float:
        """supp(X) = σ(X) / |D| (Eq. 1)."""
        if len(self) == 0:
            return 0.0
        return self.support_count(itemset) / len(self)

    def _to_ids(self, itemset: Iterable[int | Item | str]) -> list[int]:
        ids: list[int] = []
        for element in itemset:
            if isinstance(element, (int, np.integer)):
                item_id = int(element)
                if not 0 <= item_id < self.n_items:
                    raise KeyError(f"item id {item_id} out of range")
                ids.append(item_id)
            else:
                ids.append(self.vocabulary.id_of(element))
        return ids

    # -- projections -------------------------------------------------------------
    def restrict_items(self, keep_ids: Iterable[int]) -> "TransactionDatabase":
        """Drop all items outside *keep_ids* (ids preserved, vocab shared).

        Used to discard infrequent items before FP-tree construction and by
        the skew filter; empty transactions are retained so that |D| (and
        thus every support value) is unchanged.
        """
        keep = np.zeros(self.n_items, dtype=bool)
        keep[np.fromiter(keep_ids, dtype=np.int64)] = True
        mask = keep[self.indices]
        new_indices = self.indices[mask]
        # prefix-sum of the keep mask evaluated at transaction boundaries is
        # robust to empty transactions anywhere in the database
        cum = np.concatenate([[0], np.cumsum(mask, dtype=np.int64)])
        new_indptr = cum[self.indptr]
        return TransactionDatabase(self.vocabulary, new_indptr, new_indices)

    def sample(self, indices: Sequence[int]) -> "TransactionDatabase":
        """Select a subset of transactions by row index (for partitioning)."""
        idx = np.asarray(indices, dtype=np.int64)
        lengths = np.diff(self.indptr)[idx]
        new_indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        parts = [self.transaction(int(i)) for i in idx]
        new_indices = (
            np.concatenate(parts) if parts else np.asarray([], dtype=np.int32)
        )
        return TransactionDatabase(self.vocabulary, new_indptr, new_indices)

    def split(self, n_parts: int) -> list["TransactionDatabase"]:
        """Split into *n_parts* contiguous chunks (for SON partitioned mining)."""
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        bounds = np.linspace(0, len(self), n_parts + 1).astype(np.int64)
        return [
            self.sample(range(int(bounds[k]), int(bounds[k + 1])))
            for k in range(n_parts)
            if bounds[k + 1] > bounds[k]
        ]
