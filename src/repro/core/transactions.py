"""Transaction database: the mining algorithms' shared input format.

A :class:`TransactionDatabase` stores one transaction per job in CSR
layout — a flat ``indices`` array of item ids plus an ``indptr`` offset
array — exactly like a scipy CSR matrix but without the dependency.  The
layout gives cache-friendly sequential scans (Apriori counting,
FP-tree construction) and cheap per-item *vertical* views used by Eclat
and by rule-metric evaluation.  Vertical views are served as packed
``uint64`` bitsets (:mod:`repro.core.bitmap`), 64 transactions per word,
not as dense booleans — one bit per transaction instead of one byte.

Invariants:

* within each transaction, item ids are strictly increasing (sorted,
  deduplicated at construction);
* every id is a valid index into the attached :class:`ItemVocabulary`.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from .items import Item, ItemVocabulary, as_item

__all__ = ["TransactionDatabase"]

#: SON partition boundaries snap to this many transactions so that every
#: partition starts on a bitmap word boundary (see :meth:`split`)
_ALIGN = 64


class TransactionDatabase:
    """An immutable set of transactions over an interned item vocabulary."""

    __slots__ = (
        "vocabulary",
        "indptr",
        "indices",
        "shm_segment",
        "_bitmaps_cache",
        "_fingerprint_cache",
    )

    def __init__(
        self,
        vocabulary: ItemVocabulary,
        indptr: np.ndarray,
        indices: np.ndarray,
    ):
        self.vocabulary = vocabulary
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int32)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if self.indptr.size == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must end at len(indices)")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= len(vocabulary)
        ):
            raise ValueError("item id out of vocabulary range")
        #: the shared-memory attachment backing this database's arrays,
        #: when it came from repro.shm.attach_database — kept here so the
        #: segment mapping lives exactly as long as the views into it
        self.shm_segment = None
        self._bitmaps_cache = None
        self._fingerprint_cache: str | None = None

    # -- construction --------------------------------------------------------
    @classmethod
    def from_itemsets(
        cls,
        transactions: Iterable[Iterable[Item | str | int]],
        vocabulary: ItemVocabulary | None = None,
    ) -> "TransactionDatabase":
        """Build from an iterable of item collections.

        Items are interned into *vocabulary* (a fresh one by default);
        duplicates within a transaction are collapsed.  When a
        vocabulary is supplied and the transactions are already
        id-encoded (integer elements), construction takes the
        vectorised :meth:`from_encoded` fast path instead of the
        per-transaction ``sorted(set(...))`` loop.
        """
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        if vocabulary is not None:
            txns = [
                t if isinstance(t, (list, tuple)) else list(t)
                for t in transactions
            ]
            probe = next((next(iter(t)) for t in txns if t), None)
            if probe is None or isinstance(probe, (int, np.integer)):
                return cls.from_encoded(txns, vocab)
            transactions = txns
        indptr = [0]
        flat: list[int] = []
        for txn in transactions:
            ids = sorted({vocab.intern(as_item(i)) for i in txn})
            flat.extend(ids)
            indptr.append(len(flat))
        return cls(
            vocab,
            np.asarray(indptr, dtype=np.int64),
            np.asarray(flat, dtype=np.int32),
        )

    @classmethod
    def from_encoded(
        cls,
        transactions: Sequence[Sequence[int]],
        vocabulary: ItemVocabulary,
    ) -> "TransactionDatabase":
        """Fast path for already id-encoded transactions.

        Per-transaction sorting and deduplication happen in one
        vectorised pass (a single lexsort over all ids) instead of a
        Python-level ``sorted(set(...))`` per transaction — the
        difference between O(jobs) interpreter iterations and a handful
        of numpy calls when rebuilding databases from encoded streams
        (sliding windows, replayed traces).
        """
        n = len(transactions)
        if n == 0:
            return cls(
                vocabulary,
                np.zeros(1, dtype=np.int64),
                np.asarray([], dtype=np.int32),
            )
        lengths = np.fromiter(
            (len(t) for t in transactions), dtype=np.int64, count=n
        )
        total = int(lengths.sum())
        flat = np.empty(total, dtype=np.int64)
        offset = 0
        for txn, length in zip(transactions, lengths):
            if length:
                flat[offset : offset + length] = txn
                offset += length
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
        order = np.lexsort((flat, rows))
        flat = flat[order]
        rows = rows[order]
        if flat.size:
            keep = np.concatenate(
                ([True], (flat[1:] != flat[:-1]) | (rows[1:] != rows[:-1]))
            )
            flat = flat[keep]
            rows = rows[keep]
        counts = np.bincount(rows, minlength=n)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls(vocabulary, indptr, flat.astype(np.int32))

    @classmethod
    def from_onehot(
        cls,
        matrix: np.ndarray,
        items: Sequence[Item | str],
        vocabulary: ItemVocabulary | None = None,
    ) -> "TransactionDatabase":
        """Build from a boolean one-hot matrix (n_transactions × n_items).

        This is the hand-off point from the preprocessing pipeline, which
        produces exactly this encoding (Sec. III-E: "the database gets
        transformed using one-hot encoding into the FP-Growth algorithm's
        supported format").
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("one-hot matrix must be 2-D")
        if matrix.shape[1] != len(items):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns but {len(items)} items given"
            )
        vocab = vocabulary if vocabulary is not None else ItemVocabulary()
        col_ids = np.asarray([vocab.intern(as_item(i)) for i in items], dtype=np.int32)
        if len(set(col_ids.tolist())) != col_ids.size:
            raise ValueError("duplicate items in one-hot column list")
        rows, cols = np.nonzero(matrix)
        ids = col_ids[cols]
        # sort by (row, id) so per-transaction ids are increasing
        order = np.lexsort((ids, rows))
        indices = ids[order]
        counts = np.bincount(rows, minlength=matrix.shape[0])
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return cls(vocab, indptr, indices)

    # -- basic protocol --------------------------------------------------------
    def __len__(self) -> int:
        return self.indptr.size - 1

    @property
    def n_transactions(self) -> int:
        return len(self)

    @property
    def n_items(self) -> int:
        return len(self.vocabulary)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n_transactions={len(self)}, "
            f"n_items={self.n_items}, nnz={self.indices.size})"
        )

    def transaction(self, i: int) -> np.ndarray:
        """Item ids of transaction *i* (a read-only view, sorted)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def iter_id_transactions(self) -> Iterator[np.ndarray]:
        """Iterate transactions as sorted id arrays (views, do not mutate)."""
        indptr, indices = self.indptr, self.indices
        for i in range(len(self)):
            yield indices[indptr[i] : indptr[i + 1]]

    def iter_item_transactions(self) -> Iterator[frozenset[Item]]:
        """Iterate transactions decoded back to Item frozensets."""
        for ids in self.iter_id_transactions():
            yield self.vocabulary.items_of(ids.tolist())

    # -- support machinery ------------------------------------------------------
    def item_support_counts(self) -> np.ndarray:
        """Support count of every item id, shape (n_items,)."""
        return np.bincount(self.indices, minlength=self.n_items).astype(np.int64)

    def bitmaps(self):
        """Packed per-item occurrence bitsets (:class:`PackedBitmaps`).

        Built lazily; the instance caches a reference, and the build
        itself is shared through a content-addressed cache keyed by
        :meth:`fingerprint`, so equal-content databases (re-generated
        traces, repeated runs) reuse one build — and databases attached
        from a shared-memory segment (:mod:`repro.shm`) arrive with this
        cache pre-seeded by zero-copy views.  At trace scale this is
        8× smaller than the dense boolean matrix it replaced —
        ``n_items × n_transactions`` *bits*, not bytes.
        """
        if self._bitmaps_cache is None:
            from .bitmap import get_shared_bitmaps

            self._bitmaps_cache = get_shared_bitmaps(self)
        return self._bitmaps_cache

    def fingerprint(self) -> str:
        """Content hash of the database: transactions plus vocabulary.

        Two databases with identical transactions over identical
        vocabularies fingerprint equally even when built independently,
        which is what lets the engine's itemset cache address results by
        *content* rather than object identity.  Computed lazily and
        cached — the database is immutable, so the hash never changes.
        """
        if self._fingerprint_cache is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.ascontiguousarray(self.indptr).tobytes())
            digest.update(np.ascontiguousarray(self.indices).tobytes())
            for item in self.vocabulary:
                digest.update(str(item).encode())
                digest.update(b"\x00")
            self._fingerprint_cache = digest.hexdigest()
        return self._fingerprint_cache

    def support_count(self, itemset: Iterable[int | Item | str]) -> int:
        """σ(X): number of transactions containing every element of X."""
        ids = self._to_ids(itemset)
        if not ids:
            return len(self)
        return self.bitmaps().support_count(sorted(ids))

    def support(self, itemset: Iterable[int | Item | str]) -> float:
        """supp(X) = σ(X) / |D| (Eq. 1)."""
        if len(self) == 0:
            return 0.0
        return self.support_count(itemset) / len(self)

    def _to_ids(self, itemset: Iterable[int | Item | str]) -> list[int]:
        ids: list[int] = []
        for element in itemset:
            if isinstance(element, (int, np.integer)):
                item_id = int(element)
                if not 0 <= item_id < self.n_items:
                    raise KeyError(f"item id {item_id} out of range")
                ids.append(item_id)
            else:
                ids.append(self.vocabulary.id_of(element))
        return ids

    # -- projections -------------------------------------------------------------
    def restrict_items(self, keep_ids: Iterable[int]) -> "TransactionDatabase":
        """Drop all items outside *keep_ids* (ids preserved, vocab shared).

        Used to discard infrequent items before FP-tree construction and by
        the skew filter; empty transactions are retained so that |D| (and
        thus every support value) is unchanged.
        """
        keep = np.zeros(self.n_items, dtype=bool)
        keep[np.fromiter(keep_ids, dtype=np.int64)] = True
        mask = keep[self.indices]
        new_indices = self.indices[mask]
        # prefix-sum of the keep mask evaluated at transaction boundaries is
        # robust to empty transactions anywhere in the database
        cum = np.concatenate([[0], np.cumsum(mask, dtype=np.int64)])
        new_indptr = cum[self.indptr]
        return TransactionDatabase(self.vocabulary, new_indptr, new_indices)

    def sample(self, indices: Sequence[int]) -> "TransactionDatabase":
        """Select a subset of transactions by row index (for partitioning)."""
        idx = np.asarray(indices, dtype=np.int64)
        lengths = np.diff(self.indptr)[idx]
        new_indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        parts = [self.transaction(int(i)) for i in idx]
        new_indices = (
            np.concatenate(parts) if parts else np.asarray([], dtype=np.int32)
        )
        return TransactionDatabase(self.vocabulary, new_indptr, new_indices)

    def txn_range(self, start: int, stop: int) -> "TransactionDatabase":
        """The contiguous transaction range ``[start, stop)`` as a database.

        Zero-copy: the returned database's ``indices``/``indptr`` are
        views of this one's arrays.  When this database's packed bitmaps
        are already built and *start* is 64-aligned, the range inherits
        a word-slice of them instead of rebuilding — the mechanism SON
        partition workers use to reuse the parent's bitmaps.
        """
        if not 0 <= start <= stop <= len(self):
            raise ValueError(f"invalid transaction range [{start}, {stop})")
        lo = self.indptr[start]
        sub = TransactionDatabase(
            self.vocabulary,
            self.indptr[start : stop + 1] - lo,
            self.indices[lo : self.indptr[stop]],
        )
        if self._bitmaps_cache is not None and start % _ALIGN == 0:
            sub._bitmaps_cache = self._bitmaps_cache.slice_range(start, stop)
        return sub

    def partition_bounds(self, n_parts: int) -> np.ndarray:
        """Contiguous partition boundaries for :meth:`split`.

        Evenly spaced, but snapped down to 64-transaction multiples when
        the database is large enough — aligned partitions start on a
        bitmap word boundary, so their bitmaps are word slices of the
        parent's (see :meth:`txn_range`).  Alignment changes *which*
        candidates SON phase 1 proposes, never the final answer (phase 2
        recounts every candidate exactly).
        """
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        n = len(self)
        bounds = np.linspace(0, n, n_parts + 1).astype(np.int64)
        if n >= n_parts * _ALIGN:
            bounds[1:-1] = (bounds[1:-1] // _ALIGN) * _ALIGN
        return bounds

    def split(self, n_parts: int) -> list["TransactionDatabase"]:
        """Split into *n_parts* contiguous chunks (for SON partitioned mining)."""
        bounds = self.partition_bounds(n_parts)
        return [
            self.txn_range(int(bounds[k]), int(bounds[k + 1]))
            for k in range(n_parts)
            if bounds[k + 1] > bounds[k]
        ]
