"""Keyword-centric rule pruning — Conditions 1–4 of Sec. III-D.

A *keyword* is the item under investigation (e.g. ``Failed`` or
``SM Util = 0%``).  Rules with the keyword in the **consequent** serve
*cause analysis*; rules with the keyword in the **antecedent** serve
*characteristic analysis*.  The four conditions discard rules that are
redundant relative to a shorter/longer sibling:

=========  ==================  ==========================  ===============================
Condition  keyword position    rules differ in             keeps
=========  ==================  ==========================  ===============================
1          consequent          antecedent (X_i ⊂ X_j)      shorter X unless longer has
                                                           clearly higher lift & similar supp
2          antecedent          consequent (Y_i ⊂ Y_j)      more specific Y unless lift drops
3          consequent (both)   consequent (Y_i ⊂ Y_j)      concise consequent
4          antecedent (both)   antecedent (X_i ⊂ X_j)      generalising antecedent
=========  ==================  ==========================  ===============================

``C_lift`` and ``C_supp`` (both ≥ 1; the paper uses 1.5 for every trace)
regulate how easily "similar lift" / "similar support" comparisons fire.

Decisions are evaluated against the *original* rule set (non-cascading):
every pairwise test sees all input rules, and a rule is dropped if any
test marks it.  This makes the result independent of rule enumeration
order, which the paper's description implicitly assumes.

The production path (:func:`prune_rule_table` and the array core behind
:func:`prune_rules`) evaluates the conditions columnarly: rules sharing a
side are grouped via ``np.unique`` over packed uint64 id-masks, and the
strict-subset test for every pair in a group is a broadcasted
``(x & y) == x`` over mask words — the same packing ``core/bitmap.py``
uses for transactions.  :func:`prune_rules_legacy` keeps the original
pairwise object implementation as the correctness oracle.

An optional *condensation* pass (``condense=True``) further shrinks the
survivor set per Kannan & Bhaskaran: rules whose null-invariant
interestingness is weak (low Kulczynski or extreme imbalance ratio) are
dropped first, then near-duplicate rules — same consequent, antecedent
Jaccard similarity above a threshold — collapse onto their strongest
representative.  Condensation is off by default and reported as pseudo
conditions 5 (low interest) and 6 (clustered).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .bitmap import kernel_timer
from .interest import extended_metrics_columns
from .items import Item, as_item
from .rules import AssociationRule
from .ruletable import RuleTable, pack_side_masks

__all__ = [
    "PruningConfig",
    "CondenseConfig",
    "PruningReport",
    "prune_rules",
    "prune_rule_table",
    "prune_rules_legacy",
    "keyword_rules",
]

#: pseudo condition codes used by the condensation pass in reports
CONDITION_LOW_INTEREST = 5
CONDITION_CLUSTERED = 6

#: pairwise chunk size: bounds the (chunk × group × words) broadcast to a
#: few MB even for the largest keyword groups
_PAIR_CHUNK = 256


@dataclass(frozen=True, slots=True)
class PruningConfig:
    """Tunables of the pruning pass (paper defaults)."""

    c_lift: float = 1.5
    c_supp: float = 1.5

    def __post_init__(self) -> None:
        if self.c_lift < 1.0:
            raise ValueError("C_lift must be >= 1")
        if self.c_supp < 1.0:
            raise ValueError("C_supp must be >= 1")


@dataclass(frozen=True, slots=True)
class CondenseConfig:
    """Tunables of the optional condensation pass.

    Rules with ``kulczynski < min_kulczynski`` or ``imbalance_ratio >
    max_imbalance`` are dropped as uninteresting; among the remainder,
    rules whose antecedent Jaccard similarity to an already-kept rule
    with the same consequent reaches ``min_jaccard`` are clustered away
    (first kept rule in input order is the representative — highest
    ranked, since rule tables arrive in lift-descending order).
    """

    min_kulczynski: float = 0.3
    max_imbalance: float = 0.95
    min_jaccard: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_kulczynski <= 1.0:
            raise ValueError("min_kulczynski must be in [0, 1]")
        if not 0.0 <= self.max_imbalance <= 1.0:
            raise ValueError("max_imbalance must be in [0, 1]")
        if not 0.0 < self.min_jaccard <= 1.0:
            raise ValueError("min_jaccard must be in (0, 1]")


@dataclass(slots=True)
class PruningReport:
    """Bookkeeping of which condition removed how many rules."""

    n_input: int = 0
    n_kept: int = 0
    pruned_by_condition: Counter = dataclass_field(default_factory=Counter)

    @property
    def n_pruned(self) -> int:
        return self.n_input - self.n_kept

    def __str__(self) -> str:
        parts = ", ".join(
            f"C{cond}: {count}" for cond, count in sorted(self.pruned_by_condition.items())
        )
        return (
            f"PruningReport(input={self.n_input}, kept={self.n_kept}, "
            f"pruned={self.n_pruned} [{parts or 'none'}])"
        )


def keyword_rules(
    rules: Iterable[AssociationRule], keyword: Item | str
) -> list[AssociationRule]:
    """Restrict to rules mentioning *keyword* on either side."""
    kw = as_item(keyword)
    return [r for r in rules if r.contains(kw)]


def _similar_or_higher(a: float, b: float, margin: float) -> bool:
    """True if ``margin * a >= b`` — "a is similar to or higher than b"."""
    return margin * a >= b


# ---------------------------------------------------------------------------
# columnar condition kernel
# ---------------------------------------------------------------------------


def _group_rows(masks: np.ndarray) -> Iterator[np.ndarray]:
    """Yield index arrays (input order) of rows sharing an identical mask.

    Groups of size 1 cannot contain a nested pair and are skipped.
    """
    if len(masks) < 2:
        return
    _, inverse = np.unique(masks, axis=0, return_inverse=True)
    inverse = np.asarray(inverse).ravel()
    order = np.argsort(inverse, kind="stable")
    counts = np.bincount(inverse)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    for g in range(len(counts)):
        if counts[g] >= 2:
            yield order[bounds[g] : bounds[g + 1]]


def _phase_shared_consequent(
    rows: np.ndarray,
    ant_masks: np.ndarray,
    ant_sizes: np.ndarray,
    lift: np.ndarray,
    support: np.ndarray,
    in_ant: np.ndarray,
    in_cons: np.ndarray,
    c_lift: float,
    c_supp: float,
    cond: np.ndarray,
) -> None:
    """Conditions 1 and 4 over one shared-consequent group.

    For every strictly-nested antecedent pair (short ⊂ long):

    * C1 (keyword in the shared consequent): ``c_lift·lift_s ≥ lift_l``
      marks the long rule, else ``c_supp·supp_l ≥ supp_s`` marks the
      short rule;
    * C4 (keyword in both antecedents): ``c_lift·lift_s ≥ lift_l`` marks
      the long rule.
    """
    masks = ant_masks[rows]
    sizes = ant_sizes[rows]
    lf = lift[rows]
    sp = support[rows]
    ia = in_ant[rows]
    ic = in_cons[rows]
    n = len(rows)
    mark1 = np.zeros(n, dtype=bool)
    mark4 = np.zeros(n, dtype=bool)
    for s0 in range(0, n, _PAIR_CHUNK):
        s1 = min(s0 + _PAIR_CHUNK, n)
        chunk = masks[s0:s1]
        subset = ((chunk[:, None, :] & masks[None, :, :]) == chunk[:, None, :]).all(axis=2)
        strict = subset & (sizes[s0:s1, None] < sizes[None, :])
        lift_short_ok = (c_lift * lf[s0:s1, None]) >= lf[None, :]
        pair1 = strict & ic[s0:s1, None]
        mark1 |= (pair1 & lift_short_ok).any(axis=0)
        supp_long_ok = (c_supp * sp[None, :]) >= sp[s0:s1, None]
        mark1[s0:s1] |= (pair1 & ~lift_short_ok & supp_long_ok).any(axis=1)
        pair4 = strict & ~ic[s0:s1, None] & ia[s0:s1, None] & ia[None, :]
        mark4 |= (pair4 & lift_short_ok).any(axis=0)
    cond[rows] = np.where(mark1, 1, np.where(mark4, 4, cond[rows]))


def _phase_shared_antecedent(
    rows: np.ndarray,
    cons_masks: np.ndarray,
    cons_sizes: np.ndarray,
    lift: np.ndarray,
    support: np.ndarray,
    in_ant: np.ndarray,
    in_cons: np.ndarray,
    c_lift: float,
    c_supp: float,
    cond: np.ndarray,
) -> None:
    """Conditions 2 and 3 over one shared-antecedent group.

    For every strictly-nested consequent pair (short ⊂ long):

    * C2 (keyword in the shared antecedent): ``c_lift·lift_l ≥ lift_s``
      AND ``c_supp·supp_l ≥ supp_s`` marks the short rule, else
      ``c_lift·lift_l < lift_s`` marks the long rule;
    * C3 (keyword in both consequents): ``c_lift·lift_s ≥ lift_l`` marks
      the long rule.
    """
    masks = cons_masks[rows]
    sizes = cons_sizes[rows]
    lf = lift[rows]
    sp = support[rows]
    ia = in_ant[rows]
    ic = in_cons[rows]
    n = len(rows)
    mark2 = np.zeros(n, dtype=bool)
    mark3 = np.zeros(n, dtype=bool)
    for s0 in range(0, n, _PAIR_CHUNK):
        s1 = min(s0 + _PAIR_CHUNK, n)
        chunk = masks[s0:s1]
        subset = ((chunk[:, None, :] & masks[None, :, :]) == chunk[:, None, :]).all(axis=2)
        strict = subset & (sizes[s0:s1, None] < sizes[None, :])
        pair2 = strict & ia[s0:s1, None]
        lift_long_ok = (c_lift * lf[None, :]) >= lf[s0:s1, None]
        supp_long_ok = (c_supp * sp[None, :]) >= sp[s0:s1, None]
        mark2[s0:s1] |= (pair2 & lift_long_ok & supp_long_ok).any(axis=1)
        mark2 |= (pair2 & ~lift_long_ok).any(axis=0)
        pair3 = strict & ~ia[s0:s1, None] & ic[s0:s1, None] & ic[None, :]
        lift_short_ok = (c_lift * lf[s0:s1, None]) >= lf[None, :]
        mark3 |= (pair3 & lift_short_ok).any(axis=0)
    cond[rows] = np.where(
        cond[rows] != 0, cond[rows], np.where(mark2, 2, np.where(mark3, 3, 0))
    )


def _prune_arrays(
    ant_indptr: np.ndarray,
    ant_ids: np.ndarray,
    cons_indptr: np.ndarray,
    cons_ids: np.ndarray,
    lift: np.ndarray,
    support: np.ndarray,
    confidence: np.ndarray,
    in_ant: np.ndarray,
    in_cons: np.ndarray,
    config: PruningConfig,
    condense_config: CondenseConfig | None,
) -> np.ndarray:
    """Array core shared by both public paths.

    Returns the per-rule condition code (0 = kept; 1–4 = Sec. III-D;
    5/6 = condensation).  All inputs are keyword-relevant rules only.
    The recorded code mirrors the legacy ``setdefault`` semantics: the
    consequent-grouped phase (C1/C4) wins over the antecedent-grouped
    phase (C2/C3), which wins over condensation.
    """
    n = len(lift)
    cond = np.zeros(n, dtype=np.int8)
    if n == 0:
        return cond

    n_items = 1
    if ant_ids.size:
        n_items = max(n_items, int(ant_ids.max()) + 1)
    if cons_ids.size:
        n_items = max(n_items, int(cons_ids.max()) + 1)

    with kernel_timer("prune-masks"):
        ant_masks = pack_side_masks(ant_indptr, ant_ids, n_items)
        cons_masks = pack_side_masks(cons_indptr, cons_ids, n_items)
        ant_sizes = np.diff(ant_indptr)
        cons_sizes = np.diff(cons_indptr)

    with kernel_timer("prune-pairs"):
        for rows in _group_rows(cons_masks):
            _phase_shared_consequent(
                rows, ant_masks, ant_sizes, lift, support,
                in_ant, in_cons, config.c_lift, config.c_supp, cond,
            )
        for rows in _group_rows(ant_masks):
            _phase_shared_antecedent(
                rows, cons_masks, cons_sizes, lift, support,
                in_ant, in_cons, config.c_lift, config.c_supp, cond,
            )

    if condense_config is not None:
        with kernel_timer("prune-condense"):
            survivors = np.flatnonzero(cond == 0)
            cond[survivors] = _condense_codes(
                [frozenset(int(x) for x in ant_ids[ant_indptr[i]:ant_indptr[i + 1]])
                 for i in survivors],
                [tuple(int(x) for x in cons_ids[cons_indptr[i]:cons_indptr[i + 1]])
                 for i in survivors],
                support[survivors], confidence[survivors], lift[survivors],
                condense_config,
            )
    return cond


def _condense_codes(
    ant_sets: Sequence[frozenset[int]],
    cons_keys: Sequence[tuple[int, ...]],
    support: np.ndarray,
    confidence: np.ndarray,
    lift: np.ndarray,
    config: CondenseConfig,
) -> np.ndarray:
    """Condensation codes (0 kept, 5 low interest, 6 clustered)."""
    ext = extended_metrics_columns(support, confidence, lift)
    interesting = (ext.kulczynski >= config.min_kulczynski) & (
        ext.imbalance_ratio <= config.max_imbalance
    )
    codes = np.where(interesting, 0, CONDITION_LOW_INTEREST).astype(np.int8)
    representatives: dict[tuple[int, ...], list[frozenset[int]]] = defaultdict(list)
    for i in np.flatnonzero(interesting):
        antecedent = ant_sets[i]
        reps = representatives[cons_keys[i]]
        for rep in reps:
            shared = len(antecedent & rep)
            if shared and shared / len(antecedent | rep) >= config.min_jaccard:
                codes[i] = CONDITION_CLUSTERED
                break
        else:
            reps.append(antecedent)
    return codes


# ---------------------------------------------------------------------------
# public paths
# ---------------------------------------------------------------------------


def prune_rule_table(
    table: RuleTable,
    keyword: Item | str,
    config: PruningConfig = PruningConfig(),
    *,
    condense: bool = False,
    condense_config: CondenseConfig | None = None,
) -> tuple[RuleTable, PruningReport]:
    """Apply Conditions 1–4 (and optional condensation) to a RuleTable.

    Rows not containing the keyword are removed up front, matching
    :func:`prune_rules`.  Returns the surviving rows — input order
    preserved — and a :class:`PruningReport`.
    """
    kw = as_item(keyword)
    report = PruningReport()
    keyword_id = table.vocabulary.get_id(kw)
    if keyword_id is None or len(table) == 0:
        return table.select(np.empty(0, dtype=np.int64)), report

    in_ant_all, in_cons_all = table.contains_id(keyword_id)
    relevant_rows = np.flatnonzero(in_ant_all | in_cons_all)
    sub = table.select(relevant_rows)
    report.n_input = len(sub)

    cond = _prune_arrays(
        sub.ant_indptr, sub.ant_ids, sub.cons_indptr, sub.cons_ids,
        sub.lift, sub.support, sub.confidence,
        in_ant_all[relevant_rows], in_cons_all[relevant_rows],
        config,
        (condense_config or CondenseConfig()) if condense else None,
    )
    kept = sub.select(np.flatnonzero(cond == 0))
    report.n_kept = len(kept)
    report.pruned_by_condition.update(int(c) for c in cond if c)
    return kept, report


def prune_rules(
    rules: Sequence[AssociationRule],
    keyword: Item | str,
    config: PruningConfig = PruningConfig(),
    *,
    condense: bool = False,
    condense_config: CondenseConfig | None = None,
) -> tuple[list[AssociationRule], PruningReport]:
    """Apply Conditions 1–4 to *rules* for the given *keyword*.

    Input rules not containing the keyword are removed up front (they are
    irrelevant to the analysis objective).  Returns the surviving rules in
    their input order plus a :class:`PruningReport`.  Runs the same array
    kernel as :func:`prune_rule_table`; :func:`prune_rules_legacy` is the
    original object implementation kept as the oracle.

    With ``condense=True`` an additional interestingness + clustering
    pass (see :class:`CondenseConfig`) shrinks the survivor set; dropped
    rules are reported under pseudo conditions 5 and 6.
    """
    kw = as_item(keyword)
    relevant = keyword_rules(rules, kw)
    report = PruningReport(n_input=len(relevant))
    if not relevant:
        report.n_kept = 0
        return [], report

    ant_indptr = [0]
    cons_indptr = [0]
    ant_ids: list[int] = []
    cons_ids: list[int] = []
    for rule in relevant:
        ant_ids.extend(sorted(rule.antecedent_ids))
        cons_ids.extend(sorted(rule.consequent_ids))
        ant_indptr.append(len(ant_ids))
        cons_indptr.append(len(cons_ids))

    cond = _prune_arrays(
        np.asarray(ant_indptr, dtype=np.int64),
        np.asarray(ant_ids, dtype=np.int64),
        np.asarray(cons_indptr, dtype=np.int64),
        np.asarray(cons_ids, dtype=np.int64),
        np.fromiter((r.lift for r in relevant), np.float64, count=len(relevant)),
        np.fromiter((r.support for r in relevant), np.float64, count=len(relevant)),
        np.fromiter((r.confidence for r in relevant), np.float64, count=len(relevant)),
        np.fromiter((kw in r.antecedent for r in relevant), bool, count=len(relevant)),
        np.fromiter((kw in r.consequent for r in relevant), bool, count=len(relevant)),
        config,
        (condense_config or CondenseConfig()) if condense else None,
    )
    kept = [rule for i, rule in enumerate(relevant) if not cond[i]]
    report.n_kept = len(kept)
    report.pruned_by_condition.update(int(c) for c in cond if c)
    return kept, report


def prune_rules_legacy(
    rules: Sequence[AssociationRule],
    keyword: Item | str,
    config: PruningConfig = PruningConfig(),
) -> tuple[list[AssociationRule], PruningReport]:
    """The original pairwise object implementation — the pruning oracle.

    The CI equality sweep asserts the array kernel keeps exactly the same
    rules with the same per-condition counts on all three traces.  Do not
    change this function's behaviour.
    """
    kw = as_item(keyword)
    relevant = keyword_rules(rules, kw)
    report = PruningReport(n_input=len(relevant))

    pruned: dict[int, int] = {}  # rule index → condition that removed it

    def mark(idx: int, condition: int) -> None:
        # first condition to fire is the one recorded
        pruned.setdefault(idx, condition)

    in_consequent = [kw in r.consequent for r in relevant]
    in_antecedent = [kw in r.antecedent for r in relevant]

    # --- group by consequent: Conditions 1 and 4 (antecedents differ) --------
    by_consequent: dict[frozenset[int], list[int]] = defaultdict(list)
    for idx, rule in enumerate(relevant):
        by_consequent[rule.consequent_ids].append(idx)

    for group in by_consequent.values():
        for pos_a, i in enumerate(group):
            for j in group[pos_a + 1 :]:
                short, long_ = _nested(relevant, i, j, side="antecedent")
                if short is None:
                    continue
                rs, rl = relevant[short], relevant[long_]
                if in_consequent[short]:  # keyword in (shared) consequent
                    # Condition 1: cause analysis, antecedents nested
                    if _similar_or_higher(rs.lift, rl.lift, config.c_lift):
                        mark(long_, 1)
                    elif _similar_or_higher(rl.support, rs.support, config.c_supp):
                        mark(short, 1)
                elif in_antecedent[short] and in_antecedent[long_]:
                    # Condition 4: characteristics, keyword in both antecedents
                    if _similar_or_higher(rs.lift, rl.lift, config.c_lift):
                        mark(long_, 4)

    # --- group by antecedent: Conditions 2 and 3 (consequents differ) --------
    by_antecedent: dict[frozenset[int], list[int]] = defaultdict(list)
    for idx, rule in enumerate(relevant):
        by_antecedent[rule.antecedent_ids].append(idx)

    for group in by_antecedent.values():
        for pos_a, i in enumerate(group):
            for j in group[pos_a + 1 :]:
                short, long_ = _nested(relevant, i, j, side="consequent")
                if short is None:
                    continue
                rs, rl = relevant[short], relevant[long_]
                if in_antecedent[short]:  # keyword in (shared) antecedent
                    # Condition 2: characteristics, consequents nested
                    if _similar_or_higher(
                        rl.lift, rs.lift, config.c_lift
                    ) and _similar_or_higher(rl.support, rs.support, config.c_supp):
                        mark(short, 2)
                    elif config.c_lift * rl.lift < rs.lift:
                        mark(long_, 2)
                elif in_consequent[short] and in_consequent[long_]:
                    # Condition 3: cause analysis, keyword in both consequents
                    if _similar_or_higher(rs.lift, rl.lift, config.c_lift):
                        mark(long_, 3)

    kept = [r for idx, r in enumerate(relevant) if idx not in pruned]
    report.n_kept = len(kept)
    report.pruned_by_condition.update(pruned.values())
    return kept, report


def _nested(
    rules: Sequence[AssociationRule], i: int, j: int, side: str
) -> tuple[int | None, int | None]:
    """If one rule's *side* itemset strictly contains the other's, return
    (shorter index, longer index); else (None, None)."""
    a = getattr(rules[i], f"{side}_ids")
    b = getattr(rules[j], f"{side}_ids")
    if a < b:
        return i, j
    if b < a:
        return j, i
    return None, None
