"""Keyword-centric rule pruning — Conditions 1–4 of Sec. III-D.

A *keyword* is the item under investigation (e.g. ``Failed`` or
``SM Util = 0%``).  Rules with the keyword in the **consequent** serve
*cause analysis*; rules with the keyword in the **antecedent** serve
*characteristic analysis*.  The four conditions discard rules that are
redundant relative to a shorter/longer sibling:

=========  ==================  ==========================  ===============================
Condition  keyword position    rules differ in             keeps
=========  ==================  ==========================  ===============================
1          consequent          antecedent (X_i ⊂ X_j)      shorter X unless longer has
                                                           clearly higher lift & similar supp
2          antecedent          consequent (Y_i ⊂ Y_j)      more specific Y unless lift drops
3          consequent (both)   consequent (Y_i ⊂ Y_j)      concise consequent
4          antecedent (both)   antecedent (X_i ⊂ X_j)      generalising antecedent
=========  ==================  ==========================  ===============================

``C_lift`` and ``C_supp`` (both ≥ 1; the paper uses 1.5 for every trace)
regulate how easily "similar lift" / "similar support" comparisons fire.

Decisions are evaluated against the *original* rule set (non-cascading):
every pairwise test sees all input rules, and a rule is dropped if any
test marks it.  This makes the result independent of rule enumeration
order, which the paper's description implicitly assumes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Sequence

from .items import Item, as_item
from .rules import AssociationRule

__all__ = ["PruningConfig", "PruningReport", "prune_rules", "keyword_rules"]


@dataclass(frozen=True, slots=True)
class PruningConfig:
    """Tunables of the pruning pass (paper defaults)."""

    c_lift: float = 1.5
    c_supp: float = 1.5

    def __post_init__(self) -> None:
        if self.c_lift < 1.0:
            raise ValueError("C_lift must be >= 1")
        if self.c_supp < 1.0:
            raise ValueError("C_supp must be >= 1")


@dataclass(slots=True)
class PruningReport:
    """Bookkeeping of which condition removed how many rules."""

    n_input: int = 0
    n_kept: int = 0
    pruned_by_condition: Counter = dataclass_field(default_factory=Counter)

    @property
    def n_pruned(self) -> int:
        return self.n_input - self.n_kept

    def __str__(self) -> str:
        parts = ", ".join(
            f"C{cond}: {count}" for cond, count in sorted(self.pruned_by_condition.items())
        )
        return (
            f"PruningReport(input={self.n_input}, kept={self.n_kept}, "
            f"pruned={self.n_pruned} [{parts or 'none'}])"
        )


def keyword_rules(
    rules: Iterable[AssociationRule], keyword: Item | str
) -> list[AssociationRule]:
    """Restrict to rules mentioning *keyword* on either side."""
    kw = as_item(keyword)
    return [r for r in rules if r.contains(kw)]


def _similar_or_higher(a: float, b: float, margin: float) -> bool:
    """True if ``margin * a >= b`` — "a is similar to or higher than b"."""
    return margin * a >= b


def prune_rules(
    rules: Sequence[AssociationRule],
    keyword: Item | str,
    config: PruningConfig = PruningConfig(),
) -> tuple[list[AssociationRule], PruningReport]:
    """Apply Conditions 1–4 to *rules* for the given *keyword*.

    Input rules not containing the keyword are removed up front (they are
    irrelevant to the analysis objective).  Returns the surviving rules in
    their input order plus a :class:`PruningReport`.
    """
    kw = as_item(keyword)
    relevant = keyword_rules(rules, kw)
    report = PruningReport(n_input=len(relevant))

    pruned: dict[int, int] = {}  # rule index → condition that removed it

    def mark(idx: int, condition: int) -> None:
        # first condition to fire is the one recorded
        pruned.setdefault(idx, condition)

    in_consequent = [kw in r.consequent for r in relevant]
    in_antecedent = [kw in r.antecedent for r in relevant]

    # --- group by consequent: Conditions 1 and 4 (antecedents differ) --------
    by_consequent: dict[frozenset[int], list[int]] = defaultdict(list)
    for idx, rule in enumerate(relevant):
        by_consequent[rule.consequent_ids].append(idx)

    for group in by_consequent.values():
        for pos_a, i in enumerate(group):
            for j in group[pos_a + 1 :]:
                short, long_ = _nested(relevant, i, j, side="antecedent")
                if short is None:
                    continue
                rs, rl = relevant[short], relevant[long_]
                if in_consequent[short]:  # keyword in (shared) consequent
                    # Condition 1: cause analysis, antecedents nested
                    if _similar_or_higher(rs.lift, rl.lift, config.c_lift):
                        mark(long_, 1)
                    elif _similar_or_higher(rl.support, rs.support, config.c_supp):
                        mark(short, 1)
                elif in_antecedent[short] and in_antecedent[long_]:
                    # Condition 4: characteristics, keyword in both antecedents
                    if _similar_or_higher(rs.lift, rl.lift, config.c_lift):
                        mark(long_, 4)

    # --- group by antecedent: Conditions 2 and 3 (consequents differ) --------
    by_antecedent: dict[frozenset[int], list[int]] = defaultdict(list)
    for idx, rule in enumerate(relevant):
        by_antecedent[rule.antecedent_ids].append(idx)

    for group in by_antecedent.values():
        for pos_a, i in enumerate(group):
            for j in group[pos_a + 1 :]:
                short, long_ = _nested(relevant, i, j, side="consequent")
                if short is None:
                    continue
                rs, rl = relevant[short], relevant[long_]
                if in_antecedent[short]:  # keyword in (shared) antecedent
                    # Condition 2: characteristics, consequents nested
                    if _similar_or_higher(
                        rl.lift, rs.lift, config.c_lift
                    ) and _similar_or_higher(rl.support, rs.support, config.c_supp):
                        mark(short, 2)
                    elif config.c_lift * rl.lift < rs.lift:
                        mark(long_, 2)
                elif in_consequent[short] and in_consequent[long_]:
                    # Condition 3: cause analysis, keyword in both consequents
                    if _similar_or_higher(rs.lift, rl.lift, config.c_lift):
                        mark(long_, 3)

    kept = [r for idx, r in enumerate(relevant) if idx not in pruned]
    report.n_kept = len(kept)
    report.pruned_by_condition.update(pruned.values())
    return kept, report


def _nested(
    rules: Sequence[AssociationRule], i: int, j: int, side: str
) -> tuple[int | None, int | None]:
    """If one rule's *side* itemset strictly contains the other's, return
    (shorter index, longer index); else (None, None)."""
    a = getattr(rules[i], f"{side}_ids")
    b = getattr(rules[j], f"{side}_ids")
    if a < b:
        return i, j
    if b < a:
        return j, i
    return None, None
