"""Association-rule mining core — the paper's primary contribution.

Layers, bottom to top:

* :mod:`repro.core.items` / :mod:`repro.core.transactions` — interned
  items and the CSR transaction database.
* :mod:`repro.core.bitmap` — packed uint64 occurrence bitsets, the
  counting kernel every miner shares.
* :mod:`repro.core.fpgrowth`, :mod:`repro.core.apriori`,
  :mod:`repro.core.eclat` — interchangeable frequent-itemset miners.
* :mod:`repro.core.itemsets`, :mod:`repro.core.metrics`,
  :mod:`repro.core.rules` — result containers, rule quality metrics and
  rule enumeration.
* :mod:`repro.core.ruletable` — the columnar (struct-of-arrays)
  :class:`RuleTable`, the canonical rule representation every layer
  above rule generation operates on.
* :mod:`repro.core.pruning` — the keyword-centric Conditions 1–4.
* :mod:`repro.core.mining` — one-call orchestration with paper defaults.
"""

from .apriori import apriori, apriori_naive, generate_candidates
from .bitmap import PackedBitmaps, popcount
from .eclat import eclat
from .fpgrowth import FPNode, FPTree, fpgrowth, fpgrowth_object
from .items import Item, ItemVocabulary, render_itemset
from .interest import (
    ExtendedMetrics,
    ExtendedMetricsColumns,
    cosine,
    extended_metrics,
    extended_metrics_columns,
    extended_metrics_table,
    imbalance_ratio,
    jaccard,
    kulczynski,
)
from .itemsets import FrequentItemsets
from .metrics import RuleMetrics, compute_metrics, confidence, conviction, leverage, lift
from .negative import NegativeRule, mine_negative_keyword_rules
from .patterns import closed_itemsets, maximal_itemsets, support_of_from_closed
from .mining import (
    ALGORITHMS,
    KeywordRuleSet,
    MiningConfig,
    mine_frequent_itemsets,
    mine_keyword_rules,
    mine_rules,
)
from .pruning import (
    CondenseConfig,
    PruningConfig,
    PruningReport,
    keyword_rules,
    prune_rule_table,
    prune_rules,
    prune_rules_legacy,
)
from .rules import (
    AssociationRule,
    generate_rule_table,
    generate_rules,
    generate_rules_legacy,
)
from .ruletable import RuleTable
from .transactions import TransactionDatabase

__all__ = [
    "Item",
    "ItemVocabulary",
    "render_itemset",
    "TransactionDatabase",
    "PackedBitmaps",
    "popcount",
    "fpgrowth",
    "fpgrowth_object",
    "FPTree",
    "FPNode",
    "apriori",
    "apriori_naive",
    "generate_candidates",
    "eclat",
    "FrequentItemsets",
    "closed_itemsets",
    "maximal_itemsets",
    "support_of_from_closed",
    "NegativeRule",
    "mine_negative_keyword_rules",
    "ExtendedMetrics",
    "ExtendedMetricsColumns",
    "extended_metrics",
    "extended_metrics_columns",
    "extended_metrics_table",
    "jaccard",
    "cosine",
    "kulczynski",
    "imbalance_ratio",
    "RuleMetrics",
    "compute_metrics",
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "AssociationRule",
    "RuleTable",
    "generate_rules",
    "generate_rule_table",
    "generate_rules_legacy",
    "PruningConfig",
    "CondenseConfig",
    "PruningReport",
    "prune_rules",
    "prune_rule_table",
    "prune_rules_legacy",
    "keyword_rules",
    "MiningConfig",
    "KeywordRuleSet",
    "mine_frequent_itemsets",
    "mine_rules",
    "mine_keyword_rules",
    "ALGORITHMS",
]
