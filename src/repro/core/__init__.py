"""Association-rule mining core — the paper's primary contribution.

Layers, bottom to top:

* :mod:`repro.core.items` / :mod:`repro.core.transactions` — interned
  items and the CSR transaction database.
* :mod:`repro.core.bitmap` — packed uint64 occurrence bitsets, the
  counting kernel every miner shares.
* :mod:`repro.core.fpgrowth`, :mod:`repro.core.apriori`,
  :mod:`repro.core.eclat` — interchangeable frequent-itemset miners.
* :mod:`repro.core.itemsets`, :mod:`repro.core.metrics`,
  :mod:`repro.core.rules` — result containers, rule quality metrics and
  rule enumeration.
* :mod:`repro.core.pruning` — the keyword-centric Conditions 1–4.
* :mod:`repro.core.mining` — one-call orchestration with paper defaults.
"""

from .apriori import apriori, apriori_naive, generate_candidates
from .bitmap import PackedBitmaps, popcount
from .eclat import eclat
from .fpgrowth import FPNode, FPTree, fpgrowth, fpgrowth_object
from .items import Item, ItemVocabulary, render_itemset
from .interest import (
    ExtendedMetrics,
    cosine,
    extended_metrics,
    imbalance_ratio,
    jaccard,
    kulczynski,
)
from .itemsets import FrequentItemsets
from .metrics import RuleMetrics, compute_metrics, confidence, conviction, leverage, lift
from .negative import NegativeRule, mine_negative_keyword_rules
from .patterns import closed_itemsets, maximal_itemsets, support_of_from_closed
from .mining import (
    ALGORITHMS,
    KeywordRuleSet,
    MiningConfig,
    mine_frequent_itemsets,
    mine_keyword_rules,
    mine_rules,
)
from .pruning import PruningConfig, PruningReport, keyword_rules, prune_rules
from .rules import AssociationRule, generate_rules
from .transactions import TransactionDatabase

__all__ = [
    "Item",
    "ItemVocabulary",
    "render_itemset",
    "TransactionDatabase",
    "PackedBitmaps",
    "popcount",
    "fpgrowth",
    "fpgrowth_object",
    "FPTree",
    "FPNode",
    "apriori",
    "apriori_naive",
    "generate_candidates",
    "eclat",
    "FrequentItemsets",
    "closed_itemsets",
    "maximal_itemsets",
    "support_of_from_closed",
    "NegativeRule",
    "mine_negative_keyword_rules",
    "ExtendedMetrics",
    "extended_metrics",
    "jaccard",
    "cosine",
    "kulczynski",
    "imbalance_ratio",
    "RuleMetrics",
    "compute_metrics",
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "AssociationRule",
    "generate_rules",
    "PruningConfig",
    "PruningReport",
    "prune_rules",
    "keyword_rules",
    "MiningConfig",
    "KeywordRuleSet",
    "mine_frequent_itemsets",
    "mine_rules",
    "mine_keyword_rules",
    "ALGORITHMS",
]
