"""Container for the result of a frequent-itemset mining pass.

:class:`FrequentItemsets` couples the raw ``frozenset[int] → count``
mapping produced by the mining algorithms with the vocabulary and database
size needed to interpret it, and offers the lookups that rule generation
performs in its inner loop.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping

from .items import Item, ItemVocabulary, render_itemset

__all__ = ["FrequentItemsets"]


class FrequentItemsets:
    """Frequent itemsets plus the context required to compute supports."""

    __slots__ = ("counts", "vocabulary", "n_transactions", "min_support", "max_len")

    def __init__(
        self,
        counts: Mapping[frozenset[int], int],
        vocabulary: ItemVocabulary,
        n_transactions: int,
        min_support: float,
        max_len: int | None = None,
    ):
        if n_transactions < 0:
            raise ValueError("n_transactions must be >= 0")
        self.counts: dict[frozenset[int], int] = dict(counts)
        self.vocabulary = vocabulary
        self.n_transactions = n_transactions
        self.min_support = min_support
        self.max_len = max_len

    def __len__(self) -> int:
        return len(self.counts)

    def __iter__(self) -> Iterator[frozenset[int]]:
        return iter(self.counts)

    def __contains__(self, itemset: frozenset[int]) -> bool:
        return frozenset(itemset) in self.counts

    def __repr__(self) -> str:
        return (
            f"FrequentItemsets(n={len(self)}, n_transactions={self.n_transactions}, "
            f"min_support={self.min_support})"
        )

    # -- lookups -----------------------------------------------------------------
    def count_of(self, itemset: Iterable[int]) -> int:
        """Support count σ(X); KeyError if X is not frequent."""
        key = frozenset(itemset)
        try:
            return self.counts[key]
        except KeyError:
            raise KeyError(
                f"itemset {self.render(key)} is not frequent at min_support="
                f"{self.min_support}"
            ) from None

    def support_of(self, itemset: Iterable[int]) -> float:
        """Relative support supp(X) ∈ [0, 1]."""
        if self.n_transactions == 0:
            return 0.0
        return self.count_of(itemset) / self.n_transactions

    def get_support(self, itemset: Iterable[int]) -> float | None:
        """Relative support, or None if the itemset is not frequent."""
        key = frozenset(itemset)
        count = self.counts.get(key)
        if count is None or self.n_transactions == 0:
            return None
        return count / self.n_transactions

    # -- views --------------------------------------------------------------------
    def by_length(self) -> dict[int, int]:
        """Histogram: itemset length → number of frequent itemsets."""
        return dict(sorted(Counter(len(s) for s in self.counts).items()))

    def items_sets(self) -> Iterator[tuple[frozenset[Item], float]]:
        """Iterate (decoded itemset, relative support) pairs."""
        n = max(self.n_transactions, 1)
        for ids, count in self.counts.items():
            yield self.vocabulary.items_of(ids), count / n

    def render(self, itemset: Iterable[int]) -> str:
        """Human-readable form of an encoded itemset."""
        return render_itemset(self.vocabulary.items_of(itemset))

    def top(self, k: int, min_length: int = 1) -> list[tuple[frozenset[int], int]]:
        """The *k* highest-support itemsets with at least *min_length* items."""
        eligible = [
            (ids, count)
            for ids, count in self.counts.items()
            if len(ids) >= min_length
        ]
        eligible.sort(key=lambda pair: (-pair[1], sorted(pair[0])))
        return eligible[:k]
