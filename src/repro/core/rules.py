"""Association-rule generation from frequent itemsets (Sec. III-B/D).

For every frequent itemset ``Z`` with ``|Z| ≥ 2``, each non-empty proper
subset ``X ⊂ Z`` yields a candidate rule ``X ⇒ Z∖X``.  The paper filters
candidates by a minimum lift of 1.5 ("the rules we generate are 50% more
likely to appear together than expected assuming the rule antecedent and
consequent are independent"); a minimum confidence can be layered on top.

All supports needed to score a rule are available from the frequent-itemset
table itself (every subset of a frequent itemset is frequent), so rule
generation never rescans the database.

Two implementations coexist:

* :func:`generate_rule_table` — the columnar kernel.  Itemsets are grouped
  by length; every antecedent/consequent split of a length-``L`` class is
  one bit-pattern applied to an ``(M, L)`` id matrix, subset supports come
  from a packed-integer key table via ``np.searchsorted``, all metrics are
  scored in one vectorised batch, and the min-lift / min-confidence /
  keyword filters are boolean masks applied *before* any
  :class:`AssociationRule` object exists.  Returns a
  :class:`~repro.core.ruletable.RuleTable`.
* :func:`generate_rules_legacy` — the original per-split object path,
  retained verbatim as the correctness oracle for the CI equality sweep.

:func:`generate_rules` keeps the historical list-of-objects API by
materialising the kernel's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

import numpy as np

from .bitmap import kernel_timer, record_kernel
from .items import Item, ItemVocabulary, render_itemset
from .itemsets import FrequentItemsets
from .metrics import RuleMetrics, compute_metrics
from .ruletable import RuleTable, csr_range_gather

__all__ = [
    "AssociationRule",
    "generate_rules",
    "generate_rule_table",
    "generate_rules_legacy",
]

#: kernel counter fed by both paths when an incomplete (SON-partitioned)
#: itemset table forces candidate splits to be dropped; ``calls`` carries
#: the number of dropped candidates so ``--profile`` surfaces them.
SKIPPED_KERNEL = "rules-skipped-lookups"


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """An implication ``antecedent ⇒ consequent`` with its quality metrics.

    The id-space fields (``antecedent_ids`` / ``consequent_ids``) are what
    the pruning machinery compares; the decoded frozensets of
    :class:`Item` are for presentation.
    """

    antecedent: frozenset[Item]
    consequent: frozenset[Item]
    antecedent_ids: frozenset[int]
    consequent_ids: frozenset[int]
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def __post_init__(self) -> None:
        if not self.antecedent_ids or not self.consequent_ids:
            raise ValueError("rule sides must be non-empty")
        if self.antecedent_ids & self.consequent_ids:
            raise ValueError("antecedent and consequent must be disjoint")

    def __str__(self) -> str:
        return (
            f"{render_itemset(self.antecedent)} => {render_itemset(self.consequent)}"
            f"  [supp={self.support:.3f}, conf={self.confidence:.3f}, lift={self.lift:.2f}]"
        )

    @property
    def items(self) -> frozenset[Item]:
        """Every item appearing in the rule."""
        return self.antecedent | self.consequent

    @property
    def item_ids(self) -> frozenset[int]:
        return self.antecedent_ids | self.consequent_ids

    @property
    def length(self) -> int:
        """Total number of items across both sides."""
        return len(self.antecedent_ids) + len(self.consequent_ids)

    def contains(self, item: Item | int) -> bool:
        """True if *item* (Item or id) appears on either side."""
        if isinstance(item, int):
            return item in self.antecedent_ids or item in self.consequent_ids
        return item in self.antecedent or item in self.consequent

    def metrics(self) -> RuleMetrics:
        return RuleMetrics(
            support=self.support,
            confidence=self.confidence,
            lift=self.lift,
            leverage=self.leverage,
            conviction=self.conviction,
        )

    def as_row(self) -> dict[str, object]:
        """Flat dict form, used by report tables and CSV export."""
        return {
            "antecedent": ", ".join(i.render() for i in sorted(self.antecedent)),
            "consequent": ", ".join(i.render() for i in sorted(self.consequent)),
            "support": round(self.support, 6),
            "confidence": round(self.confidence, 6),
            "lift": round(self.lift, 6),
            "leverage": round(self.leverage, 6),
            "conviction": self.conviction,
        }


def _make_rule(
    antecedent_ids: frozenset[int],
    consequent_ids: frozenset[int],
    metrics: RuleMetrics,
    vocabulary: ItemVocabulary,
) -> AssociationRule:
    return AssociationRule(
        antecedent=vocabulary.items_of(antecedent_ids),
        consequent=vocabulary.items_of(consequent_ids),
        antecedent_ids=antecedent_ids,
        consequent_ids=consequent_ids,
        support=metrics.support,
        confidence=metrics.confidence,
        lift=metrics.lift,
        leverage=metrics.leverage,
        conviction=metrics.conviction,
    )


def _validate_params(min_lift: float, min_confidence: float) -> None:
    if min_lift < 0:
        raise ValueError("min_lift must be >= 0")
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_confidence must be in [0, 1]")


def generate_rules(
    itemsets: FrequentItemsets,
    min_lift: float = 1.5,
    min_confidence: float = 0.0,
    keyword_ids: Iterable[int] | None = None,
    expand_only: Iterable[frozenset[int]] | None = None,
) -> list[AssociationRule]:
    """Enumerate and score rules from *itemsets* (list-of-objects API).

    Parameters
    ----------
    itemsets:
        Output of a mining pass; supplies all subset supports.
    min_lift:
        Keep rules with ``lift ≥ min_lift`` (paper default 1.5).
    min_confidence:
        Optional extra confidence floor (paper relies on lift alone).
    keyword_ids:
        If given, only rules containing at least one of these item ids are
        emitted — the keyword-relevance restriction of Sec. III-D, applied
        during generation to avoid materialising irrelevant rules.
    expand_only:
        If given, only these itemsets are split into rules (subset
        supports still come from the full table) — the hook the parallel
        rule generator uses to shard work across processes.

    Rules are returned sorted by (lift, confidence, support) descending,
    ties broken by rendered text so output order is deterministic.  This
    is a thin wrapper over :func:`generate_rule_table`; the columnar table
    it materialises from is the canonical representation.
    """
    return generate_rule_table(
        itemsets,
        min_lift=min_lift,
        min_confidence=min_confidence,
        keyword_ids=keyword_ids,
        expand_only=expand_only,
    ).to_rules()


def generate_rule_table(
    itemsets: FrequentItemsets,
    min_lift: float = 1.5,
    min_confidence: float = 0.0,
    keyword_ids: Iterable[int] | None = None,
    expand_only: Iterable[frozenset[int]] | None = None,
) -> RuleTable:
    """Columnar rule generation: enumerate, score and filter as arrays.

    Semantics are identical to :func:`generate_rules_legacy` (same
    candidate set, same IEEE-double metric arithmetic, same deterministic
    output order) but no per-rule object is created: the result is a
    :class:`RuleTable` whose rows are exactly the surviving rules.
    Candidate splits whose subset supports are missing from an incomplete
    (SON-partitioned) table are counted in ``table.n_skipped_lookups``
    and surfaced through the ``rules-skipped-lookups`` kernel counter.
    """
    _validate_params(min_lift, min_confidence)
    keywords = frozenset(keyword_ids) if keyword_ids is not None else None

    vocabulary = itemsets.vocabulary
    n = itemsets.n_transactions
    if n == 0:
        return RuleTable.empty(vocabulary)
    counts = itemsets.counts
    if not counts:
        return RuleTable.empty(vocabulary)

    with kernel_timer("rules-enumerate"):
        # ---- support lookup table over ALL frequent itemsets ----
        table_sets: list[tuple[int, ...]] = [tuple(sorted(s)) for s in counts]
        table_counts = np.fromiter(
            counts.values(), dtype=np.int64, count=len(counts)
        )
        max_id = max((t[-1] for t in table_sets if t), default=-1)
        max_len = max((len(t) for t in table_sets), default=0)

        # ---- surface itemsets to expand, grouped by length ----
        if expand_only is not None:
            surface: Iterable[tuple[frozenset[int], int]] = (
                (itemset, counts[itemset]) for itemset in expand_only
            )
        else:
            surface = counts.items()

        by_len: dict[int, tuple[list[tuple[int, ...]], list[int]]] = {}
        for itemset, count_xy in surface:
            if len(itemset) < 2:
                continue
            if keywords is not None and not (itemset & keywords):
                continue
            tups, cnts = by_len.setdefault(len(itemset), ([], []))
            tups.append(tuple(sorted(itemset)))
            cnts.append(count_xy)

        if not by_len:
            return RuleTable.empty(vocabulary)

        # ---- enumerate splits: packed-key kernel or dict fallback ----
        bits = (max_id + 1).bit_length()
        if bits * max_len <= 64:
            cxy, ant_rows, cons_rows, n_skipped = _enumerate_packed(
                by_len, table_sets, bits, max_len
            )
        else:  # pragma: no cover - needs > ~2^64 packed key space
            cxy, ant_rows, cons_rows, n_skipped = _enumerate_dict(
                by_len, counts
            )

    if n_skipped:
        record_kernel(SKIPPED_KERNEL, 0.0, n_skipped)
    if cxy.size == 0:
        empty = RuleTable.empty(vocabulary)
        empty.n_skipped_lookups = n_skipped
        return empty

    # ---- score every candidate in one batch; filter before materialising ----
    with kernel_timer("rules-score"):
        supp_xy = cxy.astype(np.float64) / n
        supp_x = table_counts[ant_rows].astype(np.float64) / n
        supp_y = table_counts[cons_rows].astype(np.float64) / n
        denom = supp_x * supp_y
        with np.errstate(divide="ignore", invalid="ignore"):
            conf = np.where(supp_x > 0.0, supp_xy / supp_x, 0.0)
            lift_arr = np.where(denom > 0.0, supp_xy / denom, 0.0)
            conviction_arr = np.where(
                conf >= 1.0, np.inf, (1.0 - supp_y) / (1.0 - conf)
            )
        leverage_arr = supp_xy - denom
        keep = np.flatnonzero((lift_arr >= min_lift) & (conf >= min_confidence))

    ant_rows = ant_rows[keep]
    cons_rows = cons_rows[keep]

    # ---- survivors: CSR id rows gathered from the itemset table ----
    table_lens = np.fromiter(
        (len(t) for t in table_sets), dtype=np.int64, count=len(table_sets)
    )
    table_indptr = np.concatenate(([0], np.cumsum(table_lens)))
    table_ids = np.fromiter(
        (i for t in table_sets for i in t), dtype=np.int64,
        count=int(table_indptr[-1]),
    )
    ant_indptr, ant_flat = csr_range_gather(table_indptr, ant_rows)
    cons_indptr, cons_flat = csr_range_gather(table_indptr, cons_rows)

    table = RuleTable(
        vocabulary,
        ant_indptr, table_ids[ant_flat],
        cons_indptr, table_ids[cons_flat],
        supp_xy[keep], conf[keep], lift_arr[keep],
        leverage_arr[keep], conviction_arr[keep],
        n_skipped_lookups=n_skipped,
    )

    # ---- canonical deterministic order, with the exact legacy tie-break ----
    with kernel_timer("rules-sort"):
        row_strings = np.empty(len(table_sets), dtype=object)
        for r in np.unique(np.concatenate([ant_rows, cons_rows])):
            row_strings[r] = str(sorted(vocabulary.items_of(table_sets[r])))
        table._sort_strings_cache = (row_strings[ant_rows], row_strings[cons_rows])
        table = table.sort_canonical()
    return table


def _enumerate_packed(
    by_len: dict[int, tuple[list[tuple[int, ...]], list[int]]],
    table_sets: list[tuple[int, ...]],
    bits: int,
    max_len: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Enumerate splits via exact packed-integer subset keys.

    Each sorted id tuple packs into one uint64 (``id + 1`` at ``bits`` bits
    per slot, zeros padding), so a subset-support lookup is a binary
    search over the sorted key table instead of a dict probe per split.
    """
    padded = np.zeros((len(table_sets), max_len), dtype=np.uint64)
    for r, tup in enumerate(table_sets):
        padded[r, : len(tup)] = [i + 1 for i in tup]
    keys = _pack_columns(padded, bits)
    order = np.argsort(keys)
    sorted_keys = keys[order]

    def lookup(qkeys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pos = np.searchsorted(sorted_keys, qkeys)
        pos = np.minimum(pos, len(sorted_keys) - 1)
        return order[pos], sorted_keys[pos] == qkeys

    cxy_parts: list[np.ndarray] = []
    ant_parts: list[np.ndarray] = []
    cons_parts: list[np.ndarray] = []
    n_skipped = 0
    for length in sorted(by_len):
        tups, cnts = by_len[length]
        base = np.asarray(tups, dtype=np.uint64) + np.uint64(1)  # (M, length)
        cnt = np.asarray(cnts, dtype=np.int64)
        for pattern in range(1, (1 << length) - 1):
            cols_a = [k for k in range(length) if (pattern >> k) & 1]
            cols_c = [k for k in range(length) if not (pattern >> k) & 1]
            rows_a, valid_a = lookup(_pack_columns(base[:, cols_a], bits))
            rows_c, valid_c = lookup(_pack_columns(base[:, cols_c], bits))
            valid = valid_a & valid_c
            n_invalid = int(np.count_nonzero(~valid))
            if n_invalid:
                n_skipped += n_invalid
                sel = np.flatnonzero(valid)
                rows_a, rows_c, count = rows_a[sel], rows_c[sel], cnt[sel]
            else:
                count = cnt
            cxy_parts.append(count)
            ant_parts.append(rows_a)
            cons_parts.append(rows_c)

    if not cxy_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), n_skipped
    return (
        np.concatenate(cxy_parts),
        np.concatenate(ant_parts),
        np.concatenate(cons_parts),
        n_skipped,
    )


def _pack_columns(cols: np.ndarray, bits: int) -> np.ndarray:
    """Pack an ``(M, W)`` uint64 matrix into one key per row."""
    acc = np.zeros(len(cols), dtype=np.uint64)
    for k in range(cols.shape[1]):
        acc |= cols[:, k] << np.uint64(bits * k)
    return acc


def _enumerate_dict(
    by_len: dict[int, tuple[list[tuple[int, ...]], list[int]]],
    counts: dict[frozenset[int], int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Dict-probe fallback when ids are too wide for packed keys.

    Produces the same candidate arrays as :func:`_enumerate_packed`; only
    the lookup mechanism differs.
    """
    row_of = {itemset: row for row, itemset in enumerate(counts)}
    cxy_l: list[int] = []
    ant_l: list[int] = []
    cons_l: list[int] = []
    n_skipped = 0
    for length in sorted(by_len):
        tups, cnts = by_len[length]
        for tup, count_xy in zip(tups, cnts):
            full = frozenset(tup)
            for pattern in range(1, (1 << length) - 1):
                antecedent = frozenset(
                    tup[k] for k in range(length) if (pattern >> k) & 1
                )
                row_a = row_of.get(antecedent)
                row_c = row_of.get(full - antecedent)
                if row_a is None or row_c is None:
                    n_skipped += 1
                    continue
                cxy_l.append(count_xy)
                ant_l.append(row_a)
                cons_l.append(row_c)
    return (
        np.asarray(cxy_l, dtype=np.int64),
        np.asarray(ant_l, dtype=np.int64),
        np.asarray(cons_l, dtype=np.int64),
        n_skipped,
    )


def generate_rules_legacy(
    itemsets: FrequentItemsets,
    min_lift: float = 1.5,
    min_confidence: float = 0.0,
    keyword_ids: Iterable[int] | None = None,
    expand_only: Iterable[frozenset[int]] | None = None,
) -> list[AssociationRule]:
    """The original per-split object path, kept as the correctness oracle.

    The CI equality sweep asserts :func:`generate_rule_table` reproduces
    this output bit-for-bit (same rules, same metric doubles, same order)
    on all three traces.  Do not "optimise" this function — its value is
    being the unchanged reference.
    """
    _validate_params(min_lift, min_confidence)
    keywords = frozenset(keyword_ids) if keyword_ids is not None else None

    n = itemsets.n_transactions
    if n == 0:
        return []
    counts = itemsets.counts
    vocabulary = itemsets.vocabulary
    rules: list[AssociationRule] = []

    if expand_only is not None:
        surface: Iterable[tuple[frozenset[int], int]] = (
            (itemset, counts[itemset]) for itemset in expand_only
        )
    else:
        surface = counts.items()

    # enumerate every split first, then score the whole batch with numpy:
    # the metric arithmetic is identical IEEE-double arithmetic to
    # compute_metrics, but runs once over arrays instead of per split, and
    # AssociationRule objects are materialised only for survivors
    antecedents: list[frozenset[int]] = []
    consequents: list[frozenset[int]] = []
    count_xy_l: list[int] = []
    count_x_l: list[int] = []
    count_y_l: list[int] = []
    n_skipped = 0

    for itemset, count_xy in surface:
        if len(itemset) < 2:
            continue
        if keywords is not None and not (itemset & keywords):
            continue
        members = sorted(itemset)
        # every split of the itemset into non-empty (antecedent, consequent)
        for size in range(1, len(members)):
            for antecedent in combinations(members, size):
                antecedent_ids = frozenset(antecedent)
                consequent_ids = itemset - antecedent_ids
                count_x = counts.get(antecedent_ids)
                count_y = counts.get(consequent_ids)
                if count_x is None or count_y is None:
                    # cannot happen for a downward-closed itemset table, but
                    # partitioned (SON) candidate sets may be incomplete
                    n_skipped += 1
                    continue
                antecedents.append(antecedent_ids)
                consequents.append(consequent_ids)
                count_xy_l.append(count_xy)
                count_x_l.append(count_x)
                count_y_l.append(count_y)

    if n_skipped:
        record_kernel(SKIPPED_KERNEL, 0.0, n_skipped)
    if not count_xy_l:
        return []

    with kernel_timer("rules-batch"):
        supp_xy = np.asarray(count_xy_l, dtype=np.float64) / n
        supp_x = np.asarray(count_x_l, dtype=np.float64) / n
        supp_y = np.asarray(count_y_l, dtype=np.float64) / n
        denom = supp_x * supp_y
        with np.errstate(divide="ignore", invalid="ignore"):
            conf = np.where(supp_x > 0.0, supp_xy / supp_x, 0.0)
            lift_arr = np.where(denom > 0.0, supp_xy / denom, 0.0)
            conviction_arr = np.where(
                conf >= 1.0, np.inf, (1.0 - supp_y) / (1.0 - conf)
            )
        leverage_arr = supp_xy - denom
        keep = np.flatnonzero((lift_arr >= min_lift) & (conf >= min_confidence))

        for i in keep:
            metrics = RuleMetrics(
                support=float(supp_xy[i]),
                confidence=float(conf[i]),
                lift=float(lift_arr[i]),
                leverage=float(leverage_arr[i]),
                conviction=float(conviction_arr[i]),
            )
            rules.append(
                _make_rule(antecedents[i], consequents[i], metrics, vocabulary)
            )

    rules.sort(
        key=lambda r: (
            -r.lift,
            -r.confidence,
            -r.support,
            str(sorted(r.antecedent)),
            str(sorted(r.consequent)),
        )
    )
    return rules
