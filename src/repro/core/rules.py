"""Association-rule generation from frequent itemsets (Sec. III-B/D).

For every frequent itemset ``Z`` with ``|Z| ≥ 2``, each non-empty proper
subset ``X ⊂ Z`` yields a candidate rule ``X ⇒ Z∖X``.  The paper filters
candidates by a minimum lift of 1.5 ("the rules we generate are 50% more
likely to appear together than expected assuming the rule antecedent and
consequent are independent"); a minimum confidence can be layered on top.

All supports needed to score a rule are available from the frequent-itemset
table itself (every subset of a frequent itemset is frequent), so rule
generation never rescans the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable

import numpy as np

from .bitmap import kernel_timer
from .items import Item, ItemVocabulary, render_itemset
from .itemsets import FrequentItemsets
from .metrics import RuleMetrics, compute_metrics

__all__ = ["AssociationRule", "generate_rules"]


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """An implication ``antecedent ⇒ consequent`` with its quality metrics.

    The id-space fields (``antecedent_ids`` / ``consequent_ids``) are what
    the pruning machinery compares; the decoded frozensets of
    :class:`Item` are for presentation.
    """

    antecedent: frozenset[Item]
    consequent: frozenset[Item]
    antecedent_ids: frozenset[int]
    consequent_ids: frozenset[int]
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def __post_init__(self) -> None:
        if not self.antecedent_ids or not self.consequent_ids:
            raise ValueError("rule sides must be non-empty")
        if self.antecedent_ids & self.consequent_ids:
            raise ValueError("antecedent and consequent must be disjoint")

    def __str__(self) -> str:
        return (
            f"{render_itemset(self.antecedent)} => {render_itemset(self.consequent)}"
            f"  [supp={self.support:.3f}, conf={self.confidence:.3f}, lift={self.lift:.2f}]"
        )

    @property
    def items(self) -> frozenset[Item]:
        """Every item appearing in the rule."""
        return self.antecedent | self.consequent

    @property
    def item_ids(self) -> frozenset[int]:
        return self.antecedent_ids | self.consequent_ids

    @property
    def length(self) -> int:
        """Total number of items across both sides."""
        return len(self.antecedent_ids) + len(self.consequent_ids)

    def contains(self, item: Item | int) -> bool:
        """True if *item* (Item or id) appears on either side."""
        if isinstance(item, int):
            return item in self.antecedent_ids or item in self.consequent_ids
        return item in self.antecedent or item in self.consequent

    def metrics(self) -> RuleMetrics:
        return RuleMetrics(
            support=self.support,
            confidence=self.confidence,
            lift=self.lift,
            leverage=self.leverage,
            conviction=self.conviction,
        )

    def as_row(self) -> dict[str, object]:
        """Flat dict form, used by report tables and CSV export."""
        return {
            "antecedent": ", ".join(i.render() for i in sorted(self.antecedent)),
            "consequent": ", ".join(i.render() for i in sorted(self.consequent)),
            "support": round(self.support, 6),
            "confidence": round(self.confidence, 6),
            "lift": round(self.lift, 6),
            "leverage": round(self.leverage, 6),
            "conviction": self.conviction,
        }


def _make_rule(
    antecedent_ids: frozenset[int],
    consequent_ids: frozenset[int],
    metrics: RuleMetrics,
    vocabulary: ItemVocabulary,
) -> AssociationRule:
    return AssociationRule(
        antecedent=vocabulary.items_of(antecedent_ids),
        consequent=vocabulary.items_of(consequent_ids),
        antecedent_ids=antecedent_ids,
        consequent_ids=consequent_ids,
        support=metrics.support,
        confidence=metrics.confidence,
        lift=metrics.lift,
        leverage=metrics.leverage,
        conviction=metrics.conviction,
    )


def generate_rules(
    itemsets: FrequentItemsets,
    min_lift: float = 1.5,
    min_confidence: float = 0.0,
    keyword_ids: Iterable[int] | None = None,
    expand_only: Iterable[frozenset[int]] | None = None,
) -> list[AssociationRule]:
    """Enumerate and score rules from *itemsets*.

    Parameters
    ----------
    itemsets:
        Output of a mining pass; supplies all subset supports.
    min_lift:
        Keep rules with ``lift ≥ min_lift`` (paper default 1.5).
    min_confidence:
        Optional extra confidence floor (paper relies on lift alone).
    keyword_ids:
        If given, only rules containing at least one of these item ids are
        emitted — the keyword-relevance restriction of Sec. III-D, applied
        during generation to avoid materialising irrelevant rules.
    expand_only:
        If given, only these itemsets are split into rules (subset
        supports still come from the full table) — the hook the parallel
        rule generator uses to shard work across processes.

    Rules are returned sorted by (lift, confidence, support) descending,
    ties broken by rendered text so output order is deterministic.
    """
    if min_lift < 0:
        raise ValueError("min_lift must be >= 0")
    if not 0.0 <= min_confidence <= 1.0:
        raise ValueError("min_confidence must be in [0, 1]")
    keywords = frozenset(keyword_ids) if keyword_ids is not None else None

    n = itemsets.n_transactions
    if n == 0:
        return []
    counts = itemsets.counts
    vocabulary = itemsets.vocabulary
    rules: list[AssociationRule] = []

    if expand_only is not None:
        surface: Iterable[tuple[frozenset[int], int]] = (
            (itemset, counts[itemset]) for itemset in expand_only
        )
    else:
        surface = counts.items()

    # enumerate every split first, then score the whole batch with numpy:
    # the metric arithmetic is identical IEEE-double arithmetic to
    # compute_metrics, but runs once over arrays instead of per split, and
    # AssociationRule objects are materialised only for survivors
    antecedents: list[frozenset[int]] = []
    consequents: list[frozenset[int]] = []
    count_xy_l: list[int] = []
    count_x_l: list[int] = []
    count_y_l: list[int] = []

    for itemset, count_xy in surface:
        if len(itemset) < 2:
            continue
        if keywords is not None and not (itemset & keywords):
            continue
        members = sorted(itemset)
        # every split of the itemset into non-empty (antecedent, consequent)
        for size in range(1, len(members)):
            for antecedent in combinations(members, size):
                antecedent_ids = frozenset(antecedent)
                consequent_ids = itemset - antecedent_ids
                count_x = counts.get(antecedent_ids)
                count_y = counts.get(consequent_ids)
                if count_x is None or count_y is None:
                    # cannot happen for a downward-closed itemset table, but
                    # partitioned (SON) candidate sets may be incomplete
                    continue
                antecedents.append(antecedent_ids)
                consequents.append(consequent_ids)
                count_xy_l.append(count_xy)
                count_x_l.append(count_x)
                count_y_l.append(count_y)

    if not count_xy_l:
        return []

    with kernel_timer("rules-batch"):
        supp_xy = np.asarray(count_xy_l, dtype=np.float64) / n
        supp_x = np.asarray(count_x_l, dtype=np.float64) / n
        supp_y = np.asarray(count_y_l, dtype=np.float64) / n
        denom = supp_x * supp_y
        with np.errstate(divide="ignore", invalid="ignore"):
            conf = np.where(supp_x > 0.0, supp_xy / supp_x, 0.0)
            lift_arr = np.where(denom > 0.0, supp_xy / denom, 0.0)
            conviction_arr = np.where(
                conf >= 1.0, np.inf, (1.0 - supp_y) / (1.0 - conf)
            )
        leverage_arr = supp_xy - denom
        keep = np.flatnonzero((lift_arr >= min_lift) & (conf >= min_confidence))

        for i in keep:
            metrics = RuleMetrics(
                support=float(supp_xy[i]),
                confidence=float(conf[i]),
                lift=float(lift_arr[i]),
                leverage=float(leverage_arr[i]),
                conviction=float(conviction_arr[i]),
            )
            rules.append(
                _make_rule(antecedents[i], consequents[i], metrics, vocabulary)
            )

    rules.sort(
        key=lambda r: (
            -r.lift,
            -r.confidence,
            -r.support,
            str(sorted(r.antecedent)),
            str(sorted(r.consequent)),
        )
    )
    return rules
