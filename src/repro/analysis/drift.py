"""Rule drift: comparing rule sets mined at different times.

The paper's introduction motivates the whole workflow with change over
time: "due to advances in novel ML models and new GPU architectures, we
need to continuously update our understanding of the job characteristics"
— and its Sec. VI points to streaming mining for exactly this.  Given two
rule sets over the same item vocabulary (e.g. last month's window vs this
month's), :func:`diff_rules` reports what appeared, what disappeared and
whose strength moved, keyed by the rule's (antecedent, consequent)
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from ..core.items import Item
from ..core.rules import AssociationRule
from ..core.ruletable import RuleTable

__all__ = ["RuleChange", "RuleDrift", "diff_rules"]

#: rules are keyed by their *item* structure (not raw ids) so two rule
#: sets whose vocabularies assign different ids — e.g. two canonical
#: RuleBooks, whose id-spaces are each densified independently — still
#: diff by rule identity
_Key = tuple[frozenset[Item], frozenset[Item]]

#: either rule-set form diff_rules accepts
RuleSet = Union[Sequence[AssociationRule], RuleTable]

#: map value: a materialised rule, or a (table, row) handle resolved
#: lazily so stable columnar diffs never build per-rule objects
_Entry = Union[AssociationRule, tuple[RuleTable, int]]


def _index_by_key(rules: RuleSet) -> dict[_Key, _Entry]:
    if isinstance(rules, RuleTable):
        vocab = rules.vocabulary
        return {
            (vocab.items_of(rules.ant_row(i)), vocab.items_of(rules.cons_row(i))):
                (rules, i)
            for i in range(len(rules))
        }
    return {(r.antecedent, r.consequent): r for r in rules}


def _materialise(entry: _Entry) -> AssociationRule:
    if isinstance(entry, tuple):
        table, row = entry
        return table[row]
    return entry


@dataclass(frozen=True, slots=True)
class RuleChange:
    """One rule present in both sets, with its metric movement."""

    before: AssociationRule
    after: AssociationRule

    @property
    def lift_delta(self) -> float:
        return self.after.lift - self.before.lift

    @property
    def confidence_delta(self) -> float:
        return self.after.confidence - self.before.confidence

    def __str__(self) -> str:
        return (
            f"{self.after!s}  [lift {self.before.lift:.2f} → {self.after.lift:.2f}]"
        )


@dataclass(slots=True)
class RuleDrift:
    """The full diff between two rule sets."""

    appeared: list[AssociationRule] = field(default_factory=list)
    disappeared: list[AssociationRule] = field(default_factory=list)
    changed: list[RuleChange] = field(default_factory=list)

    @property
    def is_stable(self) -> bool:
        return not self.appeared and not self.disappeared

    def strengthened(self, min_delta: float = 0.5) -> list[RuleChange]:
        """Persisting rules whose lift rose by at least *min_delta*."""
        return sorted(
            (c for c in self.changed if c.lift_delta >= min_delta),
            key=lambda c: -c.lift_delta,
        )

    def weakened(self, min_delta: float = 0.5) -> list[RuleChange]:
        """Persisting rules whose lift fell by at least *min_delta*."""
        return sorted(
            (c for c in self.changed if c.lift_delta <= -min_delta),
            key=lambda c: c.lift_delta,
        )

    def render(self, limit: int = 5) -> str:
        lines = [
            f"rule drift: +{len(self.appeared)} appeared, "
            f"-{len(self.disappeared)} disappeared, "
            f"{len(self.changed)} persisted",
        ]
        for title, rules in (
            ("appeared", self.appeared),
            ("disappeared", self.disappeared),
        ):
            for rule in sorted(rules, key=lambda r: -r.lift)[:limit]:
                lines.append(f"  {title}: {rule}")
        for change in self.strengthened()[:limit]:
            lines.append(f"  strengthened: {change}")
        for change in self.weakened()[:limit]:
            lines.append(f"  weakened: {change}")
        return "\n".join(lines)


def diff_rules(before: RuleSet, after: RuleSet) -> RuleDrift:
    """Diff two rule sets by (antecedent, consequent) item identity.

    Each side may be a sequence of :class:`AssociationRule` objects *or*
    a columnar :class:`~repro.core.ruletable.RuleTable` — the canonical
    form the streaming drift gate passes straight from the engine's
    incremental recount, without round-tripping through object rules.
    Rules are keyed by their item structure, so the two sets may use
    different id-spaces (two independently canonicalised RuleBooks diff
    correctly); rule sets sharing no items are reported as full
    turnover (everything appeared + everything disappeared).
    """
    before_by_key = _index_by_key(before)
    after_by_key = _index_by_key(after)
    drift = RuleDrift()
    for key, entry in after_by_key.items():
        if key in before_by_key:
            drift.changed.append(
                RuleChange(
                    before=_materialise(before_by_key[key]),
                    after=_materialise(entry),
                )
            )
        else:
            drift.appeared.append(_materialise(entry))
    for key, entry in before_by_key.items():
        if key not in after_by_key:
            drift.disappeared.append(_materialise(entry))
    return drift
