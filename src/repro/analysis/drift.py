"""Rule drift: comparing rule sets mined at different times.

The paper's introduction motivates the whole workflow with change over
time: "due to advances in novel ML models and new GPU architectures, we
need to continuously update our understanding of the job characteristics"
— and its Sec. VI points to streaming mining for exactly this.  Given two
rule sets over the same item vocabulary (e.g. last month's window vs this
month's), :func:`diff_rules` reports what appeared, what disappeared and
whose strength moved, keyed by the rule's (antecedent, consequent)
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.rules import AssociationRule

__all__ = ["RuleChange", "RuleDrift", "diff_rules"]

_Key = tuple[frozenset[int], frozenset[int]]


def _key(rule: AssociationRule) -> _Key:
    return (rule.antecedent_ids, rule.consequent_ids)


@dataclass(frozen=True, slots=True)
class RuleChange:
    """One rule present in both sets, with its metric movement."""

    before: AssociationRule
    after: AssociationRule

    @property
    def lift_delta(self) -> float:
        return self.after.lift - self.before.lift

    @property
    def confidence_delta(self) -> float:
        return self.after.confidence - self.before.confidence

    def __str__(self) -> str:
        return (
            f"{self.after!s}  [lift {self.before.lift:.2f} → {self.after.lift:.2f}]"
        )


@dataclass(slots=True)
class RuleDrift:
    """The full diff between two rule sets."""

    appeared: list[AssociationRule] = field(default_factory=list)
    disappeared: list[AssociationRule] = field(default_factory=list)
    changed: list[RuleChange] = field(default_factory=list)

    @property
    def is_stable(self) -> bool:
        return not self.appeared and not self.disappeared

    def strengthened(self, min_delta: float = 0.5) -> list[RuleChange]:
        """Persisting rules whose lift rose by at least *min_delta*."""
        return sorted(
            (c for c in self.changed if c.lift_delta >= min_delta),
            key=lambda c: -c.lift_delta,
        )

    def weakened(self, min_delta: float = 0.5) -> list[RuleChange]:
        """Persisting rules whose lift fell by at least *min_delta*."""
        return sorted(
            (c for c in self.changed if c.lift_delta <= -min_delta),
            key=lambda c: c.lift_delta,
        )

    def render(self, limit: int = 5) -> str:
        lines = [
            f"rule drift: +{len(self.appeared)} appeared, "
            f"-{len(self.disappeared)} disappeared, "
            f"{len(self.changed)} persisted",
        ]
        for title, rules in (
            ("appeared", self.appeared),
            ("disappeared", self.disappeared),
        ):
            for rule in sorted(rules, key=lambda r: -r.lift)[:limit]:
                lines.append(f"  {title}: {rule}")
        for change in self.strengthened()[:limit]:
            lines.append(f"  strengthened: {change}")
        for change in self.weakened()[:limit]:
            lines.append(f"  weakened: {change}")
        return "\n".join(lines)


def diff_rules(
    before: Sequence[AssociationRule], after: Sequence[AssociationRule]
) -> RuleDrift:
    """Diff two rule lists by (antecedent, consequent) identity.

    Both lists must come from the same vocabulary (same item ids); this
    holds whenever both windows were encoded by the same preprocessor,
    e.g. via :class:`~repro.streaming.SlidingWindowMiner` snapshots.
    """
    before_by_key = {_key(r): r for r in before}
    after_by_key = {_key(r): r for r in after}
    drift = RuleDrift()
    for key, rule in after_by_key.items():
        if key in before_by_key:
            drift.changed.append(RuleChange(before=before_by_key[key], after=rule))
        else:
            drift.appeared.append(rule)
    for key, rule in before_by_key.items():
        if key not in after_by_key:
            drift.disappeared.append(rule)
    return drift
