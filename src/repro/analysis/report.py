"""Rule-table reports in the paper's format.

The paper presents each case study as a table of C (cause) and A
(characteristic) rows with Antecedent / Consequent / Supp. / Conf. / Lift
columns (Tables II–VIII).  Pruning leaves far more rules than fit a table,
so :func:`select_diverse_rules` greedily picks high-lift rules whose item
sets are not near-duplicates of already-picked rows — the manual curation
step a system operator performs, made deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import AssociationRule, KeywordRuleSet

__all__ = ["RuleRow", "RuleTable", "select_diverse_rules", "format_rule_table"]


@dataclass(frozen=True, slots=True)
class RuleRow:
    """One labelled row of a paper-style rule table."""

    label: str  # "C1", "A2", ...
    rule: AssociationRule

    def render(self) -> tuple[str, str, str, str, str, str]:
        r = self.rule
        return (
            self.label,
            ", ".join(i.render() for i in sorted(r.antecedent)),
            ", ".join(i.render() for i in sorted(r.consequent)),
            f"{r.support:.2f}",
            f"{r.confidence:.2f}",
            f"{r.lift:.2f}",
        )


@dataclass(slots=True)
class RuleTable:
    """A full case-study table: C rows then A rows."""

    title: str
    rows: list[RuleRow]

    @property
    def cause_rows(self) -> list[RuleRow]:
        return [r for r in self.rows if r.label.startswith("C")]

    @property
    def characteristic_rows(self) -> list[RuleRow]:
        return [r for r in self.rows if r.label.startswith("A")]

    def __str__(self) -> str:
        return format_table_text(self)


def _jaccard(a: frozenset, b: frozenset) -> float:
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def select_diverse_rules(
    rules: list[AssociationRule],
    max_rules: int,
    max_similarity: float = 0.6,
) -> list[AssociationRule]:
    """Greedy top-lift selection skipping near-duplicate item sets.

    Rules are considered in decreasing lift order; a rule is kept when the
    Jaccard similarity of its item-id set to every kept rule is at most
    *max_similarity*.  This keeps each table row informative instead of
    listing every permutation of one strong itemset.
    """
    if max_rules < 0:
        raise ValueError("max_rules must be >= 0")
    ordered = sorted(rules, key=lambda r: (-r.lift, -r.confidence, -r.support))
    kept: list[AssociationRule] = []
    for rule in ordered:
        if len(kept) >= max_rules:
            break
        ids = rule.item_ids
        if all(_jaccard(ids, k.item_ids) <= max_similarity for k in kept):
            kept.append(rule)
    return kept


def format_rule_table(
    result: KeywordRuleSet,
    title: str,
    max_cause: int = 6,
    max_characteristic: int = 3,
    max_similarity: float = 0.6,
) -> RuleTable:
    """Build a paper-style table from a keyword rule set."""
    cause = select_diverse_rules(list(result.cause), max_cause, max_similarity)
    char = select_diverse_rules(
        list(result.characteristic), max_characteristic, max_similarity
    )
    rows = [RuleRow(f"C{i + 1}", r) for i, r in enumerate(cause)]
    rows += [RuleRow(f"A{i + 1}", r) for i, r in enumerate(char)]
    return RuleTable(title=title, rows=rows)


def format_table_text(table: RuleTable) -> str:
    """Render a RuleTable as aligned monospace text."""
    header = ("", "Antecedent", "Consequent", "Supp.", "Conf.", "Lift")
    rendered = [header] + [row.render() for row in table.rows]
    widths = [max(len(r[i]) for r in rendered) for i in range(len(header))]
    lines = [table.title, "-" * (sum(widths) + 3 * (len(widths) - 1))]
    for r in rendered:
        lines.append("   ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


def rules_to_csv_rows(rules: list[AssociationRule]) -> list[dict[str, object]]:
    """Flatten rules for CSV export (used by the benchmark harness)."""
    return [r.as_row() for r in rules]


def format_table_markdown(table: RuleTable) -> str:
    """Render a RuleTable as a GitHub-flavoured markdown table.

    Lets a case study drop straight into an operations wiki/README — the
    "directly readable by system operators" framing of the paper, in the
    medium operators actually read.
    """
    lines = [
        f"### {table.title}",
        "",
        "|  | Antecedent | Consequent | Supp. | Conf. | Lift |",
        "|---|---|---|---|---|---|",
    ]
    for row in table.rows:
        label, ant, cons, supp, conf, lift = row.render()
        lines.append(f"| {label} | {ant} | {cons} | {supp} | {conf} | {lift} |")
    return "\n".join(lines)


def case_study_markdown(tables: dict[str, "RuleTable"], heading: str) -> str:
    """Concatenate a case study's rule tables into one markdown document."""
    parts = [f"## {heading}", ""]
    for table in tables.values():
        parts.append(format_table_markdown(table))
        parts.append("")
    return "\n".join(parts)
