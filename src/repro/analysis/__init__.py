"""Analysis workflow and the paper's case studies (Sec. III–IV)."""

from .compare import ContrastTable, SignalContrast, contrast_keyword
from .drift import RuleChange, RuleDrift, diff_rules
from .insights import DETECTORS, Insight, extract_insights
from .casestudies import (
    CaseStudy,
    analyze_trace,
    failure_study,
    full_case_study,
    misc_study,
    underutilization_study,
)
from .report import (
    RuleRow,
    RuleTable,
    format_rule_table,
    select_diverse_rules,
)
from .workflow import AnalysisResult, InterpretableAnalysis

__all__ = [
    "InterpretableAnalysis",
    "AnalysisResult",
    "RuleRow",
    "RuleTable",
    "format_rule_table",
    "select_diverse_rules",
    "CaseStudy",
    "analyze_trace",
    "underutilization_study",
    "failure_study",
    "misc_study",
    "full_case_study",
    "Insight",
    "extract_insights",
    "DETECTORS",
    "ContrastTable",
    "SignalContrast",
    "contrast_keyword",
    "RuleDrift",
    "RuleChange",
    "diff_rules",
]
