"""The interpretable-analysis workflow (Sec. III, end to end).

:class:`InterpretableAnalysis` chains the pieces exactly as the paper
describes:

    job table ──preprocess──▶ transactions ──FP-Growth──▶ frequent
    itemsets ──rule generation (min-lift)──▶ rules ──keyword pruning──▶
    cause ("C") and characteristic ("A") rule sets per keyword

One mining pass is shared across all keywords of a study, mirroring the
paper's "generating all high-quality rules in a single execution"
(Sec. V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import (
    FrequentItemsets,
    KeywordRuleSet,
    MiningConfig,
    mine_frequent_itemsets,
    mine_keyword_rules,
)
from ..dataframe import ColumnTable
from ..preprocess import PreprocessResult, TracePreprocessor

__all__ = ["AnalysisResult", "InterpretableAnalysis"]


@dataclass(slots=True)
class AnalysisResult:
    """Everything one analysis run produces."""

    config: MiningConfig
    preprocess: PreprocessResult
    itemsets: FrequentItemsets
    keyword_results: dict[str, KeywordRuleSet] = field(default_factory=dict)

    def __getitem__(self, keyword_name: str) -> KeywordRuleSet:
        try:
            return self.keyword_results[keyword_name]
        except KeyError:
            raise KeyError(
                f"no keyword study named {keyword_name!r}; "
                f"have {sorted(self.keyword_results)}"
            ) from None

    def summary(self) -> str:
        lines = [
            f"transactions : {len(self.preprocess.database)}",
            f"items        : {self.preprocess.database.n_items}",
            f"freq itemsets: {len(self.itemsets)} (min_support={self.config.min_support})",
        ]
        for name, result in self.keyword_results.items():
            lines.append(
                f"keyword {name!r} ({result.keyword.render()}): "
                f"{len(result.cause)} cause + {len(result.characteristic)} "
                f"characteristic rules "
                f"(pruned {result.report.n_pruned}/{result.report.n_input})"
            )
        return "\n".join(lines)


class InterpretableAnalysis:
    """Configured workflow: run once per (trace table, keyword set)."""

    def __init__(
        self,
        preprocessor: TracePreprocessor,
        config: MiningConfig = MiningConfig(),
    ):
        self.preprocessor = preprocessor
        self.config = config

    def run(
        self,
        table: ColumnTable,
        keywords: dict[str, str],
    ) -> AnalysisResult:
        """Execute the full workflow on *table*.

        Parameters
        ----------
        keywords:
            study name → keyword item text (e.g. ``{"underutilization":
            "SM Util = 0%", "failure": "Failed"}``).  Each keyword gets
            its own pruned cause/characteristic rule sets; the expensive
            mining pass is shared.
        """
        preprocess = self.preprocessor.run(table)
        db = preprocess.database
        itemsets = mine_frequent_itemsets(db, self.config)
        result = AnalysisResult(
            config=self.config, preprocess=preprocess, itemsets=itemsets
        )
        for name, keyword in keywords.items():
            result.keyword_results[name] = mine_keyword_rules(
                db, keyword, self.config, itemsets=itemsets
            )
        return result
