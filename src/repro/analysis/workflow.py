"""The interpretable-analysis workflow (Sec. III, end to end).

:class:`InterpretableAnalysis` chains the pieces exactly as the paper
describes:

    job table ──preprocess──▶ transactions ──FP-Growth──▶ frequent
    itemsets ──rule generation (min-lift)──▶ rules ──keyword pruning──▶
    cause ("C") and characteristic ("A") rule sets per keyword

Execution is delegated to the :class:`~repro.engine.MiningEngine` staged
pipeline: one (cached) mining pass is shared across all keywords of a
study, mirroring the paper's "generating all high-quality rules in a
single execution" (Sec. V), and every stage reports wall time and
cardinalities into :attr:`AnalysisResult.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core import FrequentItemsets, KeywordRuleSet, MiningConfig
from ..core.ruletable import RuleTable
from ..dataframe import ColumnTable
from ..engine import EngineStats, MiningEngine, default_engine
from ..preprocess import PreprocessResult, TracePreprocessor

if TYPE_CHECKING:  # pragma: no cover - typing only (serve sits above analysis)
    from ..serve import RuleBook

__all__ = ["AnalysisResult", "InterpretableAnalysis"]


@dataclass(slots=True)
class AnalysisResult:
    """Everything one analysis run produces.

    ``rule_table`` is the columnar union of every keyword study's kept
    rules (deduplicated across studies, keyword iteration order); the
    persistence layer builds the :class:`~repro.serve.RuleBook` straight
    from its columns instead of re-pooling rule objects.
    """

    config: MiningConfig
    preprocess: PreprocessResult
    itemsets: FrequentItemsets
    keyword_results: dict[str, KeywordRuleSet] = field(default_factory=dict)
    stats: EngineStats | None = None
    rule_table: RuleTable | None = None

    def __getitem__(self, keyword_name: str) -> KeywordRuleSet:
        try:
            return self.keyword_results[keyword_name]
        except KeyError:
            raise KeyError(
                f"no keyword study named {keyword_name!r}; "
                f"have {sorted(self.keyword_results)}"
            ) from None

    def to_rulebook(self, trace: str | None = None) -> "RuleBook":
        """Export every kept rule as a persistable, servable RuleBook.

        The hand-off from offline mining to online serving: the returned
        book carries the rules of all keyword studies plus the run's
        provenance (config, database fingerprint, engine backend) and
        round-trips through :meth:`~repro.serve.RuleBook.save` /
        :meth:`~repro.serve.RuleBook.load`.
        """
        # imported lazily: repro.serve sits one layer above repro.analysis
        from ..serve import RuleBook

        return RuleBook.from_analysis(self, trace=trace)

    def summary(self) -> str:
        lines = [
            f"transactions : {len(self.preprocess.database)}",
            f"items        : {self.preprocess.database.n_items}",
            f"freq itemsets: {len(self.itemsets)} (min_support={self.config.min_support})",
        ]
        for name, result in self.keyword_results.items():
            lines.append(
                f"keyword {name!r} ({result.keyword.render()}): "
                f"{len(result.cause)} cause + {len(result.characteristic)} "
                f"characteristic rules "
                f"(pruned {result.report.n_pruned}/{result.report.n_input})"
            )
        return "\n".join(lines)


class InterpretableAnalysis:
    """Configured workflow: run once per (trace table, keyword set).

    An *engine* can be injected to pin the execution backend or isolate
    the cache; by default the process-wide shared engine is used, so
    successive studies on identical trace content reuse one mining pass.
    """

    def __init__(
        self,
        preprocessor: TracePreprocessor,
        config: MiningConfig = MiningConfig(),
        engine: MiningEngine | None = None,
    ):
        self.preprocessor = preprocessor
        self.config = config
        self.engine = engine if engine is not None else default_engine()

    def run(
        self,
        table: ColumnTable,
        keywords: dict[str, str],
    ) -> AnalysisResult:
        """Execute the full staged pipeline on *table*.

        Parameters
        ----------
        keywords:
            study name → keyword item text (e.g. ``{"underutilization":
            "SM Util = 0%", "failure": "Failed"}``).  Each keyword gets
            its own pruned cause/characteristic rule sets; the expensive
            mining pass is shared (and engine-cached across runs).
        """
        return self.engine.analyze(self.preprocessor, table, keywords, self.config)
