"""Operational insight extraction — the paper's "Takeaways", automated.

Each Sec. IV case study closes with a takeaway box translating rules into
operator guidance.  The translations follow recognisable patterns, which
this module encodes as detectors over a :class:`KeywordRuleSet`:

=========================  ====================================================
detector                   paper takeaway it automates
=========================  ====================================================
submission_predictability  "a prediction model can identify [target] at the
                           job submission stage" / "a simple rule-based
                           classifier will suffice" (strong cause rules from
                           submission-time features)
debug_tier                 "build a lower-tier system for allocation of
                           debugging and exploratory jobs" (idle GPUs with
                           low CPU + short runtime)
heavy_user_support         "system operators can focus on the high failure
                           rate of users and provide corresponding support"
late_failures              "more attention as more compute cycles get wasted"
                           (failures with top-quartile runtimes)
new_user_onboarding        new users over-represented in kills/failures
gang_screening             "set up a small number of nodes dedicated to
                           screening before … gang scheduling" (multi-GPU ⇒
                           failure)
weak_predictability        "more complex models such as neural networks will
                           be needed" (no strong cause rules)
=========================  ====================================================

Detectors are evidence-carrying: every emitted :class:`Insight` cites the
rules that triggered it, preserving the interpretability contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.mining import KeywordRuleSet
from ..core.rules import AssociationRule

__all__ = ["Insight", "extract_insights", "DETECTORS"]


@dataclass(frozen=True, slots=True)
class Insight:
    """One operational recommendation plus the rules supporting it."""

    code: str
    title: str
    recommendation: str
    evidence: tuple[AssociationRule, ...]

    def render(self) -> str:
        lines = [f"[{self.code}] {self.title}", f"  → {self.recommendation}"]
        for rule in self.evidence[:3]:
            lines.append(f"  evidence: {rule}")
        return "\n".join(lines)


def _items_of(side: Iterable) -> set[str]:
    return {i.render() for i in side}


def _rules_where(
    rules: Sequence[AssociationRule],
    antecedent_any: set[str] | None = None,
    antecedent_all: set[str] | None = None,
    consequent_any: set[str] | None = None,
    min_confidence: float = 0.0,
    min_lift: float = 0.0,
) -> list[AssociationRule]:
    out = []
    for rule in rules:
        ant = _items_of(rule.antecedent)
        cons = _items_of(rule.consequent)
        if antecedent_any is not None and not (ant & antecedent_any):
            continue
        if antecedent_all is not None and not (antecedent_all <= ant):
            continue
        if consequent_any is not None and not (cons & consequent_any):
            continue
        if rule.confidence < min_confidence or rule.lift < min_lift:
            continue
        out.append(rule)
    return out


#: item texts that are knowable before a job runs, across all three schemas
SUBMISSION_ITEM_FEATURES = {
    "GPU Request", "CPU Request", "Mem Request", "GPU Type", "Queue",
}
SUBMISSION_FLAG_ITEMS = {
    "Freq User", "Moderate User", "Rare User", "New User",
    "Freq Group", "Moderate Group", "Rare Group",
    "Tensorflow", "PyTorch", "Other Framework",
    "Multiple Tasks", "Multi-GPU",
}


def _is_submission_item(text: str) -> bool:
    if text in SUBMISSION_FLAG_ITEMS:
        return True
    feature = text.split(" = ", 1)[0]
    return feature in SUBMISSION_ITEM_FEATURES


def detect_submission_predictability(result: KeywordRuleSet) -> Insight | None:
    strong = [
        r
        for r in result.cause
        if r.confidence >= 0.75
        and all(_is_submission_item(i.render()) for i in r.antecedent)
    ]
    if not strong:
        return None
    target = result.keyword.render()
    return Insight(
        code="submission-predictability",
        title=f"'{target}' is predictable at the submission stage",
        recommendation=(
            "multiple high-confidence rules use only submission-time "
            "attributes; deploy a simple rule-based classifier at submit "
            "time to flag these jobs before they are scheduled"
        ),
        evidence=tuple(sorted(strong, key=lambda r: -r.confidence)[:5]),
    )


def detect_weak_predictability(result: KeywordRuleSet) -> Insight | None:
    if not result.cause:
        return None
    best = max(r.confidence for r in result.cause)
    if best >= 0.5:
        return None
    target = result.keyword.render()
    return Insight(
        code="weak-predictability",
        title=f"'{target}' has no strong predictor among mined rules",
        recommendation=(
            f"best cause-rule confidence is {best:.2f}; rule/tree models "
            "will under-perform — consider richer models (the paper: "
            "'more complex models such as neural networks will be needed')"
        ),
        evidence=tuple(sorted(result.cause, key=lambda r: -r.confidence)[:3]),
    )


def detect_debug_tier(result: KeywordRuleSet) -> Insight | None:
    if result.keyword.render() != "SM Util = 0%":
        return None
    hits = _rules_where(
        result.cause,
        antecedent_any={"CPU Util = Bin1", "Runtime = Bin1"},
        min_lift=1.5,
    )
    if not hits:
        return None
    return Insight(
        code="debug-tier",
        title="idle GPUs trace back to debug/exploratory runs",
        recommendation=(
            "low CPU utilisation and short runtimes co-occur with 0% SM "
            "utilisation; route debug jobs to a lower-tier pool of cheaper "
            "GPUs and enable sharing (MPS/MIG) on it"
        ),
        evidence=tuple(hits[:3]),
    )


def detect_heavy_user_support(result: KeywordRuleSet) -> Insight | None:
    hits = _rules_where(
        result.cause,
        antecedent_any={"Freq User", "Freq Group"},
        min_confidence=0.5,
    )
    if not hits:
        return None
    return Insight(
        code="heavy-user-support",
        title="specific heavy users/groups drive the keyword events",
        recommendation=(
            "failure mass concentrates in identifiable frequent users/job "
            "groups; targeted operator support for them removes a large "
            "share of the events"
        ),
        evidence=tuple(hits[:3]),
    )


def detect_late_failures(result: KeywordRuleSet) -> Insight | None:
    hits = _rules_where(
        result.characteristic,
        consequent_any={"Runtime = Bin4"},
        min_lift=1.5,
    )
    if not hits:
        return None
    return Insight(
        code="late-failures",
        title="a significant share of failures happen after long runtimes",
        recommendation=(
            "late failures waste the most compute; prioritise checkpointing "
            "and investigate node failures / time-limit kills for these jobs"
        ),
        evidence=tuple(hits[:3]),
    )


def detect_new_user_onboarding(result: KeywordRuleSet) -> Insight | None:
    hits = _rules_where(
        result.cause, antecedent_any={"New User"}, min_lift=1.5
    )
    if not hits:
        return None
    target = result.keyword.render()
    return Insight(
        code="new-user-onboarding",
        title=f"new users are over-represented in '{target}' events",
        recommendation=(
            "strengthen onboarding (templates, quotas, sandbox partitions) "
            "to cut new-user losses"
        ),
        evidence=tuple(hits[:3]),
    )


def detect_gang_screening(result: KeywordRuleSet) -> Insight | None:
    if result.keyword.render() != "Failed":
        return None
    hits = _rules_where(
        result.cause, antecedent_any={"Multi-GPU"}, min_lift=1.5
    )
    if not hits:
        return None
    return Insight(
        code="gang-screening",
        title="distributed (multi-GPU) jobs fail disproportionately",
        recommendation=(
            "screen gang jobs on a small dedicated node set before "
            "submitting the full GPU request to the scheduler"
        ),
        evidence=tuple(hits[:3]),
    )


DETECTORS: tuple[Callable[[KeywordRuleSet], Insight | None], ...] = (
    detect_submission_predictability,
    detect_weak_predictability,
    detect_debug_tier,
    detect_heavy_user_support,
    detect_late_failures,
    detect_new_user_onboarding,
    detect_gang_screening,
)


def extract_insights(result: KeywordRuleSet) -> list[Insight]:
    """Run every detector over one keyword rule set."""
    out = []
    for detector in DETECTORS:
        insight = detector(result)
        if insight is not None:
            out.append(insight)
    return out
