"""Cross-trace contrast analysis.

The paper's most interesting observations are *contrasts*: new users fail
in Philly but frequent users fail in PAI; multi-GPU correlates with
failure in Philly but has no support in PAI (99 % multi-GPU) or
SuperCloud (97 % single-GPU).  Given the same keyword mined on several
traces, :func:`contrast_keyword` lines the antecedent signals up
side-by-side and flags trace-specific ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.mining import KeywordRuleSet

__all__ = ["SignalContrast", "ContrastTable", "contrast_keyword"]


@dataclass(frozen=True, slots=True)
class SignalContrast:
    """One antecedent item's strength per trace (best lift, or None)."""

    item: str
    lift_by_trace: dict[str, float | None]

    @property
    def present_in(self) -> list[str]:
        return [t for t, v in self.lift_by_trace.items() if v is not None]

    @property
    def is_trace_specific(self) -> bool:
        present = self.present_in
        return 0 < len(present) < len(self.lift_by_trace)


@dataclass(slots=True)
class ContrastTable:
    """All antecedent signals for one keyword across traces."""

    keyword: str
    traces: list[str]
    signals: list[SignalContrast] = field(default_factory=list)

    def trace_specific(self) -> list[SignalContrast]:
        return [s for s in self.signals if s.is_trace_specific]

    def universal(self) -> list[SignalContrast]:
        """Signals present in every trace — the paper's 'generic' findings
        (e.g. low CPU utilisation and short runtime for idle GPUs)."""
        return [s for s in self.signals if len(s.present_in) == len(self.traces)]

    def render(self) -> str:
        width = max((len(s.item) for s in self.signals), default=4)
        lines = [
            f"Antecedent signals for keyword {self.keyword!r} across traces",
            "",
            "  ".join(["item".ljust(width)] + [t.rjust(12) for t in self.traces]),
        ]
        for signal in sorted(
            self.signals,
            key=lambda s: -max((v or 0.0) for v in s.lift_by_trace.values()),
        ):
            cells = [
                f"{signal.lift_by_trace[t]:.2f}".rjust(12)
                if signal.lift_by_trace[t] is not None
                else "—".rjust(12)
                for t in self.traces
            ]
            lines.append("  ".join([signal.item.ljust(width)] + cells))
        return "\n".join(lines)


def contrast_keyword(results: dict[str, KeywordRuleSet]) -> ContrastTable:
    """Build the contrast table from per-trace keyword rule sets.

    For each trace, an antecedent item's strength is the best lift among
    that trace's *cause* rules mentioning it; items never appearing in a
    trace's rules get None there.
    """
    if not results:
        raise ValueError("contrast_keyword needs at least one trace result")
    keywords = {r.keyword.render() for r in results.values()}
    if len(keywords) > 1:
        raise ValueError(f"mismatched keywords across traces: {sorted(keywords)}")

    traces = list(results)
    best: dict[str, dict[str, float]] = {}
    for trace, result in results.items():
        for rule in result.cause:
            for item in rule.antecedent:
                text = item.render()
                per_trace = best.setdefault(text, {})
                if rule.lift > per_trace.get(trace, 0.0):
                    per_trace[trace] = rule.lift

    table = ContrastTable(keyword=next(iter(keywords)), traces=traces)
    for item_text in sorted(best):
        table.signals.append(
            SignalContrast(
                item=item_text,
                lift_by_trace={t: best[item_text].get(t) for t in traces},
            )
        )
    return table
