"""Standalone HTML report for a case study.

Produces a single self-contained HTML file (no external assets, inline
CSS/SVG) with the trace overview, the Fig. 4/5-style distribution charts
and the C/A rule tables — the artefact an operator would circulate after
running the workflow.  Charts are plain SVG bars built here; no plotting
dependency.
"""

from __future__ import annotations

import html
from collections import Counter

from ..dataframe import ColumnTable
from ..viz import empirical_cdf
from .casestudies import CaseStudy
from .insights import Insight
from .report import RuleTable

__all__ = ["render_html_report", "svg_bar_chart"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { border-bottom: 3px solid #4361ee; padding-bottom: .3rem; }
h2 { color: #3a0ca3; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: 1rem 0; }
th, td { border: 1px solid #d0d0e0; padding: .4rem .6rem;
         text-align: left; font-size: .9rem; }
th { background: #eef0fb; }
tr:nth-child(even) { background: #f8f9ff; }
.metric { font-variant-numeric: tabular-nums; text-align: right; }
.insight { background: #f0f7f4; border-left: 4px solid #2d6a4f;
           padding: .6rem 1rem; margin: .8rem 0; }
.insight b { color: #2d6a4f; }
figure { margin: 1rem 0; }
figcaption { font-size: .85rem; color: #555; }
"""


def svg_bar_chart(
    data: dict[str, float],
    width: int = 560,
    bar_height: int = 22,
    fmt: str = "{:.1%}",
) -> str:
    """Horizontal SVG bar chart of label → value (self-contained markup)."""
    if not data:
        return "<svg/>"
    label_w = 150
    gap = 6
    peak = max(data.values()) or 1.0
    height = len(data) * (bar_height + gap)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for i, (label, value) in enumerate(data.items()):
        y = i * (bar_height + gap)
        bar_w = max(1, int((width - label_w - 90) * value / peak))
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_height * 0.72}" '
            f'text-anchor="end" font-size="12">{html.escape(str(label))}</text>'
        )
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{bar_w}" '
            f'height="{bar_height}" fill="#4361ee" rx="3"/>'
        )
        parts.append(
            f'<text x="{label_w + bar_w + 6}" y="{y + bar_height * 0.72}" '
            f'font-size="12">{html.escape(fmt.format(value))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _rule_table_html(table: RuleTable) -> str:
    rows = ["<table><tr><th></th><th>Antecedent</th><th>Consequent</th>"
            "<th>Supp.</th><th>Conf.</th><th>Lift</th></tr>"]
    for row in table.rows:
        label, ant, cons, supp, conf, lift = row.render()
        rows.append(
            "<tr>"
            f"<td><b>{html.escape(label)}</b></td>"
            f"<td>{html.escape(ant)}</td><td>{html.escape(cons)}</td>"
            f'<td class="metric">{supp}</td>'
            f'<td class="metric">{conf}</td>'
            f'<td class="metric">{lift}</td>'
            "</tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _distribution_figures(table: ColumnTable) -> str:
    parts = []
    if "sm_util" in table:
        cdf = empirical_cdf(table["sm_util"].values)
        points = {f"≤{p}%": cdf.at(float(p)) for p in (0, 25, 50, 75, 100)}
        parts.append(
            "<figure>"
            + svg_bar_chart(points)
            + "<figcaption>GPU SM-utilisation CDF (cf. paper Fig. 4); "
            f"{cdf.share_at_most(0):.1%} of jobs never touch the GPU."
            "</figcaption></figure>"
        )
    if "status" in table:
        counts = Counter(table["status"].to_list())
        shares = {k: v / len(table) for k, v in sorted(counts.items())}
        parts.append(
            "<figure>"
            + svg_bar_chart(shares)
            + "<figcaption>Job exit status (cf. paper Fig. 5).</figcaption>"
            "</figure>"
        )
    return "".join(parts)


def render_html_report(
    study: CaseStudy,
    table: ColumnTable | None = None,
    insights: dict[str, list[Insight]] | None = None,
) -> str:
    """Render a full case study as one self-contained HTML document.

    *table* (the raw job table) adds the distribution figures; *insights*
    maps study names to extracted :class:`Insight` lists.
    """
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>Trace analysis — {html.escape(study.trace)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Interpretable trace analysis — {html.escape(study.trace)}</h1>",
        "<p>Association-rule case study (min-support 5%, max itemset "
        "length 5, min-lift 1.5, C<sub>lift</sub>=C<sub>supp</sub>=1.5).</p>",
        f"<pre>{html.escape(study.analysis.summary())}</pre>",
    ]
    if table is not None:
        parts.append("<h2>Distributions</h2>")
        parts.append(_distribution_figures(table))
    for name, rule_table in study.tables.items():
        parts.append(f"<h2>{html.escape(rule_table.title)}</h2>")
        parts.append(_rule_table_html(rule_table))
        if insights and name in insights:
            for insight in insights[name]:
                parts.append(
                    '<div class="insight">'
                    f"<b>{html.escape(insight.title)}</b><br>"
                    f"{html.escape(insight.recommendation)}</div>"
                )
    parts.append("</body></html>")
    return "".join(parts)
