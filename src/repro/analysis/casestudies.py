"""The paper's case studies (Sec. IV) as reusable functions.

Each study = generate/accept a trace table → run the workflow with the
study keyword(s) → curate a paper-style rule table.  The misc study
(Table VIII) additionally re-runs PAI preprocessing on the model-labelled
subset, exactly as the paper does ("we have filtered out the jobs whose
model type label is NaN and applied the analysis on the processed
dataset").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import MiningConfig
from ..dataframe import ColumnTable
from ..engine import MiningEngine
from ..traces import TraceDefinition, get_trace
from ..traces.synthetic.pai import pai_preprocessor
from .report import RuleTable, format_rule_table
from .workflow import AnalysisResult, InterpretableAnalysis

__all__ = [
    "CaseStudy",
    "analyze_trace",
    "underutilization_study",
    "failure_study",
    "misc_study",
    "full_case_study",
]


@dataclass(slots=True)
class CaseStudy:
    """All rule tables produced for one trace."""

    trace: str
    analysis: AnalysisResult
    tables: dict[str, RuleTable] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"=== Case study: {self.trace} ===", self.analysis.summary(), ""]
        for table in self.tables.values():
            parts.append(str(table))
            parts.append("")
        return "\n".join(parts)


def _resolve(trace: str | TraceDefinition) -> TraceDefinition:
    return trace if isinstance(trace, TraceDefinition) else get_trace(trace)


def analyze_trace(
    trace: str | TraceDefinition,
    table: ColumnTable | None = None,
    config: MiningConfig = MiningConfig(),
    n_jobs: int | None = None,
    engine: MiningEngine | None = None,
) -> AnalysisResult:
    """Run the full workflow on a trace for its standard keywords."""
    definition = _resolve(trace)
    if table is None:
        table = definition.generate_scaled(n_jobs=n_jobs)
    workflow = InterpretableAnalysis(definition.make_preprocessor(), config, engine)
    keywords = {
        name: kw
        for name, kw in definition.keywords.items()
        if name in ("underutilization", "failure", "killed")
    }
    return workflow.run(table, keywords)


def underutilization_study(
    trace: str | TraceDefinition,
    table: ColumnTable | None = None,
    config: MiningConfig = MiningConfig(),
    analysis: AnalysisResult | None = None,
    engine: MiningEngine | None = None,
) -> tuple[AnalysisResult, RuleTable]:
    """Sec. IV-B: rules around jobs with 0 % GPU SM utilisation."""
    definition = _resolve(trace)
    if analysis is None:
        analysis = analyze_trace(definition, table=table, config=config, engine=engine)
    rule_table = format_rule_table(
        analysis["underutilization"],
        title=f"GPU underutilization rules — {definition.display_name} trace",
        max_cause=5,
        max_characteristic=3,
    )
    return analysis, rule_table


def failure_study(
    trace: str | TraceDefinition,
    table: ColumnTable | None = None,
    config: MiningConfig = MiningConfig(),
    analysis: AnalysisResult | None = None,
    engine: MiningEngine | None = None,
) -> tuple[AnalysisResult, RuleTable]:
    """Sec. IV-C: rules around failed jobs."""
    definition = _resolve(trace)
    if analysis is None:
        analysis = analyze_trace(definition, table=table, config=config, engine=engine)
    rule_table = format_rule_table(
        analysis["failure"],
        title=f"Job failure rules — {definition.display_name} trace",
        max_cause=6,
        max_characteristic=2,
    )
    return analysis, rule_table


def misc_study(
    trace: str | TraceDefinition,
    table: ColumnTable | None = None,
    config: MiningConfig = MiningConfig(),
    engine: MiningEngine | None = None,
) -> dict[str, RuleTable]:
    """Sec. IV-D: trace-specific rules (Table VIII)."""
    definition = _resolve(trace)
    if table is None:
        table = definition.generate_scaled()
    tables: dict[str, RuleTable] = {}

    if definition.name == "pai":
        # queue-behaviour rules, standard preprocessing
        workflow = InterpretableAnalysis(definition.make_preprocessor(), config, engine)
        result = workflow.run(
            table,
            {"t4": "GPU Type = T4", "non_t4": "GPU Type = None T4"},
        )
        tables["t4_queue"] = format_rule_table(
            result["t4"], "T4 queueing rules — PAI (cf. PAI1)", 3, 2
        )
        tables["non_t4_queue"] = format_rule_table(
            result["non_t4"], "Non-T4 queueing rules — PAI (cf. PAI2)", 3, 2
        )
        # model-specific rules on the labelled subset
        labelled = table.dropna(["model_name"])
        model_workflow = InterpretableAnalysis(
            pai_preprocessor(include_model=True), config, engine
        )
        model_result = model_workflow.run(
            labelled, {"recsys": "Model = RecSys", "nlp": "Model = NLP"}
        )
        tables["recsys"] = format_rule_table(
            model_result["recsys"], "RecSys workload rules — PAI (cf. PAI3)", 2, 2
        )
        tables["nlp"] = format_rule_table(
            model_result["nlp"], "NLP workload rules — PAI (cf. PAI4)", 2, 2
        )
    elif definition.name == "supercloud":
        workflow = InterpretableAnalysis(definition.make_preprocessor(), config, engine)
        result = workflow.run(table, {"killed": "Job Killed"})
        tables["killed"] = format_rule_table(
            result["killed"], "Job-kill rules — SuperCloud (cf. CIR1)", 3, 2
        )
    elif definition.name == "philly":
        workflow = InterpretableAnalysis(definition.make_preprocessor(), config, engine)
        result = workflow.run(table, {"multi_gpu": "Multi-GPU"})
        tables["multi_gpu"] = format_rule_table(
            result["multi_gpu"], "Multi-GPU rules — Philly (cf. PHI1)", 3, 3
        )
    else:  # pragma: no cover - registry is closed
        raise ValueError(f"no misc study defined for trace {definition.name!r}")
    return tables


def full_case_study(
    trace: str | TraceDefinition,
    table: ColumnTable | None = None,
    config: MiningConfig = MiningConfig(),
    n_jobs: int | None = None,
    engine: MiningEngine | None = None,
) -> CaseStudy:
    """Everything Sec. IV reports for one trace, in one call."""
    definition = _resolve(trace)
    if table is None:
        table = definition.generate_scaled(n_jobs=n_jobs)
    analysis = analyze_trace(definition, table=table, config=config, engine=engine)
    study = CaseStudy(trace=definition.display_name, analysis=analysis)
    _, study.tables["underutilization"] = underutilization_study(
        definition, config=config, analysis=analysis
    )
    _, study.tables["failure"] = failure_study(
        definition, config=config, analysis=analysis
    )
    study.tables.update(misc_study(definition, table=table, config=config, engine=engine))
    return study
