"""Relational operations over :class:`ColumnTable`.

The trace-merging step of the paper (Sec. III-E) joins scheduler-level job
records with node-level measurement aggregates; the categorical
aggregation step ranks users/groups by submission counts.  These need
exactly three relational primitives: group-by aggregation, equi-join, and
value counts — implemented here with numpy sort/unique machinery rather
than per-row Python loops.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any, Callable

import numpy as np

from .column import BooleanColumn, CategoricalColumn, Column, NumericColumn
from .table import ColumnTable

__all__ = ["group_aggregate", "inner_join", "left_join", "value_counts", "concat_rows", "describe"]

#: aggregation name → reducer over a 1-D float array (NaN-aware)
_AGGREGATORS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.nanmean(a)) if a.size else float("nan"),
    "sum": lambda a: float(np.nansum(a)),
    "min": lambda a: float(np.nanmin(a)) if a.size else float("nan"),
    "max": lambda a: float(np.nanmax(a)) if a.size else float("nan"),
    "std": lambda a: float(np.nanstd(a)) if a.size else float("nan"),
    "var": lambda a: float(np.nanvar(a)) if a.size else float("nan"),
    "count": lambda a: float(np.count_nonzero(~np.isnan(a))),
    "first": lambda a: float(a[0]) if a.size else float("nan"),
    "last": lambda a: float(a[-1]) if a.size else float("nan"),
}


def _key_codes(table: ColumnTable, key: str) -> tuple[np.ndarray, list[Any]]:
    """Return (int codes, labels) for a key column; NA gets its own code -1."""
    col = table[key]
    if isinstance(col, CategoricalColumn):
        return col.codes.astype(np.int64), list(col.categories)
    if isinstance(col, NumericColumn):
        vals = col.values
        finite = ~np.isnan(vals)
        uniq = np.unique(vals[finite])
        codes = np.searchsorted(uniq, vals)
        codes = np.where(finite, codes, -1).astype(np.int64)
        return codes, [float(u) for u in uniq]
    if isinstance(col, BooleanColumn):
        return col.values.astype(np.int64), [False, True]
    raise TypeError(f"cannot group by column of kind {col.kind!r}")


def group_aggregate(
    table: ColumnTable,
    key: str,
    aggregations: Mapping[str, tuple[str, str]],
) -> ColumnTable:
    """Group *table* by *key* and aggregate numeric columns.

    Parameters
    ----------
    aggregations:
        output column name → ``(input column name, agg)`` where ``agg`` is
        one of mean/sum/min/max/std/var/count/first/last.

    Returns a table with the key column plus one column per aggregation,
    rows ordered by first appearance of each key.  NA keys are dropped,
    matching SQL ``GROUP BY`` semantics on non-null keys.
    """
    codes, labels = _key_codes(table, key)
    valid = codes >= 0
    order = np.argsort(codes[valid], kind="stable")
    sorted_codes = codes[valid][order]
    row_idx = np.flatnonzero(valid)[order]
    uniq_codes, starts = np.unique(sorted_codes, return_index=True)
    bounds = np.append(starts, sorted_codes.size)

    # keep first-appearance order of groups
    first_pos = np.empty(uniq_codes.size, dtype=np.int64)
    for g in range(uniq_codes.size):
        first_pos[g] = row_idx[starts[g]]
    group_order = np.argsort(first_pos, kind="stable")

    out_key = [labels[uniq_codes[g]] for g in group_order]
    data: dict[str, list] = {key: out_key}
    for out_name, (in_name, agg) in aggregations.items():
        col = table[in_name]
        if isinstance(col, BooleanColumn):
            vals = col.values.astype(np.float64)
        elif isinstance(col, NumericColumn):
            vals = col.values
        else:
            raise TypeError(f"cannot aggregate non-numeric column {in_name!r}")
        try:
            reducer = _AGGREGATORS[agg]
        except KeyError:
            raise ValueError(f"unknown aggregation {agg!r}; have {sorted(_AGGREGATORS)}") from None
        results = []
        for g in group_order:
            sl = row_idx[starts[g] : bounds[g + 1]]
            results.append(reducer(vals[sl]))
        data[out_name] = results
    return ColumnTable.from_dict(data)


def value_counts(table: ColumnTable, key: str) -> list[tuple[Any, int]]:
    """Return (label, count) pairs for *key*, most frequent first.

    Ties are broken by label order of first appearance, keeping the output
    deterministic — important because the "frequent user" cut-off in the
    preprocessing step is defined over this ranking.
    """
    codes, labels = _key_codes(table, key)
    valid = codes[codes >= 0]
    if valid.size == 0:
        return []
    counts = np.bincount(valid, minlength=len(labels))
    order = np.argsort(-counts, kind="stable")
    return [(labels[i], int(counts[i])) for i in order if counts[i] > 0]


def _join_indices(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Matching (left_row, right_row) index pairs for an equi-join."""
    right_map: dict[int, list[int]] = {}
    for j, c in enumerate(right_codes):
        if c >= 0:
            right_map.setdefault(int(c), []).append(j)
    li: list[int] = []
    ri: list[int] = []
    for i, c in enumerate(left_codes):
        if c < 0:
            continue
        for j in right_map.get(int(c), ()):
            li.append(i)
            ri.append(j)
    return np.asarray(li, dtype=np.intp), np.asarray(ri, dtype=np.intp)


def _shared_codes(
    left: ColumnTable, right: ColumnTable, key: str
) -> tuple[np.ndarray, np.ndarray]:
    """Encode the key column of both tables against a shared vocabulary."""
    lcol, rcol = left[key], right[key]
    if isinstance(lcol, CategoricalColumn) and isinstance(rcol, CategoricalColumn):
        vocab = {c: i for i, c in enumerate(lcol.categories)}
        for c in rcol.categories:
            if c not in vocab:
                vocab[c] = len(vocab)
        lmap = np.asarray([vocab[c] for c in lcol.categories], dtype=np.int64)
        rmap = np.asarray([vocab[c] for c in rcol.categories], dtype=np.int64)
        lcodes = np.where(lcol.codes >= 0, lmap[np.clip(lcol.codes, 0, None)], -1)
        rcodes = np.where(rcol.codes >= 0, rmap[np.clip(rcol.codes, 0, None)], -1)
        return lcodes, rcodes
    if isinstance(lcol, NumericColumn) and isinstance(rcol, NumericColumn):
        both = np.concatenate([lcol.values, rcol.values])
        uniq = np.unique(both[~np.isnan(both)])
        lcodes = np.where(~np.isnan(lcol.values), np.searchsorted(uniq, lcol.values), -1)
        rcodes = np.where(~np.isnan(rcol.values), np.searchsorted(uniq, rcol.values), -1)
        return lcodes.astype(np.int64), rcodes.astype(np.int64)
    raise TypeError(f"join key {key!r} has incompatible column kinds")


def inner_join(left: ColumnTable, right: ColumnTable, key: str) -> ColumnTable:
    """Equi-join on *key*; right-side duplicate column names get ``_right``."""
    lcodes, rcodes = _shared_codes(left, right, key)
    li, ri = _join_indices(lcodes, rcodes)
    out = ColumnTable()
    for name, col in left.items():
        out.add_column(name, col.take(li))
    for name, col in right.items():
        if name == key:
            continue
        out_name = name if name not in left else f"{name}_right"
        out.add_column(out_name, col.take(ri))
    return out


def left_join(left: ColumnTable, right: ColumnTable, key: str) -> ColumnTable:
    """Left equi-join on *key*; unmatched left rows get NA on the right.

    Right-side *key* duplicates must be unique (a 1:N right side would
    silently duplicate scheduler rows, which the trace merge never wants).
    """
    lcodes, rcodes = _shared_codes(left, right, key)
    pos: dict[int, int] = {}
    for j, c in enumerate(rcodes):
        if c < 0:
            continue
        if int(c) in pos:
            raise ValueError(f"left_join requires unique keys on the right table ({key!r})")
        pos[int(c)] = j
    match = np.asarray([pos.get(int(c), -1) if c >= 0 else -1 for c in lcodes], dtype=np.intp)
    matched = match >= 0

    out = left.copy()
    for name, col in right.items():
        if name == key:
            continue
        out_name = name if name not in left else f"{name}_right"
        gathered = col.take(np.where(matched, match, 0))
        if isinstance(gathered, NumericColumn):
            vals = gathered.values.copy()
            vals[~matched] = np.nan
            out.add_column(out_name, NumericColumn(vals))
        elif isinstance(gathered, CategoricalColumn):
            codes = gathered.codes.copy()
            codes[~matched] = -1
            out.add_column(out_name, CategoricalColumn(codes, gathered.categories))
        elif isinstance(gathered, BooleanColumn):
            # promote to numeric so unmatched rows can carry NaN
            vals = gathered.values.astype(np.float64)
            vals[~matched] = np.nan
            out.add_column(out_name, NumericColumn(vals))
        else:  # pragma: no cover
            raise TypeError(f"unsupported column kind {gathered.kind!r}")
    return out


def describe(table: ColumnTable) -> ColumnTable:
    """Per-column summary statistics (the `df.describe()` of this substrate).

    Numeric/boolean columns get count/mean/min/median/max; categorical
    columns get count, cardinality and the modal value.  Returned as a
    table with one row per input column.
    """
    rows = []
    for name, col in table.items():
        row: dict = {"column": name, "kind": col.kind, "n": float(len(col))}
        if isinstance(col, NumericColumn):
            vals = col.values
            finite = vals[~np.isnan(vals)]
            row["n_missing"] = float(np.isnan(vals).sum())
            if finite.size:
                row.update(
                    mean=float(finite.mean()),
                    min=float(finite.min()),
                    median=float(np.median(finite)),
                    max=float(finite.max()),
                )
        elif isinstance(col, BooleanColumn):
            row["n_missing"] = 0.0
            row["mean"] = float(col.values.mean()) if len(col) else 0.0
        elif isinstance(col, CategoricalColumn):
            counts = col.value_counts()
            row["n_missing"] = float((col.codes < 0).sum())
            row["cardinality"] = float(len(counts))
            if counts:
                row["mode"] = next(iter(counts))
        rows.append(row)
    return ColumnTable.from_records(rows)


def concat_rows(tables: Sequence[ColumnTable]) -> ColumnTable:
    """Stack tables vertically; all must share the same column names."""
    if not tables:
        return ColumnTable()
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise ValueError("concat_rows requires identical column sets and order")
    data: dict[str, list] = {}
    for name in names:
        merged: list = []
        for t in tables:
            merged.extend(t[name].to_list())
        data[name] = merged
    return ColumnTable.from_dict(data)
