"""Typed columns backing :class:`repro.dataframe.ColumnTable`.

The paper's preprocessing pipeline (Sec. III-E) manipulates job tables with
a mix of continuous measurements (GPU utilisation, runtime, power) and
categorical attributes (user, GPU type, framework).  pandas is not a
dependency of this project, so we provide a small, numpy-backed column
model with exactly the operations the pipeline needs:

* :class:`NumericColumn` — float64 storage, NaN as the missing marker.
* :class:`CategoricalColumn` — dictionary-encoded strings (int32 codes into
  a category list, ``-1`` as the missing marker).
* :class:`BooleanColumn` — bool storage without missing values.

All columns are immutable in length; element-wise operations return numpy
arrays or new columns rather than mutating in place, which keeps views
cheap (see the optimisation guide: prefer views over copies).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

__all__ = [
    "Column",
    "NumericColumn",
    "CategoricalColumn",
    "BooleanColumn",
    "column_from_values",
]

#: Sentinel strings treated as missing when ingesting raw (e.g. CSV) data.
#: Deliberately does NOT include "none": "GPU Type = None" is a legitimate
#: categorical value in the traces (an unspecified GPU-type request).
_NA_STRINGS = frozenset({"", "na", "nan", "null"})


def _is_missing(value: Any) -> bool:
    """Return True if *value* represents a missing entry."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value.strip().lower() in _NA_STRINGS:
        return True
    return False


class Column:
    """Abstract base class for a single, fixed-length, typed column."""

    __slots__ = ()

    #: short type tag used by the CSV round-trip and repr ("num"/"cat"/"bool")
    kind: str = "abstract"

    def __len__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_list(self) -> list:
        """Materialise the column as a list of Python objects (None for NA)."""
        raise NotImplementedError

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with rows gathered at *indices*."""
        raise NotImplementedError

    def mask(self, keep: np.ndarray) -> "Column":
        """Return a new column with only rows where boolean *keep* is True."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (len(self),):
            raise ValueError(
                f"mask length {keep.shape} does not match column length {len(self)}"
            )
        return self.take(np.flatnonzero(keep))

    def isna(self) -> np.ndarray:
        """Boolean array marking missing entries."""
        raise NotImplementedError

    # -- comparisons used by ColumnTable.filter -------------------------------
    def equals_scalar(self, value: Any) -> np.ndarray:
        """Element-wise equality against a scalar (NA never equal)."""
        raise NotImplementedError


class NumericColumn(Column):
    """Float64 column; ``NaN`` marks missing values."""

    __slots__ = ("values",)
    kind = "num"

    def __init__(self, values: Iterable[float] | np.ndarray):
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("NumericColumn requires a 1-D sequence")
        self.values = arr

    def __len__(self) -> int:
        return self.values.shape[0]

    def __repr__(self) -> str:
        return f"NumericColumn(n={len(self)})"

    def to_numpy(self) -> np.ndarray:
        return self.values

    def to_list(self) -> list:
        return [None if math.isnan(v) else float(v) for v in self.values]

    def take(self, indices: np.ndarray) -> "NumericColumn":
        return NumericColumn(self.values[np.asarray(indices, dtype=np.intp)])

    def isna(self) -> np.ndarray:
        return np.isnan(self.values)

    def equals_scalar(self, value: Any) -> np.ndarray:
        if _is_missing(value):
            return np.zeros(len(self), dtype=bool)
        out = self.values == float(value)
        out[np.isnan(self.values)] = False
        return out

    # numeric reductions ignore NaN, matching the trace-analysis semantics of
    # "statistics over the jobs that reported this metric".
    def min(self) -> float:
        return float(np.nanmin(self.values))

    def max(self) -> float:
        return float(np.nanmax(self.values))

    def mean(self) -> float:
        return float(np.nanmean(self.values))

    def sum(self) -> float:
        return float(np.nansum(self.values))

    def quantile(self, q: float | Sequence[float]) -> np.ndarray:
        return np.nanquantile(self.values, q)


class CategoricalColumn(Column):
    """Dictionary-encoded string column.

    Storage is a pair ``(codes, categories)`` where ``codes`` is an int32
    array indexing into the ``categories`` list and ``-1`` encodes a missing
    value.  This mirrors the representation used downstream by the
    transactional encoder, so conversion into items is a cheap integer
    remap rather than a string scan.
    """

    __slots__ = ("codes", "categories", "_index")
    kind = "cat"

    def __init__(self, codes: np.ndarray, categories: Sequence[str]):
        codes = np.asarray(codes, dtype=np.int32)
        if codes.ndim != 1:
            raise ValueError("codes must be 1-D")
        categories = list(categories)
        if len(set(categories)) != len(categories):
            raise ValueError("categories must be unique")
        if codes.size and (codes.max(initial=-1) >= len(categories) or codes.min(initial=0) < -1):
            raise ValueError("codes out of range for categories")
        self.codes = codes
        self.categories = categories
        self._index = {c: i for i, c in enumerate(categories)}

    @classmethod
    def from_values(cls, values: Iterable[Any]) -> "CategoricalColumn":
        """Build from raw values, interning each distinct non-missing string."""
        categories: list[str] = []
        index: dict[str, int] = {}
        codes: list[int] = []
        for v in values:
            if _is_missing(v):
                codes.append(-1)
                continue
            s = str(v)
            code = index.get(s)
            if code is None:
                code = len(categories)
                index[s] = code
                categories.append(s)
            codes.append(code)
        return cls(np.asarray(codes, dtype=np.int32), categories)

    def __len__(self) -> int:
        return self.codes.shape[0]

    def __repr__(self) -> str:
        return f"CategoricalColumn(n={len(self)}, n_categories={len(self.categories)})"

    def to_list(self) -> list:
        cats = self.categories
        return [None if c < 0 else cats[c] for c in self.codes]

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn(
            self.codes[np.asarray(indices, dtype=np.intp)], self.categories
        )

    def isna(self) -> np.ndarray:
        return self.codes < 0

    def equals_scalar(self, value: Any) -> np.ndarray:
        if _is_missing(value):
            return np.zeros(len(self), dtype=bool)
        code = self._index.get(str(value))
        if code is None:
            return np.zeros(len(self), dtype=bool)
        return self.codes == code

    def value_counts(self, dropna: bool = True) -> dict[str, int]:
        """Counts per category, most frequent first."""
        counts = np.bincount(self.codes[self.codes >= 0], minlength=len(self.categories))
        out = {
            self.categories[i]: int(counts[i])
            for i in np.argsort(-counts, kind="stable")
            if counts[i] > 0
        }
        if not dropna:
            n_na = int((self.codes < 0).sum())
            if n_na:
                out[None] = n_na  # type: ignore[index]
        return out

    def map_categories(self, mapping: dict[str, str]) -> "CategoricalColumn":
        """Relabel categories via *mapping* (identity for unmapped labels).

        Used by the preprocessing step that merges rare model names into
        families ("resnet"/"vgg"/"inception" → "CV", Sec. III-E).
        """
        new_categories: list[str] = []
        new_index: dict[str, int] = {}
        remap = np.empty(len(self.categories), dtype=np.int32)
        for i, cat in enumerate(self.categories):
            label = mapping.get(cat, cat)
            code = new_index.get(label)
            if code is None:
                code = len(new_categories)
                new_index[label] = code
                new_categories.append(label)
            remap[i] = code
        new_codes = np.where(self.codes >= 0, remap[np.clip(self.codes, 0, None)], -1)
        return CategoricalColumn(new_codes.astype(np.int32), new_categories)


class BooleanColumn(Column):
    """Plain boolean column (no missing values)."""

    __slots__ = ("values",)
    kind = "bool"

    def __init__(self, values: Iterable[bool] | np.ndarray):
        arr = np.asarray(values, dtype=bool)
        if arr.ndim != 1:
            raise ValueError("BooleanColumn requires a 1-D sequence")
        self.values = arr

    def __len__(self) -> int:
        return self.values.shape[0]

    def __repr__(self) -> str:
        return f"BooleanColumn(n={len(self)})"

    def to_numpy(self) -> np.ndarray:
        return self.values

    def to_list(self) -> list:
        return [bool(v) for v in self.values]

    def take(self, indices: np.ndarray) -> "BooleanColumn":
        return BooleanColumn(self.values[np.asarray(indices, dtype=np.intp)])

    def isna(self) -> np.ndarray:
        return np.zeros(len(self), dtype=bool)

    def equals_scalar(self, value: Any) -> np.ndarray:
        return self.values == bool(value)


def column_from_values(values: Sequence[Any]) -> Column:
    """Infer a column type from raw Python values.

    Inference order mirrors CSV ingestion: all-boolean → BooleanColumn;
    all numeric (or missing) → NumericColumn; otherwise CategoricalColumn.
    """
    non_missing = [v for v in values if not _is_missing(v)]

    def _as_bool(v: Any) -> bool | None:
        if isinstance(v, (bool, np.bool_)):
            return bool(v)
        if isinstance(v, str) and v.strip().lower() in ("true", "false"):
            return v.strip().lower() == "true"
        return None

    bools = [_as_bool(v) for v in non_missing]
    if non_missing and all(b is not None for b in bools):
        if any(_is_missing(v) for v in values):
            # promote to numeric so NaN can represent the hole
            return NumericColumn(
                [math.nan if _is_missing(v) else float(_as_bool(v)) for v in values]  # type: ignore[arg-type]
            )
        return BooleanColumn([_as_bool(v) for v in values])  # type: ignore[list-item]

    def _as_float(v: Any) -> float | None:
        if isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(v, bool):
            return float(v)
        if isinstance(v, str):
            try:
                return float(v)
            except ValueError:
                return None
        return None

    floats = [_as_float(v) for v in non_missing]
    if non_missing and all(f is not None for f in floats):
        return NumericColumn(
            [math.nan if _is_missing(v) else _as_float(v) for v in values]  # type: ignore[misc]
        )
    return CategoricalColumn.from_values(values)
