"""Minimal columnar table substrate (pandas substitute).

The analysis pipeline needs a small relational core: typed columns, a
column table, CSV io, group-by aggregation, and equi-joins.  Everything is
numpy-backed and vectorised; see the submodules for details.
"""

from .column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from .io import read_csv, read_csv_text, write_csv, write_csv_text
from .ops import concat_rows, describe, group_aggregate, inner_join, left_join, value_counts
from .table import ColumnTable

__all__ = [
    "Column",
    "NumericColumn",
    "CategoricalColumn",
    "BooleanColumn",
    "column_from_values",
    "ColumnTable",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "write_csv_text",
    "group_aggregate",
    "inner_join",
    "left_join",
    "value_counts",
    "concat_rows",
    "describe",
]
