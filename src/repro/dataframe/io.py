"""CSV ingestion and export for :class:`ColumnTable`.

Production traces (PAI, Philly, the open-sourced SuperCloud dataset) ship
as CSV files; the preprocessing pipeline needs a typed round-trip so that
synthetic traces written to disk can be re-loaded as if they were the
original logs.  Type inference matches :func:`column_from_values`.
"""

from __future__ import annotations

import csv
import io
import os
from typing import TextIO

from .column import CategoricalColumn, NumericColumn
from .table import ColumnTable

__all__ = ["read_csv", "write_csv", "read_csv_text", "write_csv_text"]


def read_csv_text(text: str) -> ColumnTable:
    """Parse CSV from a string; first row is the header."""
    return _read(io.StringIO(text))


def read_csv(path: str | os.PathLike) -> ColumnTable:
    """Load a CSV file into a typed :class:`ColumnTable`."""
    with open(path, "r", newline="", encoding="utf-8") as fh:
        return _read(fh)


def _read(fh: TextIO) -> ColumnTable:
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        return ColumnTable()
    if len(set(header)) != len(header):
        raise ValueError(f"duplicate column names in CSV header: {header}")
    columns: list[list] = [[] for _ in header]
    for row_num, row in enumerate(reader, start=2):
        if len(row) != len(header):
            raise ValueError(
                f"row {row_num} has {len(row)} fields, expected {len(header)}"
            )
        for values, cell in zip(columns, row):
            values.append(None if cell == "" else cell)
    return ColumnTable.from_dict(dict(zip(header, columns)))


def write_csv_text(table: ColumnTable) -> str:
    """Serialise a table to CSV text (NA as empty cell)."""
    buf = io.StringIO()
    _write(table, buf)
    return buf.getvalue()


def write_csv(table: ColumnTable, path: str | os.PathLike) -> None:
    """Write a table to a CSV file."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        _write(table, fh)


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _write(table: ColumnTable, fh: TextIO) -> None:
    writer = csv.writer(fh)
    names = table.column_names
    writer.writerow(names)
    if not names:
        return
    lists = {}
    for name in names:
        col = table[name]
        if isinstance(col, (NumericColumn, CategoricalColumn)):
            lists[name] = col.to_list()
        else:
            lists[name] = col.to_list()
    for i in range(len(table)):
        writer.writerow([_format_cell(lists[name][i]) for name in names])
