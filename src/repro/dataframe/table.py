"""A minimal, numpy-backed columnar table.

:class:`ColumnTable` is the in-memory representation of a merged job trace
(Sec. III-E of the paper: "our first effort was to merge all the features
into a single file").  It deliberately implements only the operations the
analysis pipeline needs — column selection, row filtering, sorting,
appending derived columns — with no index machinery.

Rows are never represented as objects; all operations are vectorised over
columns, following the numpy optimisation guidance (vectorise loops, use
views not copies).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Callable

import numpy as np

from .column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)

__all__ = ["ColumnTable"]


class ColumnTable:
    """An ordered mapping of column name → :class:`Column`, equal lengths."""

    def __init__(self, columns: Mapping[str, Column] | None = None):
        self._columns: dict[str, Column] = {}
        self._length: int | None = None
        if columns:
            for name, col in columns.items():
                self.add_column(name, col)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Any]]) -> "ColumnTable":
        """Build a table from a mapping of name → raw value sequence.

        Column types are inferred per :func:`column_from_values`; numpy
        arrays of numeric or boolean dtype are wrapped without copying.
        """
        table = cls()
        for name, values in data.items():
            if isinstance(values, Column):
                table.add_column(name, values)
            elif isinstance(values, np.ndarray) and values.dtype.kind in "fiu":
                table.add_column(name, NumericColumn(values.astype(np.float64, copy=False)))
            elif isinstance(values, np.ndarray) and values.dtype.kind == "b":
                table.add_column(name, BooleanColumn(values))
            else:
                table.add_column(name, column_from_values(list(values)))
        return table

    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]]) -> "ColumnTable":
        """Build from a list of dict rows; missing keys become NA."""
        names: list[str] = []
        seen = set()
        for rec in records:
            for key in rec:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        data = {name: [rec.get(name) for rec in records] for name in names}
        return cls.from_dict(data)

    # -- basic protocol --------------------------------------------------------
    def __len__(self) -> int:
        return self._length or 0

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}; have {list(self._columns)}") from None

    def __repr__(self) -> str:
        return f"ColumnTable(n_rows={len(self)}, columns={list(self._columns)})"

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def n_rows(self) -> int:
        return len(self)

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    def items(self) -> Iterable[tuple[str, Column]]:
        return self._columns.items()

    # -- mutation (column-level only) -------------------------------------------
    def add_column(self, name: str, column: Column | Sequence[Any]) -> None:
        """Attach *column* under *name*, replacing any existing column."""
        if not isinstance(column, Column):
            column = column_from_values(list(column))
        if self._length is None:
            self._length = len(column)
        elif len(column) != self._length:
            raise ValueError(
                f"column {name!r} has length {len(column)}, table has {self._length}"
            )
        self._columns[name] = column

    def drop_columns(self, names: Iterable[str]) -> "ColumnTable":
        """Return a new table without the given columns (missing names ok)."""
        drop = set(names)
        return ColumnTable({n: c for n, c in self._columns.items() if n not in drop})

    def select(self, names: Sequence[str]) -> "ColumnTable":
        """Return a new table with only the given columns, in order."""
        return ColumnTable({n: self[n] for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "ColumnTable":
        """Return a new table with columns renamed via *mapping*."""
        return ColumnTable({mapping.get(n, n): c for n, c in self._columns.items()})

    # -- row-level access ---------------------------------------------------------
    def row(self, i: int) -> dict[str, Any]:
        """Materialise row *i* as a dict (None for NA). O(n_columns)."""
        if not 0 <= i < len(self):
            raise IndexError(f"row {i} out of range for table of {len(self)} rows")
        out: dict[str, Any] = {}
        for name, col in self._columns.items():
            if isinstance(col, CategoricalColumn):
                code = int(col.codes[i])
                out[name] = None if code < 0 else col.categories[code]
            elif isinstance(col, NumericColumn):
                v = float(col.values[i])
                out[name] = None if np.isnan(v) else v
            elif isinstance(col, BooleanColumn):
                out[name] = bool(col.values[i])
            else:  # pragma: no cover - no other kinds exist
                out[name] = col.to_list()[i]
        return out

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        """Iterate rows as dicts. Prefer column-level ops; this is for tests/IO."""
        lists = {name: col.to_list() for name, col in self._columns.items()}
        for i in range(len(self)):
            yield {name: values[i] for name, values in lists.items()}

    # -- selection --------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "ColumnTable":
        """Gather rows at *indices* into a new table."""
        idx = np.asarray(indices, dtype=np.intp)
        return ColumnTable({n: c.take(idx) for n, c in self._columns.items()})

    def filter_mask(self, keep: np.ndarray) -> "ColumnTable":
        """Keep rows where boolean *keep* is True."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (len(self),):
            raise ValueError("mask length mismatch")
        return self.take(np.flatnonzero(keep))

    def filter_equals(self, name: str, value: Any) -> "ColumnTable":
        """Keep rows where column *name* equals *value*."""
        return self.filter_mask(self[name].equals_scalar(value))

    def filter_rows(self, predicate: Callable[[dict[str, Any]], bool]) -> "ColumnTable":
        """Keep rows satisfying a per-row predicate (slow path; tests only)."""
        keep = np.fromiter(
            (bool(predicate(r)) for r in self.iter_rows()), dtype=bool, count=len(self)
        )
        return self.filter_mask(keep)

    def dropna(self, names: Sequence[str] | None = None) -> "ColumnTable":
        """Drop rows with NA in any of *names* (default: all columns).

        The paper applies this when studying workload-type rules: "we have
        filtered out the jobs whose model type label is NaN" (Sec. IV-D).
        """
        names = list(names) if names is not None else self.column_names
        keep = np.ones(len(self), dtype=bool)
        for name in names:
            keep &= ~self[name].isna()
        return self.filter_mask(keep)

    def sort_by(self, name: str, descending: bool = False) -> "ColumnTable":
        """Stable sort by one column; NA values sort last."""
        col = self[name]
        if isinstance(col, NumericColumn):
            key = col.values.copy()
            na = np.isnan(key)
            if descending:
                key = -key
            key[na] = np.inf
        elif isinstance(col, CategoricalColumn):
            # order by label text for determinism
            order = np.argsort(np.asarray(col.categories, dtype=object), kind="stable")
            rank = np.empty(len(col.categories), dtype=np.int64)
            rank[order] = np.arange(len(col.categories))
            key = np.where(col.codes >= 0, rank[np.clip(col.codes, 0, None)], len(col.categories))
            if descending:
                key = np.where(col.codes >= 0, -key, key.max(initial=0) + 1)
        else:
            key = np.asarray(col.to_list())
            if descending:
                key = ~key
        return self.take(np.argsort(key, kind="stable"))

    def head(self, n: int) -> "ColumnTable":
        """First *n* rows."""
        return self.take(np.arange(min(n, len(self))))

    # -- export ------------------------------------------------------------------
    def to_dict(self) -> dict[str, list]:
        """Materialise as a dict of lists (None for NA)."""
        return {name: col.to_list() for name, col in self._columns.items()}

    def copy(self) -> "ColumnTable":
        """Shallow copy (columns are shared; they are treated as immutable)."""
        return ColumnTable(dict(self._columns))

    def fingerprint(self) -> str:
        """Content digest over column names, types and values.

        Two tables with identical schema and cell contents share a
        fingerprint regardless of how they were built — the key the
        preprocess result cache uses, mirroring
        :meth:`TransactionDatabase.fingerprint` on the mining side.
        Computed fresh on every call (tables are mutable via
        ``add_column``), so callers should hash once per lookup.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(str(len(self)).encode("utf-8"))
        for name, col in self._columns.items():
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            h.update(col.kind.encode("utf-8"))
            if isinstance(col, CategoricalColumn):
                h.update(np.ascontiguousarray(col.codes).tobytes())
                for cat in col.categories:
                    h.update(cat.encode("utf-8"))
                    h.update(b"\x1f")
            else:
                h.update(np.ascontiguousarray(col.values).tobytes())
        return h.hexdigest()
