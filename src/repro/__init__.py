"""repro — Interpretable analysis of GPU-cluster monitoring data.

Reproduction of *Interpretable Analysis of Production GPU Clusters
Monitoring Data via Association Rule Mining* (Li, Samsi, Gadepally,
Tiwari — IPPS 2024).

Quickstart::

    from repro import full_case_study
    study = full_case_study("supercloud", n_jobs=5000)
    print(study.render())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — association-rule mining (FP-Growth / Apriori /
  Eclat, metrics, keyword pruning Conditions 1–4);
* :mod:`repro.preprocess` — Sec. III-E trace preprocessing;
* :mod:`repro.traces` — synthetic PAI / SuperCloud / Philly traces;
* :mod:`repro.cluster` — the GPU-cluster simulator substrate;
* :mod:`repro.analysis` — the end-to-end workflow and case studies;
* :mod:`repro.engine` — the unified mining engine (pluggable execution
  backends, content-addressed itemset cache, per-stage instrumentation);
* :mod:`repro.serve` — online rule serving (persistent RuleBook,
  inverted-index matcher, asyncio service with batching/backpressure);
* :mod:`repro.parallel` — SON phase primitives used by the engine's
  partitioned backends;
* :mod:`repro.dataframe` — the minimal columnar-table substrate;
* :mod:`repro.viz` — figure data (CDFs, box stats, rule scatters).
"""

from .analysis import (
    AnalysisResult,
    CaseStudy,
    InterpretableAnalysis,
    RuleTable,
    analyze_trace,
    failure_study,
    format_rule_table,
    full_case_study,
    misc_study,
    underutilization_study,
)
from .core import (
    AssociationRule,
    FrequentItemsets,
    Item,
    KeywordRuleSet,
    MiningConfig,
    PruningConfig,
    TransactionDatabase,
    apriori,
    eclat,
    fpgrowth,
    generate_rules,
    mine_frequent_itemsets,
    mine_keyword_rules,
    mine_rules,
    prune_rules,
)
from .engine import (
    BACKENDS,
    EngineStats,
    ItemsetCache,
    MiningEngine,
    default_engine,
    get_backend,
)
from .parallel import son_mine  # deprecated shim, kept for one release
from .predict import RuleClassifier, evaluate_predictions, split_database
from .serve import RuleBook, RuleIndex, RuleService, RuleServiceClient
from .streaming import SlidingWindowMiner
from .preprocess import TracePreprocessor, TransactionEncoder
from .traces import TRACES, get_trace, list_traces

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Item",
    "TransactionDatabase",
    "fpgrowth",
    "apriori",
    "eclat",
    "FrequentItemsets",
    "AssociationRule",
    "generate_rules",
    "prune_rules",
    "MiningConfig",
    "PruningConfig",
    "KeywordRuleSet",
    "mine_frequent_itemsets",
    "mine_rules",
    "mine_keyword_rules",
    # preprocessing
    "TracePreprocessor",
    "TransactionEncoder",
    # traces
    "TRACES",
    "get_trace",
    "list_traces",
    # analysis
    "InterpretableAnalysis",
    "AnalysisResult",
    "RuleTable",
    "format_rule_table",
    "analyze_trace",
    "underutilization_study",
    "failure_study",
    "misc_study",
    "full_case_study",
    "CaseStudy",
    # engine
    "MiningEngine",
    "default_engine",
    "EngineStats",
    "ItemsetCache",
    "BACKENDS",
    "get_backend",
    # parallel (deprecated shim)
    "son_mine",
    # prediction
    "RuleClassifier",
    "evaluate_predictions",
    "split_database",
    # streaming
    "SlidingWindowMiner",
    # serving
    "RuleBook",
    "RuleIndex",
    "RuleService",
    "RuleServiceClient",
]
