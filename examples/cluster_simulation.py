"""Driving the cluster-simulator substrate directly.

The trace generators sit on top of a discrete-event GPU-cluster simulator
(`repro.cluster`).  This example uses it standalone to show where queue
delays come from: a heterogeneous cluster whose V100 pool is saturated
while the T4 pool idles — the mechanism behind the paper's PAI1/PAI2
queueing rules.

    python examples/cluster_simulation.py
"""

import numpy as np

from repro.cluster import (
    BehaviorProfile,
    ClusterSimulator,
    ClusterSpec,
    JobRequest,
    NodeSpec,
    TelemetryConfig,
)
from repro.viz import box_chart, box_stats


def build_workload(n: int = 1200, seed: int = 5) -> list[JobRequest]:
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        wants_v100 = rng.random() < 0.7  # demand skewed to the small pool
        jobs.append(
            JobRequest(
                job_id=i,
                user=f"u{int(rng.integers(0, 40)):02d}",
                submit_time=float(rng.uniform(0, 40_000)),
                runtime=float(rng.lognormal(6.5, 0.8)),
                n_gpus=int(rng.integers(1, 4)),
                n_cpus=int(rng.integers(2, 16)),
                mem_gb=float(rng.uniform(8, 64)),
                gpu_type="V100" if wants_v100 else "T4",
                profile=BehaviorProfile(sm_util_mean=float(rng.uniform(10, 90))),
            )
        )
    return jobs


def main() -> None:
    cluster = ClusterSpec.of(
        (NodeSpec("v100", "V100", n_gpus=4, n_cpus=64, mem_gb=256), 4),  # 16 GPUs
        (NodeSpec("t4", "T4", n_gpus=4, n_cpus=64, mem_gb=256), 8),  # 32 GPUs
    )
    print(f"cluster: {cluster.gpus_by_type()} GPUs")

    simulator = ClusterSimulator(
        cluster, telemetry=TelemetryConfig(sample_interval_s=30), seed=1
    )
    result = simulator.run(build_workload())
    table = result.to_table()

    stats = result.scheduler_stats
    print(
        f"scheduled {stats.n_scheduled} jobs; mean queue delay "
        f"{stats.mean_queue_delay:.0f}s; peak queue length {stats.max_queue_length}"
    )

    # queue delay by requested GPU type — contention made visible
    delays = table["queue_delay"].values
    types = table["gpu_type_request"].to_list()
    per_type = {
        t: box_stats(delays[np.asarray([x == t for x in types])])
        for t in ("V100", "T4")
    }
    print()
    print(box_chart(per_type, title="queue delay (s) by requested GPU type"))

    busy = per_type["V100"].median
    idle = per_type["T4"].median
    print(
        f"\nthe saturated V100 pool queues ~{busy:.0f}s at the median while "
        f"T4 requests start after ~{idle:.0f}s — the shape behind the "
        "paper's PAI1/PAI2 rules"
    )


if __name__ == "__main__":
    main()
