"""Case study: why do jobs leave their GPUs idle? (paper Sec. IV-B)

Reproduces the GPU-underutilization analysis across all three traces,
including the Fig. 4 CDF that motivates it:

    python examples/gpu_underutilization_study.py [n_jobs]

For each trace the script prints the near-zero SM-utilisation share, then
the cause rules (what predicts an idle GPU at submission/runtime) and
characteristic rules (what else is true of idle-GPU jobs).
"""

import sys

import numpy as np

from repro import MiningConfig, analyze_trace, underutilization_study
from repro.traces import get_trace, list_traces
from repro.viz import cdf_chart, empirical_cdf


def main(n_jobs: int = 6000) -> None:
    config = MiningConfig()  # the paper's parameters for every trace
    for name in list_traces():
        definition = get_trace(name)
        table = definition.generate_scaled(n_jobs=n_jobs)

        # Fig. 4 — how bad is underutilisation in this trace?
        sm = table["sm_util"].values
        cdf = empirical_cdf(sm)
        print(
            cdf_chart(
                cdf,
                [0, 25, 50, 75, 100],
                title=(
                    f"{definition.display_name}: SM-util CDF — "
                    f"{cdf.share_at_most(0):.0%} of jobs never touch the GPU"
                ),
            )
        )
        print()

        # Tables II–IV — the rules behind the phenomenon
        analysis = analyze_trace(definition, table=table, config=config)
        _, rule_table = underutilization_study(definition, analysis=analysis)
        print(rule_table)
        result = analysis["underutilization"]
        print(
            f"({len(result)} rules kept of {result.n_rules_before_pruning}; "
            f"{result.report.n_pruned} pruned by Conditions 1-4)\n"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6000)
