"""Bring-your-own-trace: apply the workflow to an arbitrary CSV log.

The paper's pitch is portability — "a systematic, widely applicable
analysis workflow".  This example shows the full path a system operator
would take with their own monitoring dump:

1. a job-log CSV appears on disk (here: a simulated batch cluster that is
   *not* one of the three paper traces);
2. the operator declares, per column, how it becomes items — which
   columns are quartile-binned, which carry special zero/"Std" bins,
   which are flags;
3. one keyword per question ("OOM", long queue, …) yields cause and
   characteristic rule tables.

    python examples/custom_trace_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import InterpretableAnalysis, format_rule_table
from repro.core import MiningConfig
from repro.dataframe import ColumnTable, read_csv, write_csv
from repro.preprocess import (
    BinningSpec,
    FeatureSpec,
    TierSpec,
    TracePreprocessor,
)


def make_fake_log(path: Path, n: int = 5000, seed: int = 3) -> None:
    """Simulate a CSV dump of a CPU/GPU batch cluster with an OOM pattern:
    large-memory Python jobs submitted to the small-memory partition tend
    to be killed by the OOM killer."""
    rng = np.random.default_rng(seed)
    partition = rng.choice(["small-mem", "big-mem"], size=n, p=[0.6, 0.4])
    language = rng.choice(["python", "cpp", "julia"], size=n, p=[0.6, 0.3, 0.1])
    mem_gb = np.where(
        language == "python",
        rng.lognormal(3.0, 0.8, n),  # python jobs: bigger, heavier tail
        rng.lognormal(2.0, 0.6, n),
    )
    runtime = rng.lognormal(6.0, 1.2, n)
    oom = (partition == "small-mem") & (mem_gb > 40) & (rng.random(n) < 0.9)
    oom |= rng.random(n) < 0.02  # background noise
    write_csv(
        ColumnTable.from_dict(
            {
                "partition": list(partition),
                "language": list(language),
                "mem_gb": mem_gb,
                "runtime_s": runtime,
                "oom_killed": [bool(v) for v in oom],
            }
        ),
        path,
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "cluster_log.csv"
        make_fake_log(log)

        # 1. load the log like any external CSV
        table = read_csv(log)
        print(f"loaded {len(table)} jobs with columns {table.column_names}")

        # 2. declare the encoding — this is the only trace-specific part
        preprocessor = TracePreprocessor(
            features=[
                FeatureSpec("partition", item_feature="Partition"),
                FeatureSpec("language", kind="label"),
                FeatureSpec("mem_gb", item_feature="Mem", binning=BinningSpec()),
                FeatureSpec("runtime_s", item_feature="Runtime"),
                FeatureSpec("oom_killed", kind="flag", true_label="OOM"),
            ],
        )

        # 3. one keyword per operational question
        workflow = InterpretableAnalysis(preprocessor, MiningConfig())
        result = workflow.run(table, {"oom": "OOM"})
        print(result.summary(), "\n")

        rule_table = format_rule_table(
            result["oom"], "Why are jobs OOM-killed?", max_cause=4, max_characteristic=2
        )
        print(rule_table)

        # the planted pattern should be readable straight off the table:
        top = max(result["oom"].cause, key=lambda r: r.lift)
        ant = {i.render() for i in top.antecedent}
        print(f"\nstrongest cause: {top}")
        assert any("Mem = Bin4" in a or "Partition = small-mem" in a for a in ant)


if __name__ == "__main__":
    main()
