"""From rules to predictors — validating the paper's classifier takeaways.

The paper concludes that PAI job failures have "multiple strong rules",
so "a simple rule-based or tree-based classifier will suffice", while for
SuperCloud "more complex models such as neural networks will be needed".
This example runs that experiment end to end:

    python examples/failure_prediction.py [n_jobs]

1. mine failure rules on a 70 % train split of each trace, using only
   *submission-time* features for PAI (the information available before
   the job runs);
2. build the CBA-style rule classifier;
3. evaluate on the 30 % holdout and compare against the base rate.
"""

import sys

from repro import MiningConfig, RuleClassifier, evaluate_predictions, split_database
from repro.core import generate_rules, mine_frequent_itemsets
from repro.traces import get_trace

PAI_SUBMISSION_FEATURES = {
    "Freq User", "Moderate User", "Rare User",
    "Freq Group", "Moderate Group", "Rare Group",
    "GPU Request", "CPU Request", "Mem Request", "GPU Type",
    "Tensorflow", "PyTorch", "Other Framework", "Multiple Tasks",
}


def run(trace_name: str, n_jobs: int, allowed, min_confidence: float) -> None:
    definition = get_trace(trace_name)
    table = definition.generate_scaled(n_jobs=n_jobs)
    db = definition.make_preprocessor().run(table).database
    train, test = split_database(db, 0.7, seed=7)

    config = MiningConfig()
    rules = generate_rules(mine_frequent_itemsets(train, config), min_lift=1.5)
    clf = RuleClassifier.from_rules(
        rules, "Failed", allowed_features=allowed, min_confidence=min_confidence
    )
    report = evaluate_predictions(clf.predict(test), clf.labels(test))

    print(f"{definition.display_name}: {len(clf)} decision rules")
    print(f"  holdout: {report}")
    if clf.rules:
        print(f"  strongest rule: {clf.rules[0]}")
    if report.precision > 1.5 * report.base_rate and report.recall > 0.3:
        print("  → simple rule-based classifier suffices (paper's PAI takeaway)")
    else:
        print("  → weak; a more complex model would be needed "
              "(paper's SuperCloud/Philly takeaway)")
    print()


def main(n_jobs: int = 8000) -> None:
    run("pai", n_jobs, PAI_SUBMISSION_FEATURES, min_confidence=0.6)
    run("supercloud", n_jobs,
        {"Freq User", "Moderate User", "Rare User", "New User"},
        min_confidence=0.2)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
