"""Scaling out: SON partitioned mining on a larger trace.

The paper points at distributed mining (Spark et al.) as the path for
bigger traces (Sec. VI).  `repro.parallel.son_mine` implements the
canonical two-phase SON scheme those systems use; this example verifies
it is answer-identical to single-machine FP-Growth and compares wall
times across partition/worker settings.

    python examples/parallel_mining.py [n_jobs]
"""

import sys
import time

from repro.core import MiningConfig, mine_frequent_itemsets
from repro.parallel import son_mine
from repro.traces import PAIConfig, generate_pai, pai_preprocessor


def main(n_jobs: int = 20_000) -> None:
    print(f"generating PAI trace with {n_jobs} jobs …")
    table = generate_pai(PAIConfig(n_jobs=n_jobs))
    db = pai_preprocessor().run(table).database
    print(f"{len(db)} transactions over {db.n_items} items\n")

    t0 = time.perf_counter()
    reference = mine_frequent_itemsets(db, MiningConfig())
    t_single = time.perf_counter() - t0
    print(f"single-machine FP-Growth: {len(reference)} itemsets in {t_single:.2f}s")

    for n_partitions, n_workers in [(4, 1), (4, 2), (8, 4)]:
        t0 = time.perf_counter()
        son = son_mine(db, 0.05, max_len=5, n_partitions=n_partitions, n_workers=n_workers)
        elapsed = time.perf_counter() - t0
        identical = son.counts == reference.counts
        print(
            f"SON {n_partitions} partitions × {n_workers} workers: "
            f"{len(son)} itemsets in {elapsed:.2f}s "
            f"({'identical to FP-Growth' if identical else 'MISMATCH!'})"
        )
        assert identical


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
