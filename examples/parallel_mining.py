"""Scaling out: partitioned engine backends on a larger trace.

The paper points at distributed mining (Spark et al.) as the path for
bigger traces (Sec. VI).  The engine's ``process`` backend implements
the canonical two-phase SON scheme those systems use; this example
verifies it is answer-identical to the serial backend and compares wall
times across partition/worker settings.

    python examples/parallel_mining.py [n_jobs]
"""

import sys
import time

from repro.core import MiningConfig
from repro.engine import MiningEngine
from repro.traces import PAIConfig, generate_pai, pai_preprocessor


def main(n_jobs: int = 20_000) -> None:
    print(f"generating PAI trace with {n_jobs} jobs …")
    table = generate_pai(PAIConfig(n_jobs=n_jobs))
    db = pai_preprocessor().run(table).database
    print(f"{len(db)} transactions over {db.n_items} items\n")
    config = MiningConfig()

    serial = MiningEngine(backend="serial", cache=False)
    t0 = time.perf_counter()
    reference = serial.mine(db, config)
    t_single = time.perf_counter() - t0
    print(f"serial backend (FP-Growth): {len(reference)} itemsets in {t_single:.2f}s")

    for n_partitions, n_workers in [(4, 1), (4, 2), (8, 4)]:
        engine = MiningEngine(
            backend="process",
            n_workers=n_workers,
            n_partitions=n_partitions,
            cache=False,
        )
        t0 = time.perf_counter()
        son = engine.mine(db, config)
        elapsed = time.perf_counter() - t0
        identical = son.counts == reference.counts
        print(
            f"process backend, {n_partitions} partitions × {n_workers} workers: "
            f"{len(son)} itemsets in {elapsed:.2f}s "
            f"({'identical to serial' if identical else 'MISMATCH!'})"
        )
        assert identical

    # the cache turns a repeat of the same mining pass into a lookup
    cached = MiningEngine(backend="serial")
    cached.mine(db, config)
    t0 = time.perf_counter()
    cached.mine(db, config)
    print(f"\ncached repeat: {time.perf_counter() - t0:.4f}s "
          f"({cached.cache_stats()})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
