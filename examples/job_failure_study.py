"""Case study: what do failed jobs look like? (paper Sec. IV-C)

Reproduces the job-failure analysis for all three traces plus the Fig. 5
exit-status overview:

    python examples/job_failure_study.py [n_jobs]

Note how the three clusters differ — the paper's core argument for a
portable, per-system methodology:

* PAI: failures concentrate in one heavy user's job group and are highly
  predictable from submission metadata;
* SuperCloud: failure is weakly predictable (low confidences), but
  low-utilisation jobs fail ≈ 2× more often and many failures occur late;
* Philly: multi-GPU gangs and new users drive failures.
"""

import sys
from collections import Counter

from repro import MiningConfig, analyze_trace, failure_study
from repro.traces import get_trace, list_traces
from repro.viz import bar_chart


def main(n_jobs: int = 6000) -> None:
    config = MiningConfig()
    for name in list_traces():
        definition = get_trace(name)
        table = definition.generate_scaled(n_jobs=n_jobs)

        statuses = Counter(table["status"].to_list())
        shares = {s: c / len(table) for s, c in sorted(statuses.items())}
        print(bar_chart(shares, title=f"{definition.display_name}: job exit status"))
        print()

        analysis = analyze_trace(definition, table=table, config=config)
        _, rule_table = failure_study(definition, analysis=analysis)
        print(rule_table)
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6000)
