"""Automated takeaways and cross-trace contrasts (paper Sec. IV–V).

The paper's rule tables end in "Takeaway" boxes; this example generates
them programmatically for every trace and then builds the cross-trace
contrast table behind the paper's observations like "new users fail in
Philly, frequent users fail in PAI":

    python examples/operational_insights.py [n_jobs]
"""

import sys

from repro.analysis import contrast_keyword, extract_insights
from repro.core import MiningConfig, mine_keyword_rules
from repro.traces import get_trace, list_traces


def main(n_jobs: int = 6000) -> None:
    config = MiningConfig()
    failure_results = {}

    for name in list_traces():
        definition = get_trace(name)
        table = definition.generate_scaled(n_jobs=n_jobs)
        db = definition.make_preprocessor().run(table).database

        print(f"=== {definition.display_name} ===")
        for study, keyword in sorted(definition.keywords.items()):
            if study not in ("underutilization", "failure", "killed"):
                continue
            result = mine_keyword_rules(db, keyword, config)
            if study == "failure":
                failure_results[definition.display_name] = result
            insights = extract_insights(result)
            if not insights:
                continue
            print(f"-- keyword {keyword!r}")
            for insight in insights:
                print(insight.render())
            print()

    # the cross-trace contrast the paper draws in Sec. IV-C / V
    contrast = contrast_keyword(failure_results)
    print(contrast.render())
    specific = contrast.trace_specific()
    if specific:
        print("\ntrace-specific failure signals (the paper's contrast findings):")
        for signal in specific[:8]:
            where = ", ".join(signal.present_in)
            print(f"  {signal.item} — only in {where}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6000)
