"""Streaming monitoring: watching failure rules drift in a live window.

The paper's workflow is batch, but its intro motivates continuous
re-analysis and its related work points at streaming miners.  This
example replays a SuperCloud trace as an event stream into a sliding
window, re-mines the failure rules periodically, and diffs consecutive
rule sets — simulating an operator dashboard that flags regime changes
(here: a planted mid-stream incident where one node pool starts killing
jobs).

    python examples/streaming_monitor.py
"""

import numpy as np

from repro.analysis.drift import diff_rules
from repro.core import MiningConfig, generate_rules
from repro.streaming import SlidingWindowMiner
from repro.traces import SuperCloudConfig, generate_supercloud, supercloud_preprocessor


def main() -> None:
    # one fixed encoding for the whole stream, so windows share item ids
    table = generate_supercloud(SuperCloudConfig(n_jobs=9000, use_scheduler=False))
    db = supercloud_preprocessor().run(table).database

    # replay transactions in submission order; inject an incident in the
    # last third (a burst of failing, zero-utilisation jobs)
    incident = [
        ["Failed", "SM Util = 0%", "GMem Util = Bin1", "GPU Power = Bin1"]
    ] * 900

    config = MiningConfig(min_support=0.05, min_lift=1.5, max_len=3)
    miner = SlidingWindowMiner(3000, config=config, vocabulary=db.vocabulary)
    kw_id = db.vocabulary.id_of("Failed")

    def mine_failure_rules():
        return generate_rules(miner.mine(), min_lift=1.5, keyword_ids=(kw_id,))

    previous = None
    checkpoints = []
    stream = list(db.iter_item_transactions())
    stream = stream[:6000] + incident + stream[6000:]
    for position, txn in enumerate(stream, 1):
        miner.observe(txn)
        if position % 3000 == 0:
            rules = mine_failure_rules()
            fail_rate = miner.item_support("Failed")
            print(
                f"after {position:>5} jobs: window failure rate "
                f"{fail_rate:.1%}, {len(rules)} failure rules"
            )
            if previous is not None:
                drift = diff_rules(previous, rules)
                print("  " + drift.render(limit=2).replace("\n", "\n  "))
            checkpoints.append((position, fail_rate, len(rules)))
            previous = rules
            print()

    rates = [rate for _, rate, _ in checkpoints]
    print(f"failure-rate trajectory across windows: "
          f"{' → '.join(f'{r:.1%}' for r in rates)}")
    assert max(rates) > 1.5 * rates[0], "the incident must be visible"


if __name__ == "__main__":
    main()
