"""End-to-end rule serving: mine → persist → serve → match live jobs.

The offline half of the stack ends at a pruned rule set (Sec. III-B/D);
this example walks the full online path the serving subsystem adds:

1. mine failure and underutilisation rules from a synthetic SuperCloud
   trace and persist them as a versioned RuleBook;
2. load the book back (as a separately-deployed server would), start the
   asyncio rule service on an ephemeral port;
3. replay freshly simulated jobs against the service and print which
   rules fire on which jobs — the "flag an incoming job" loop of Sec. IV;
4. read the service's own metrics (p50/p99 latency, per-rule counts) and
   shut down gracefully.

    python examples/serve_and_match.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.analysis import InterpretableAnalysis
from repro.serve import RuleBook, RuleService, RuleServiceClient, trace_transactions
from repro.traces import get_trace


def mine_rulebook(path: Path) -> RuleBook:
    definition = get_trace("supercloud")
    table = definition.generate_scaled(n_jobs=6000)
    workflow = InterpretableAnalysis(definition.make_preprocessor())
    result = workflow.run(table, dict(definition.keywords))
    book = result.to_rulebook(trace=definition.name)
    book.save(path)
    print(f"mined and saved: {book.provenance()}")
    return book


async def serve_and_match(path: Path) -> None:
    # a real deployment loads the book in a different process; reloading
    # here exercises the same code path
    book = RuleBook.load(path)
    service = RuleService.from_rulebook(book)
    await service.start(port=0)
    print(f"service up on 127.0.0.1:{service.port} with {len(book)} rules\n")

    # fresh jobs from the same simulator-backed generator (different seed,
    # so the service has never seen them)
    jobs = trace_transactions("supercloud", n_jobs=300, seed=99)

    async with await RuleServiceClient.connect("127.0.0.1", service.port) as client:
        health = await client.healthz()
        print(f"healthz: {health['status']}, {health['n_rules']} rules loaded")

        n_flagged = 0
        for job_no, transaction in enumerate(jobs):
            response = await client.match(transaction, explain=True)
            if response["fired"] and n_flagged < 5:
                top = response["fired"][0]
                print(
                    f"job {job_no:>4}: {len(response['fired'])} rules fired; "
                    f"top: {{{', '.join(top['antecedent'])}}} => "
                    f"{{{', '.join(top['consequent'])}}} (lift {top['lift']:.2f})"
                )
                for miss in response.get("near_misses", [])[:1]:
                    print(f"          near miss: missing {miss['missing']!r}")
            n_flagged += bool(response["fired"])

        metrics = await client.metrics()
        latency = metrics["latency"]
        print(
            f"\n{n_flagged}/{len(jobs)} jobs flagged; service saw "
            f"{metrics['requests']['matched']} matches in "
            f"{metrics['requests']['batches']} batches, "
            f"p50 {latency['p50_s'] * 1e6:.0f}us / p99 {latency['p99_s'] * 1e6:.0f}us"
        )
        busiest = sorted(
            metrics["rule_matches"].items(), key=lambda kv: -kv[1]
        )[:3]
        for label, count in busiest:
            print(f"  {count:>5}x  {label}")

    await service.shutdown()
    print("\nservice drained and stopped")
    assert n_flagged > 0, "synthetic traffic must fire at least one rule"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "supercloud.rulebook.jsonl"
        mine_rulebook(path)
        asyncio.run(serve_and_match(path))


if __name__ == "__main__":
    main()
