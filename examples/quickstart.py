"""Quickstart — the analysis workflow in five minutes.

Runs the full interpretable-analysis pipeline of the paper on a small
synthetic SuperCloud trace and prints paper-style rule tables:

    python examples/quickstart.py

Steps shown:
1. generate a trace (a merged scheduler + telemetry job table);
2. run preprocessing → FP-Growth → rule generation → keyword pruning;
3. read the cause ("C") and characteristic ("A") rules.
"""

from repro import MiningConfig, full_case_study


def main() -> None:
    # One call drives everything: Sec. III preprocessing + mining with the
    # paper's parameters (min-support 5 %, max length 5, min-lift 1.5,
    # C_lift = C_supp = 1.5) and the Sec. IV case studies.
    study = full_case_study(
        "supercloud",
        n_jobs=6000,
        config=MiningConfig(),  # the paper's defaults, spelled out
    )
    print(study.render())

    # The analysis object gives programmatic access to everything the
    # report printed:
    underutil = study.analysis["underutilization"]
    print(f"kept {len(underutil)} underutilization rules "
          f"({underutil.report.n_pruned} pruned)")
    strongest = max(underutil.all_rules, key=lambda r: r.lift)
    print(f"strongest rule: {strongest}")

    # A shareable artefact: the same study as a standalone HTML report
    # (tables, Fig. 4/5-style charts, automated takeaways — no external
    # assets).
    import tempfile
    from pathlib import Path

    from repro.analysis import extract_insights
    from repro.analysis.html_report import render_html_report

    insights = {
        name: extract_insights(study.analysis[name])
        for name in ("underutilization", "failure")
        if name in study.analysis.keyword_results
    }
    html_path = Path(tempfile.gettempdir()) / "supercloud_report.html"
    html_path.write_text(render_html_report(study, insights=insights))
    print(f"\nHTML report written to {html_path}")


if __name__ == "__main__":
    main()
