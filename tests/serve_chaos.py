"""Reusable fault-injection harness for the serving subsystem.

The chaos tests (``test_serve_chaos.py``) and any later streaming /
incremental-serving PRs drive real multi-process clusters through the
four production failure modes this module packages:

* :meth:`ChaosCluster.kill` — SIGKILL a shard mid-load (replica loss);
* :meth:`ChaosCluster.stall` / :meth:`ChaosCluster.resume` — SIGSTOP a
  worker so it stays connected but silent (the gray-failure case that
  pure liveness checks miss);
* :func:`abort_mid_batch` — a client that pipelines requests and
  vanishes without reading its responses (mid-batch disconnect);
* :meth:`ChaosCluster.reload` — rulebook hot-swap under sustained load.

:class:`LoadDriver` supplies the "under sustained load" part: N
sequential clients looping over a transaction pool until told to stop,
recording every response's version and every error that survived the
client's own retry budget, so tests can assert *zero failed requests*
and inspect version trajectories around a fault.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import signal
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.items import Item
from repro.serve import RuleBook, RuleServiceClient, ServiceError
from repro.serve.service import MAX_LINE_BYTES
from repro.serve.shard import ShardCluster

from .test_serve_rulebook import random_rules

__all__ = [
    "make_rulebook",
    "save_rulebook",
    "random_transactions",
    "ChaosCluster",
    "LoadDriver",
    "abort_mid_batch",
]


def make_rulebook(seed: int, n_rules: int = 80, n_items: int = 30) -> RuleBook:
    """A deterministic random rulebook for chaos scenarios."""
    return RuleBook(rules=random_rules(random.Random(seed), n_rules, n_items))


def save_rulebook(book: RuleBook, directory: Path, name: str) -> str:
    path = directory / f"{name}.rulebook.jsonl"
    book.save(path)
    return str(path)


def random_transactions(
    seed: int, n: int, n_items: int = 30, max_len: int = 8
) -> list[list[str]]:
    """Transactions over the same item vocabulary `random_rules` uses."""
    rng = random.Random(seed)
    vocabulary = [str(Item(f"F{k % 7}", f"v{k}")) for k in range(n_items)]
    return [
        sorted(rng.sample(vocabulary, rng.randint(1, max_len)))
        for _ in range(n)
    ]


class ChaosCluster:
    """A real multi-process shard cluster plus fault injection.

    Async context manager: enters with the cluster serving, exits with
    every worker stopped (including killed or stalled ones — SIGCONT is
    sent on teardown so a stalled worker can die).
    """

    def __init__(
        self,
        rulebook_path: str,
        n_shards: int,
        *,
        lb_policy: str = "least_loaded",
        request_timeout_s: float = 2.0,
        max_queue: int | None = None,
        max_batch: int | None = None,
    ):
        self.cluster = ShardCluster(
            rulebook_path,
            n_shards,
            lb_policy=lb_policy,
            request_timeout_s=request_timeout_s,
            max_queue=max_queue,
            max_batch=max_batch,
        )

    async def __aenter__(self) -> "ChaosCluster":
        await self.cluster.start()
        return self

    async def __aexit__(self, *exc) -> None:
        for worker in self.cluster.workers:  # un-stall before teardown
            try:
                worker.send_signal(signal.SIGCONT)
            except ProcessLookupError:
                pass
        await self.cluster.shutdown()

    @property
    def host(self) -> str:
        return self.cluster.host

    @property
    def port(self) -> int:
        return self.cluster.port

    def kill(self, k: int) -> int:
        """SIGKILL shard *k*; returns its pid."""
        worker = self.cluster.kill_shard(k)
        assert worker.pid is not None
        return worker.pid

    def stall(self, k: int) -> None:
        """SIGSTOP shard *k*: still connected, answering nothing."""
        self.cluster.workers[k].send_signal(signal.SIGSTOP)

    def resume(self, k: int) -> None:
        self.cluster.workers[k].send_signal(signal.SIGCONT)

    async def reload(self, rulebook_path: str, **kwargs) -> dict:
        return await self.cluster.reload(rulebook_path, **kwargs)


@dataclass
class LoadRecord:
    """One answered request under load."""

    worker: int
    version: int | None  # None for error responses
    error: str | None


@dataclass
class LoadOutcome:
    records: list[LoadRecord] = field(default_factory=list)

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.records if r.error is None)

    @property
    def failures(self) -> list[LoadRecord]:
        return [r for r in self.records if r.error is not None]

    def versions_after(self, marker: int) -> list[int]:
        return [
            r.version
            for r in self.records[marker:]
            if r.version is not None
        ]


class LoadDriver:
    """Sustained background load against one endpoint.

    Each of *concurrency* workers opens its own connection and issues
    sequential match requests (cycling over *transactions*) until
    :meth:`stop`.  The client's built-in bounded backoff absorbs
    retriable rejections; whatever still fails is recorded — so a test
    asserting ``outcome.failures == []`` is asserting the strong form of
    graceful degradation: *no client ever saw an unrecovered error*.

    Workers transparently reconnect if their connection drops (the
    router stays up across shard faults, but reuseport-mode tests point
    clients straight at workers).
    """

    def __init__(
        self,
        host: str,
        port: int,
        transactions: list[list[str]],
        *,
        concurrency: int = 4,
        max_retries: int = 100,
        backoff_cap_s: float = 0.1,
    ):
        self.host = host
        self.port = port
        self.transactions = transactions
        self.concurrency = concurrency
        self.max_retries = max_retries
        self.backoff_cap_s = backoff_cap_s
        self.outcome = LoadOutcome()
        self._stop = asyncio.Event()
        self._tasks: list[asyncio.Task] = []

    async def __aenter__(self) -> "LoadDriver":
        self._tasks = [
            asyncio.create_task(self._worker(k))
            for k in range(self.concurrency)
        ]
        return self

    async def __aexit__(self, *exc) -> None:
        if self._tasks:
            await self.stop()

    async def _worker(self, worker_id: int) -> None:
        client: RuleServiceClient | None = None
        pool = itertools.cycle(
            self.transactions[worker_id::self.concurrency]
            or self.transactions
        )
        try:
            while not self._stop.is_set():
                if client is None:
                    try:
                        client = await RuleServiceClient.connect(
                            self.host,
                            self.port,
                            max_retries=self.max_retries,
                            backoff_cap_s=self.backoff_cap_s,
                        )
                    except OSError:
                        await asyncio.sleep(0.05)
                        continue
                try:
                    response = await client.match(next(pool))
                except ServiceError as exc:
                    self.outcome.records.append(
                        LoadRecord(worker_id, None, exc.code)
                    )
                except (ConnectionError, OSError):
                    await client.close()
                    client = None
                    continue
                else:
                    self.outcome.records.append(
                        LoadRecord(
                            worker_id, response.get("version"), None
                        )
                    )
        finally:
            if client is not None:
                await client.close()

    def marker(self) -> int:
        """Current record count — snapshot before injecting a fault."""
        return len(self.outcome.records)

    async def wait_for_progress(
        self, n_more: int, timeout: float = 10.0
    ) -> None:
        """Block until *n_more* further requests complete successfully.

        The liveness assertion of every chaos test: raises
        ``TimeoutError`` if the cluster stops making progress — i.e.
        clients hung.
        """
        target_ok = self.outcome.n_ok + n_more
        async with asyncio.timeout(timeout):
            while self.outcome.n_ok < target_ok:
                await asyncio.sleep(0.01)

    async def stop(self) -> LoadOutcome:
        self._stop.set()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        return self.outcome


async def abort_mid_batch(
    host: str,
    port: int,
    transactions: list[list[str]],
    *,
    n_pipelined: int = 32,
    n_read: int = 3,
) -> None:
    """Pipeline *n_pipelined* requests, read *n_read* answers, vanish.

    Models a client that dies mid-batch: its remaining responses are
    answered into a closed socket.  The service must drop them without
    disturbing other connections — the caller asserts that by keeping a
    LoadDriver running across this call.
    """
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES
    )
    for k in range(n_pipelined):
        transaction = transactions[k % len(transactions)]
        writer.write(
            json.dumps(
                {"type": "match", "id": k, "transaction": transaction}
            ).encode()
            + b"\n"
        )
    await writer.drain()
    for _ in range(n_read):
        await reader.readline()
    # abort: close without reading the other n_pipelined - n_read answers
    writer.transport.abort()
