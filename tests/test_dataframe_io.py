"""Unit tests for CSV ingestion/export."""

import pytest

from repro.dataframe import (
    ColumnTable,
    read_csv,
    read_csv_text,
    write_csv,
    write_csv_text,
)


class TestReadCsv:
    def test_types_inferred(self):
        t = read_csv_text("user,runtime,failed\nalice,10.5,true\nbob,,false\n")
        assert t["runtime"].to_list() == [10.5, None]
        assert t["user"].to_list() == ["alice", "bob"]
        # "true"/"false" cells parse back to booleans (round-trip support)
        assert t["failed"].to_list() == [True, False]

    def test_empty_text(self):
        assert len(read_csv_text("")) == 0

    def test_header_only(self):
        t = read_csv_text("a,b\n")
        assert t.column_names == ["a", "b"]
        assert len(t) == 0

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="row 2"):
            read_csv_text("a,b\n1\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            read_csv_text("a,a\n1,2\n")

    def test_quoted_commas(self):
        t = read_csv_text('name,v\n"x, y",1\n')
        assert t["name"].to_list() == ["x, y"]


class TestRoundTrip:
    def test_text_roundtrip(self):
        t = ColumnTable.from_dict(
            {
                "user": ["alice", None, "carol"],
                "runtime": [10.0, 2.5, None],
                "ok": [True, False, True],
            }
        )
        back = read_csv_text(write_csv_text(t))
        assert back["user"].to_list() == ["alice", None, "carol"]
        assert back["runtime"].to_list() == [10.0, 2.5, None]
        # booleans survive the round trip via "true"/"false" cells
        assert back["ok"].to_list() == [True, False, True]

    def test_integral_floats_compact(self):
        text = write_csv_text(ColumnTable.from_dict({"x": [1.0, 2.5]}))
        assert "1\n" in text.replace("\r", "") and "2.5" in text

    def test_file_roundtrip(self, tmp_path):
        t = ColumnTable.from_dict({"a": [1, 2], "b": ["x", "y"]})
        path = tmp_path / "trace.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert back.to_dict() == {"a": [1.0, 2.0], "b": ["x", "y"]}

    def test_empty_table_roundtrip(self):
        assert len(read_csv_text(write_csv_text(ColumnTable()))) == 0
