"""Tests for the sliding-window streaming miner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig, TransactionDatabase, fpgrowth
from repro.streaming import SlidingWindowMiner


class TestWindowMaintenance:
    def test_grows_until_window_size(self):
        miner = SlidingWindowMiner(window_size=3)
        for k in range(5):
            miner.observe([f"i{k}"])
        assert len(miner) == 3
        assert miner.n_seen == 5

    def test_eviction_updates_item_counts(self):
        miner = SlidingWindowMiner(window_size=2)
        miner.observe(["a"])
        miner.observe(["a", "b"])
        assert miner.item_support("a") == 1.0
        miner.observe(["b"])  # evicts the first ["a"]
        assert miner.item_support("a") == pytest.approx(0.5)
        assert miner.item_support("b") == 1.0

    def test_unknown_item_support_zero(self):
        miner = SlidingWindowMiner(window_size=2)
        miner.observe(["a"])
        assert miner.item_support("ghost") == 0.0

    def test_empty_window_support_raises(self):
        # regression: support over zero transactions is undefined and must
        # fail loudly, not read as "item absent" (0.0) or divide by zero
        miner = SlidingWindowMiner(window_size=2)
        with pytest.raises(ValueError, match="empty window"):
            miner.item_support("a")

    def test_window_emptiness_is_about_window_not_stream(self):
        # after enough evictions the window is never empty again, so the
        # guard only ever fires before the first observe()
        miner = SlidingWindowMiner(window_size=1)
        miner.observe(["a"])
        miner.observe(["b"])
        assert miner.item_support("a") == 0.0
        assert miner.item_support("b") == 1.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowMiner(window_size=0)

    def test_duplicate_items_collapsed(self):
        miner = SlidingWindowMiner(window_size=2)
        miner.observe(["a", "a", "a"])
        assert miner.item_support("a") == 1.0
        db = miner.snapshot()
        assert len(db.transaction(0)) == 1


class TestMining:
    def test_mine_matches_batch_on_window(self):
        miner = SlidingWindowMiner(
            window_size=4, config=MiningConfig(min_support=0.5, max_len=None)
        )
        stream = [["a", "b"], ["a"], ["a", "b"], ["b"], ["a", "b", "c"]]
        for txn in stream:
            miner.observe(txn)
        # window now holds the last 4
        batch = TransactionDatabase.from_itemsets(stream[1:])
        expected = fpgrowth(batch, 0.5)
        mined = miner.mine()
        decoded = {
            frozenset(i.render() for i in miner.vocabulary.items_of(ids)): count
            for ids, count in mined.counts.items()
        }
        expected_decoded = {
            frozenset(i.render() for i in batch.vocabulary.items_of(ids)): count
            for ids, count in expected.items()
        }
        assert decoded == expected_decoded

    def test_drift_detection(self):
        """A regime change inside the stream shows up after the window
        slides past the old regime — the monitoring use case."""
        miner = SlidingWindowMiner(
            window_size=50, config=MiningConfig(min_support=0.6, max_len=2)
        )
        # regime 1: failures dominate
        for _ in range(50):
            miner.observe(["Failed", "SM Util = 0%"])
        before = miner.mine()
        assert miner.item_support("Failed") == 1.0
        # regime 2: healthy jobs wash the window
        for _ in range(50):
            miner.observe(["Completed"])
        after = miner.mine()
        assert miner.item_support("Failed") == 0.0
        failed_id = miner.vocabulary.id_of("Failed")
        assert any(failed_id in s for s in before.counts)
        assert not any(failed_id in s for s in after.counts)

    def test_snapshot_is_isolated(self):
        miner = SlidingWindowMiner(window_size=2)
        miner.observe(["a"])
        snap = miner.snapshot()
        miner.observe(["b"])
        miner.observe(["c"])
        assert len(snap) == 1  # unchanged by later stream activity


@given(
    window=st.integers(1, 10),
    stream=st.lists(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=4), max_size=40
    ),
)
@settings(max_examples=80, deadline=None)
def test_window_equals_batch_property(window, stream):
    """At every prefix, the snapshot equals a batch DB over the suffix."""
    miner = SlidingWindowMiner(window_size=window)
    for txn in stream:
        miner.observe(txn)
    tail = stream[-window:] if stream else []
    snap = miner.snapshot()
    assert len(snap) == len(tail)
    batch = TransactionDatabase.from_itemsets(tail)
    decoded_snap = [
        frozenset(i.render() for i in s) for s in snap.iter_item_transactions()
    ]
    decoded_batch = [
        frozenset(i.render() for i in s) for s in batch.iter_item_transactions()
    ]
    assert decoded_snap == decoded_batch


class TestSnapshotPreallocation:
    """The numpy-preallocated snapshot vs the retained list-building oracle."""

    def test_snapshot_matches_list_oracle(self):
        import numpy as np

        miner = SlidingWindowMiner(window_size=5)
        for k in range(12):
            miner.observe([f"i{k % 4}", f"j{k % 3}"] + (["k"] if k % 2 else []))
        fast, oracle = miner.snapshot(), miner._snapshot_lists()
        assert np.array_equal(fast.indptr, oracle.indptr)
        assert np.array_equal(fast.indices, oracle.indices)
        assert fast.fingerprint() == oracle.fingerprint()

    def test_snapshot_matches_oracle_with_empty_transactions(self):
        import numpy as np

        miner = SlidingWindowMiner(window_size=4)
        miner.observe([])
        miner.observe(["a"])
        miner.observe([])
        fast, oracle = miner.snapshot(), miner._snapshot_lists()
        assert np.array_equal(fast.indptr, oracle.indptr)
        assert np.array_equal(fast.indices, oracle.indices)

    def test_maintained_id_total_tracks_eviction(self):
        miner = SlidingWindowMiner(window_size=2)
        miner.observe(["a", "b", "c"])
        miner.observe(["a"])
        miner.observe(["b", "c"])  # evicts the 3-item transaction
        assert miner._n_ids == 3
        assert len(miner.snapshot().indices) == 3
