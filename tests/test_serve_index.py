"""Tests for the inverted rule index: equivalence with brute force, hints."""

import random

import repro.serve.index as index_mod
from repro.core.items import Item, as_item
from repro.serve import RuleBook, RuleIndex

from .test_serve_rulebook import random_rules


def brute_force_match(rules, transaction):
    """Reference semantics: subset-check every rule's antecedent."""
    items = {as_item(i) for i in transaction}
    return [rule for rule in rules if rule.antecedent <= items]


def brute_force_near(rules, transaction):
    # one antecedent item missing, the rest present; single-item
    # antecedents are excluded by definition (they either fire or share
    # nothing with the job, so there is no partial evidence to hint from)
    items = {as_item(i) for i in transaction}
    return [
        rule
        for rule in rules
        if len(rule.antecedent) > 1 and len(rule.antecedent - items) == 1
    ]


class TestEquivalence:
    def test_matches_agree_with_brute_force_on_1k_transactions(self):
        # the index must agree with naive subset checking — rules AND order
        rng = random.Random(42)
        book = RuleBook(rules=random_rules(rng, 300, n_items=50))
        index = RuleIndex.from_rulebook(book)
        vocabulary = [str(item) for item in book.vocabulary()]

        n_fired = 0
        for _ in range(1000):
            transaction = rng.sample(vocabulary, rng.randint(0, 12))
            expected = brute_force_match(index.rules, transaction)
            got = [m.rule for m in index.match(transaction)]
            assert got == expected
            n_fired += len(got)
        assert n_fired > 0, "test vocabulary never fired a rule — too sparse"

    def test_near_misses_agree_with_brute_force(self):
        rng = random.Random(43)
        book = RuleBook(rules=random_rules(rng, 200, n_items=40))
        index = RuleIndex.from_rulebook(book)
        vocabulary = [str(item) for item in book.vocabulary()]

        n_near = 0
        for _ in range(500):
            transaction = rng.sample(vocabulary, rng.randint(0, 10))
            expected = brute_force_near(index.rules, transaction)
            got = index.explain(transaction)
            assert [n.rule for n in got] == expected
            items = {as_item(i) for i in transaction}
            for near in got:
                assert near.missing in near.rule.antecedent
                assert near.missing not in items
            n_near += len(got)
        assert n_near > 0


class TestMatching:
    def test_ranked_by_lift(self):
        book = RuleBook(rules=random_rules(random.Random(1), 100, n_items=20))
        index = RuleIndex.from_rulebook(book)
        vocabulary = [str(item) for item in book.vocabulary()]
        matches = index.match(vocabulary)  # a transaction with every item
        assert len(matches) == len(book)
        lifts = [m.rule.lift for m in matches]
        assert lifts == sorted(lifts, reverse=True)

    def test_unknown_items_ignored(self):
        book = RuleBook(rules=random_rules(random.Random(2), 20))
        index = RuleIndex.from_rulebook(book)
        assert index.match(["Never = Seen", "Ghost"]) == []
        assert index.explain(["Never = Seen"]) == []

    def test_empty_transaction(self):
        book = RuleBook(rules=random_rules(random.Random(3), 20))
        index = RuleIndex.from_rulebook(book)
        assert index.match([]) == []
        assert index.explain([]) == []

    def test_consequent_observed_flag(self):
        rng = random.Random(4)
        book = RuleBook(rules=random_rules(rng, 50, n_items=15))
        index = RuleIndex.from_rulebook(book)
        rule = index.rules[0]
        only_ant = [str(i) for i in rule.antecedent]
        with_cons = only_ant + [str(i) for i in rule.consequent]
        fired_ant = {m.rule_id: m for m in index.match(only_ant)}
        fired_full = {m.rule_id: m for m in index.match(with_cons)}
        assert not fired_ant[0].consequent_observed
        assert fired_full[0].consequent_observed

    def test_accepts_item_objects_and_strings(self):
        book = RuleBook(rules=random_rules(random.Random(5), 20))
        index = RuleIndex.from_rulebook(book)
        rule = index.rules[0]
        as_strings = [str(i) for i in rule.antecedent]
        as_items = list(rule.antecedent)
        assert [m.rule_id for m in index.match(as_strings)] == [
            m.rule_id for m in index.match(as_items)
        ]

    def test_postings_cost_reported(self):
        book = RuleBook(rules=random_rules(random.Random(6), 30))
        index = RuleIndex.from_rulebook(book)
        assert index.n_postings == sum(len(r.antecedent) for r in index.rules)
        assert "n_rules=30" in repr(index)

    def test_rule_labels_stable(self):
        book = RuleBook(rules=random_rules(random.Random(8), 10))
        index = RuleIndex.from_rulebook(book)
        labels = list(index.iter_rule_labels())
        assert len(labels) == 10
        assert labels[0] == index.rule_label(0)
        assert " => " in labels[0]


def _random_batch(rng, vocabulary, n_jobs):
    """Mixed micro-batch: empty jobs, duplicates, unknown vocabulary."""
    batch = [[], list(vocabulary)]  # empty + every-item extremes
    for _ in range(n_jobs - len(batch)):
        # sample WITH replacement so duplicate items occur naturally
        job = [rng.choice(vocabulary) for _ in range(rng.randint(0, 12))]
        if rng.random() < 0.3:
            job.append(f"Unknown Feature = {rng.randint(0, 99)}")
        if rng.random() < 0.1:
            job.append("not an item at all ☃")
        rng.shuffle(job)
        batch.append(job)
    rng.shuffle(batch)
    return batch


class TestBatchParity:
    """The packed-bitmask kernel must be indistinguishable from scalar."""

    def _index(self, seed, n_rules=250, n_items=45):
        rng = random.Random(seed)
        book = RuleBook(rules=random_rules(rng, n_rules, n_items=n_items))
        return rng, RuleIndex.from_rulebook(book)

    def test_match_wire_batch_is_byte_identical_to_scalar(self):
        rng, index = self._index(100)
        vocabulary = [
            str(item)
            for rule in index.rules
            for item in (*rule.antecedent, *rule.consequent)
        ]
        batch = _random_batch(rng, vocabulary, 200)
        got = index.match_wire_batch(batch)
        expected = [index.match_wire(job) for job in batch]
        assert got == expected  # same ids, same ranking, same wire bytes
        assert any(got), "batch never fired a rule — vocabulary too sparse"

    def test_match_batch_parity_including_consequent_flags(self):
        rng, index = self._index(101)
        vocabulary = [str(item) for item in RuleBook(
            rules=index.rules
        ).vocabulary()]
        batch = _random_batch(rng, vocabulary, 150)
        got = index.match_batch(batch)
        expected = [index.match(job) for job in batch]
        assert got == expected
        flags = [m.consequent_observed for row in got for m in row]
        assert True in flags and False in flags

    def test_explain_batch_parity(self):
        rng, index = self._index(102)
        vocabulary = [str(item) for item in RuleBook(
            rules=index.rules
        ).vocabulary()]
        batch = _random_batch(rng, vocabulary, 150)
        got = index.explain_batch(batch)
        expected = [index.explain(job) for job in batch]
        assert got == expected
        assert any(got), "batch never produced a near-miss"

    def test_batch_agrees_with_brute_force(self):
        rng, index = self._index(103, n_rules=120, n_items=30)
        vocabulary = [str(item) for item in RuleBook(
            rules=index.rules
        ).vocabulary()]
        batch = _random_batch(rng, vocabulary, 120)
        for job, matches, nears in zip(
            batch, index.match_batch(batch), index.explain_batch(batch)
        ):
            assert [m.rule for m in matches] == brute_force_match(
                index.rules, job
            )
            assert [n.rule for n in nears] == brute_force_near(
                index.rules, job
            )
            items = {as_item(i) for i in job}
            for near in nears:
                assert near.missing in near.rule.antecedent
                assert near.missing not in items

    def test_empty_batch_and_empty_book(self):
        _, index = self._index(104)
        assert index.match_wire_batch([]) == []
        assert index.match_batch([]) == []
        assert index.explain_batch([]) == []
        empty = RuleIndex.from_rulebook(RuleBook(rules=[]))
        assert empty.match_wire_batch([["A = 1"], []]) == [[], []]
        assert empty.explain_batch([["A = 1"]]) == [[]]


class _CountingItem:
    """Stand-in for the Item class that counts ``parse`` invocations."""

    def __init__(self):
        self.n_parse = 0

    def parse(self, text):
        self.n_parse += 1
        return Item.parse(text)


class TestCanonCache:
    """The learned-spelling cache must stay bounded AND keep memoising."""

    def _fresh(self, monkeypatch, cache_max):
        monkeypatch.setattr(index_mod, "_CANON_CACHE_MAX", cache_max)
        counter = _CountingItem()
        monkeypatch.setattr(index_mod, "Item", counter)
        book = RuleBook(rules=random_rules(random.Random(9), 30, n_items=20))
        return RuleIndex.from_rulebook(book), counter

    def test_cache_size_stays_bounded(self, monkeypatch):
        index, _ = self._fresh(monkeypatch, cache_max=8)
        for i in range(100):
            index.match([f"Churn Feature = {i}"])
            assert index.canon_cache_len <= 8
        assert index.canon_cache_len == 8

    def test_steady_state_still_memoises_at_capacity(self, monkeypatch):
        # regression: the old cache stopped inserting once full, so every
        # post-capacity unseen spelling re-parsed forever
        index, counter = self._fresh(monkeypatch, cache_max=4)
        for i in range(10):  # overflow the cache
            index.match([f"Churn Feature = {i}"])
        assert counter.n_parse == 10
        for _ in range(5):  # newest spellings must be cache hits
            index.match(["Churn Feature = 9", "Churn Feature = 8"])
        assert counter.n_parse == 10, "cache stopped memoising at capacity"

    def test_fifo_eviction_order(self, monkeypatch):
        index, counter = self._fresh(monkeypatch, cache_max=2)
        index.match(["Spelling A"])
        index.match(["Spelling B"])
        index.match(["Spelling C"])  # evicts A (oldest)
        assert counter.n_parse == 3
        index.match(["Spelling C"])  # hit
        index.match(["Spelling B"])  # hit
        assert counter.n_parse == 3
        index.match(["Spelling A"])  # miss — was evicted
        assert counter.n_parse == 4

    def test_matching_unaffected_by_cache_churn(self, monkeypatch):
        # vocabulary spellings live in the static canon map, so unknown
        # spelling churn (fills + evictions) must never change answers
        index, _ = self._fresh(monkeypatch, cache_max=3)
        rule = index.rules[0]
        job = [str(item) for item in rule.antecedent]
        first = [m.rule_id for m in index.match(job)]
        assert 0 in first
        for i in range(10):
            index.match(job + [f"Churn Feature = {i}"])
        assert [m.rule_id for m in index.match(job)] == first
