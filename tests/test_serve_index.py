"""Tests for the inverted rule index: equivalence with brute force, hints."""

import random

from repro.core.items import Item, as_item
from repro.serve import RuleBook, RuleIndex

from .test_serve_rulebook import random_rules


def brute_force_match(rules, transaction):
    """Reference semantics: subset-check every rule's antecedent."""
    items = {as_item(i) for i in transaction}
    return [rule for rule in rules if rule.antecedent <= items]


def brute_force_near(rules, transaction):
    # one antecedent item missing, the rest present; single-item
    # antecedents are excluded by definition (they either fire or share
    # nothing with the job, so there is no partial evidence to hint from)
    items = {as_item(i) for i in transaction}
    return [
        rule
        for rule in rules
        if len(rule.antecedent) > 1 and len(rule.antecedent - items) == 1
    ]


class TestEquivalence:
    def test_matches_agree_with_brute_force_on_1k_transactions(self):
        # the index must agree with naive subset checking — rules AND order
        rng = random.Random(42)
        book = RuleBook(rules=random_rules(rng, 300, n_items=50))
        index = RuleIndex.from_rulebook(book)
        vocabulary = [str(item) for item in book.vocabulary()]

        n_fired = 0
        for _ in range(1000):
            transaction = rng.sample(vocabulary, rng.randint(0, 12))
            expected = brute_force_match(index.rules, transaction)
            got = [m.rule for m in index.match(transaction)]
            assert got == expected
            n_fired += len(got)
        assert n_fired > 0, "test vocabulary never fired a rule — too sparse"

    def test_near_misses_agree_with_brute_force(self):
        rng = random.Random(43)
        book = RuleBook(rules=random_rules(rng, 200, n_items=40))
        index = RuleIndex.from_rulebook(book)
        vocabulary = [str(item) for item in book.vocabulary()]

        n_near = 0
        for _ in range(500):
            transaction = rng.sample(vocabulary, rng.randint(0, 10))
            expected = brute_force_near(index.rules, transaction)
            got = index.explain(transaction)
            assert [n.rule for n in got] == expected
            items = {as_item(i) for i in transaction}
            for near in got:
                assert near.missing in near.rule.antecedent
                assert near.missing not in items
            n_near += len(got)
        assert n_near > 0


class TestMatching:
    def test_ranked_by_lift(self):
        book = RuleBook(rules=random_rules(random.Random(1), 100, n_items=20))
        index = RuleIndex.from_rulebook(book)
        vocabulary = [str(item) for item in book.vocabulary()]
        matches = index.match(vocabulary)  # a transaction with every item
        assert len(matches) == len(book)
        lifts = [m.rule.lift for m in matches]
        assert lifts == sorted(lifts, reverse=True)

    def test_unknown_items_ignored(self):
        book = RuleBook(rules=random_rules(random.Random(2), 20))
        index = RuleIndex.from_rulebook(book)
        assert index.match(["Never = Seen", "Ghost"]) == []
        assert index.explain(["Never = Seen"]) == []

    def test_empty_transaction(self):
        book = RuleBook(rules=random_rules(random.Random(3), 20))
        index = RuleIndex.from_rulebook(book)
        assert index.match([]) == []
        assert index.explain([]) == []

    def test_consequent_observed_flag(self):
        rng = random.Random(4)
        book = RuleBook(rules=random_rules(rng, 50, n_items=15))
        index = RuleIndex.from_rulebook(book)
        rule = index.rules[0]
        only_ant = [str(i) for i in rule.antecedent]
        with_cons = only_ant + [str(i) for i in rule.consequent]
        fired_ant = {m.rule_id: m for m in index.match(only_ant)}
        fired_full = {m.rule_id: m for m in index.match(with_cons)}
        assert not fired_ant[0].consequent_observed
        assert fired_full[0].consequent_observed

    def test_accepts_item_objects_and_strings(self):
        book = RuleBook(rules=random_rules(random.Random(5), 20))
        index = RuleIndex.from_rulebook(book)
        rule = index.rules[0]
        as_strings = [str(i) for i in rule.antecedent]
        as_items = list(rule.antecedent)
        assert [m.rule_id for m in index.match(as_strings)] == [
            m.rule_id for m in index.match(as_items)
        ]

    def test_postings_cost_reported(self):
        book = RuleBook(rules=random_rules(random.Random(6), 30))
        index = RuleIndex.from_rulebook(book)
        assert index.n_postings == sum(len(r.antecedent) for r in index.rules)
        assert "n_rules=30" in repr(index)

    def test_rule_labels_stable(self):
        book = RuleBook(rules=random_rules(random.Random(8), 10))
        index = RuleIndex.from_rulebook(book)
        labels = list(index.iter_rule_labels())
        assert len(labels) == 10
        assert labels[0] == index.rule_label(0)
        assert " => " in labels[0]
