"""Tests for cluster utilisation accounting + naive Apriori baseline."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, FCFSScheduler, JobRequest, NodeSpec, build_nodes
from repro.cluster.accounting import busy_gpu_timeline, utilization_by_type
from repro.core import TransactionDatabase, fpgrowth
from repro.core.apriori import apriori_naive


def _cluster():
    return ClusterSpec.of(
        (NodeSpec("a", "V100", 2, 32, 128), 1),
        (NodeSpec("b", "T4", 2, 32, 128), 1),
    )


def _job(job_id, submit, runtime, gpu_type, n_gpus=1):
    return JobRequest(
        job_id=job_id, user="u", submit_time=submit, runtime=runtime,
        n_gpus=n_gpus, n_cpus=1, mem_gb=1.0, gpu_type=gpu_type,
    )


class TestUtilization:
    def test_single_job_full_pool(self):
        cluster = _cluster()
        placements, _ = FCFSScheduler(build_nodes(cluster)).run(
            [_job(0, 0.0, 100.0, "V100", n_gpus=2)]
        )
        util = utilization_by_type(placements, cluster)
        assert util["V100"].utilization == pytest.approx(1.0)
        assert util["T4"].utilization == 0.0
        assert util["V100"].gpu_seconds_used == pytest.approx(200.0)

    def test_mixed_pools(self):
        cluster = _cluster()
        placements, _ = FCFSScheduler(build_nodes(cluster)).run(
            [
                _job(0, 0.0, 100.0, "V100", n_gpus=1),
                _job(1, 0.0, 50.0, "T4", n_gpus=2),
            ]
        )
        util = utilization_by_type(placements, cluster, interval_s=100.0)
        assert util["V100"].utilization == pytest.approx(0.5)
        assert util["T4"].utilization == pytest.approx(0.5)

    def test_empty_placements(self):
        util = utilization_by_type([], _cluster())
        assert all(u.utilization == 0.0 for u in util.values())

    def test_calibrated_generation_hits_target(self):
        """Closing the loop: the PAI generator's congestion target is
        approximately achieved on the binding pools."""
        from repro.cluster import ClusterSimulator, TelemetryConfig
        from repro.traces.synthetic.pai import (
            PAIConfig, _pai_archetypes, _pai_cluster,
        )
        from repro.traces.synthetic.base import (
            ArchetypeMixer, calibrated_duration, poisson_arrivals,
        )
        from repro.cluster import UserPopulation

        config = PAIConfig(n_jobs=4000)
        users = UserPopulation(config.n_users, seed=config.seed)
        jobs = ArchetypeMixer(_pai_archetypes(), users, seed=config.seed).sample_jobs(
            config.n_jobs
        )
        cluster = _pai_cluster()
        for job in jobs:
            if job.gpu_type is None:
                job.gpu_type = "MISC"
            job.n_cpus = min(job.n_cpus, 90)
            job.mem_gb = min(job.mem_gb, 256.0)
        binding = sum(
            n for t, n in cluster.gpus_by_type().items() if t in ("V100", "P100")
        )
        duration = calibrated_duration(jobs, binding, config.congestion)
        poisson_arrivals(np.random.default_rng(1), jobs, duration)
        sim = ClusterSimulator(cluster, TelemetryConfig(max_samples_per_job=8), seed=2)
        result = sim.run(jobs)

        from repro.cluster.scheduler import Placement  # placements via rerun
        scheduler_placements, _ = FCFSScheduler(build_nodes(cluster)).run(jobs)
        util = utilization_by_type(scheduler_placements, cluster, interval_s=duration)
        combined = (
            util["V100"].gpu_seconds_used + util["P100"].gpu_seconds_used
        ) / (binding * duration)
        # calibration counts all demand against the binding pools, so the
        # achieved value sits below the target but in its vicinity
        assert 0.35 <= combined <= 1.0


class TestTimeline:
    def test_difference_array_counts(self):
        cluster = _cluster()
        placements, _ = FCFSScheduler(build_nodes(cluster)).run(
            [
                _job(0, 0.0, 100.0, "V100", n_gpus=2),
                _job(1, 0.0, 50.0, "T4", n_gpus=1),
            ]
        )
        times, busy = busy_gpu_timeline(placements, resolution_s=25.0)
        assert busy[0] == 3.0  # both jobs active at t=0
        assert busy[-1] in (0.0, 2.0)  # tail of the longer job
        assert busy.max() == 3.0

    def test_empty(self):
        times, busy = busy_gpu_timeline([])
        assert busy.tolist() == [0.0]

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            busy_gpu_timeline([], resolution_s=0.0)


class TestNaiveApriori:
    def test_matches_fpgrowth(self, toy_db):
        for min_support in (0.2, 0.4, 0.8):
            assert apriori_naive(toy_db, min_support) == fpgrowth(
                toy_db, min_support
            )

    def test_max_len(self, toy_db):
        result = apriori_naive(toy_db, 0.2, max_len=2)
        assert result == fpgrowth(toy_db, 0.2, 2)

    def test_empty(self):
        assert apriori_naive(TransactionDatabase.from_itemsets([]), 0.5) == {}

    def test_invalid_args(self, toy_db):
        with pytest.raises(ValueError):
            apriori_naive(toy_db, 2.0)
        with pytest.raises(ValueError):
            apriori_naive(toy_db, 0.5, 0)
