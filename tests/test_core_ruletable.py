"""Tests for the columnar RuleTable pipeline.

The contract under test: the vectorised generation and pruning kernels
are *bit-identical* to the retained legacy object paths — same rules,
same metric doubles, same deterministic order — on hand-built edge cases
and at trace scale, and the table threads through the engine,
persistence and serving layers without changing any observable result.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig
from repro.core.bitmap import kernel_delta, kernel_snapshot
from repro.core.fpgrowth import fpgrowth
from repro.core.items import Item, ItemVocabulary, as_item
from repro.core.itemsets import FrequentItemsets
from repro.core.mining import mine_keyword_rules
from repro.core.pruning import (
    CondenseConfig,
    PruningConfig,
    prune_rule_table,
    prune_rules,
    prune_rules_legacy,
)
from repro.core.rules import (
    SKIPPED_KERNEL,
    AssociationRule,
    generate_rule_table,
    generate_rules,
    generate_rules_legacy,
)
from repro.core.ruletable import RuleTable
from repro.engine import MiningEngine
from repro.engine.stats import EngineStats
from repro.serve import RuleBook, RuleIndex
from repro.traces import PHILLY_KEYWORDS, SUPERCLOUD_KEYWORDS

PAPER = MiningConfig()  # support=0.05, max_len=5, min_lift=1.5


def itemsets_of(db, min_support=0.05, max_len=5) -> FrequentItemsets:
    counts = fpgrowth(db, min_support, max_len)
    return FrequentItemsets(dict(counts), db.vocabulary, len(db), min_support, max_len)


def assert_tables_equal_rules(table: RuleTable, rules: list[AssociationRule]):
    """Bit-exact: same rules, same metric doubles, same order."""
    materialised = table.to_rules()
    assert len(materialised) == len(rules)
    for got, want in zip(materialised, rules):
        assert got == want  # dataclass equality covers ids, items, metrics


class TestKernelVsLegacy:
    def test_toy_database_bit_identical(self, toy_db):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        table = generate_rule_table(its, min_lift=1.0)
        legacy = generate_rules_legacy(its, min_lift=1.0)
        assert len(table) > 0
        assert_tables_equal_rules(table, legacy)
        # the wrapper is the kernel's materialisation
        assert generate_rules(its, min_lift=1.0) == legacy

    def test_philly_full_table_bit_identical(self, philly_db):
        its = itemsets_of(philly_db)
        table = generate_rule_table(its, min_lift=PAPER.min_lift)
        legacy = generate_rules_legacy(its, min_lift=PAPER.min_lift)
        assert len(table) > 100
        assert_tables_equal_rules(table, legacy)

    def test_supercloud_full_table_bit_identical(self, supercloud_db):
        its = itemsets_of(supercloud_db)
        table = generate_rule_table(its, min_lift=PAPER.min_lift)
        legacy = generate_rules_legacy(its, min_lift=PAPER.min_lift)
        assert len(table) > 1000
        assert_tables_equal_rules(table, legacy)

    def test_pai_keyword_restricted_bit_identical(self, pai_db):
        kw_id = pai_db.vocabulary.get_id(as_item("SM Util = 0%"))
        assert kw_id is not None
        its = itemsets_of(pai_db)
        table = generate_rule_table(
            its, min_lift=PAPER.min_lift, keyword_ids=(kw_id,)
        )
        legacy = generate_rules_legacy(
            its, min_lift=PAPER.min_lift, keyword_ids=(kw_id,)
        )
        assert len(table) > 100
        assert_tables_equal_rules(table, legacy)

    def test_min_confidence_filter_agrees(self, toy_db):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        for min_conf in (0.5, 0.75):
            table = generate_rule_table(its, min_lift=0.0, min_confidence=min_conf)
            legacy = generate_rules_legacy(its, min_lift=0.0, min_confidence=min_conf)
            assert_tables_equal_rules(table, legacy)
            assert all(r.confidence >= min_conf for r in table)

    def test_min_confidence_one_keeps_exact_implications_only(self, toy_db):
        # boundary: conf == 1.0 must survive a min_confidence of exactly 1.0
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        table = generate_rule_table(its, min_lift=0.0, min_confidence=1.0)
        legacy = generate_rules_legacy(its, min_lift=0.0, min_confidence=1.0)
        assert_tables_equal_rules(table, legacy)
        assert all(r.confidence == 1.0 for r in table)
        assert all(math.isinf(r.conviction) for r in table)
        assert len(table) > 0  # the toy basket does contain exact implications


class TestPruneEquality:
    def test_toy_three_paths_agree(self, toy_db):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        table = generate_rule_table(its, min_lift=1.0)
        kw = as_item("beer")
        kept_t, report_t = prune_rule_table(table, kw)
        kept_o, report_o = prune_rules(table.to_rules(), kw)
        kept_l, report_l = prune_rules_legacy(table.to_rules(), kw)
        assert kept_t.to_rules() == kept_o == kept_l
        assert (
            report_t.pruned_by_condition
            == report_o.pruned_by_condition
            == report_l.pruned_by_condition
        )
        assert report_t.n_input == report_l.n_input
        assert report_t.n_kept == report_l.n_kept

    @pytest.mark.parametrize(
        "db_fixture, keywords",
        [
            ("philly_db", PHILLY_KEYWORDS),
            ("supercloud_db", SUPERCLOUD_KEYWORDS),
        ],
    )
    def test_trace_pruning_bit_identical(self, request, db_fixture, keywords):
        db = request.getfixturevalue(db_fixture)
        its = itemsets_of(db)
        n_checked = 0
        for kw_text in keywords.values():
            kw = as_item(kw_text)
            kw_id = db.vocabulary.get_id(kw)
            if kw_id is None:
                continue
            table = generate_rule_table(
                its, min_lift=PAPER.min_lift, keyword_ids=(kw_id,)
            )
            kept_t, report_t = prune_rule_table(table, kw)
            kept_l, report_l = prune_rules_legacy(table.to_rules(), kw)
            assert kept_t.to_rules() == kept_l
            assert report_t.pruned_by_condition == report_l.pruned_by_condition
            n_checked += 1
        assert n_checked >= 2  # the paper keywords must actually exist


class TestEdgeCases:
    def test_empty_itemset_table(self):
        vocab = ItemVocabulary([Item("f", "a"), Item("f", "b")])
        its = FrequentItemsets({}, vocab, 10, 0.05, 5)
        table = generate_rule_table(its)
        assert len(table) == 0
        assert table.to_rules() == []
        assert generate_rules_legacy(its) == []
        # pruning an empty table is a no-op, not an error
        kept, report = prune_rule_table(table, "f = a")
        assert len(kept) == 0 and report.n_input == 0

    def test_single_item_itemsets_yield_no_rules(self):
        vocab = ItemVocabulary([Item("f", "a"), Item("f", "b")])
        its = FrequentItemsets(
            {frozenset({0}): 8, frozenset({1}): 6}, vocab, 10, 0.05, 5
        )
        table = generate_rule_table(its)
        assert len(table) == 0
        assert generate_rules_legacy(its) == []

    def test_absent_keyword_prunes_to_empty(self, toy_db):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        table = generate_rule_table(its, min_lift=1.0)
        kept, report = prune_rule_table(table, "Never = Seen")
        assert len(kept) == 0
        assert report.n_input == 0 and report.n_kept == 0

    def test_son_incomplete_table_counts_skips(self):
        # SON-style partial tables can hold a superset without a subset;
        # every candidate split losing a support lookup must be counted,
        # not silently dropped (the old behaviour)
        vocab = ItemVocabulary([Item("f", "a"), Item("f", "b")])
        counts = {frozenset({0, 1}): 5, frozenset({0}): 8}  # {1} missing
        its = FrequentItemsets(counts, vocab, 10, 0.05, 5)
        before = kernel_snapshot()
        table = generate_rule_table(its, min_lift=0.0)
        delta = dict(
            (name, calls) for name, _s, calls in kernel_delta(before, kernel_snapshot())
        )
        assert len(table) == 0
        assert table.n_skipped_lookups == 2  # both splits of {a, b} dropped
        assert delta.get(SKIPPED_KERNEL) == 2

        before = kernel_snapshot()
        assert generate_rules_legacy(its, min_lift=0.0) == []
        delta = dict(
            (name, calls) for name, _s, calls in kernel_delta(before, kernel_snapshot())
        )
        assert delta.get(SKIPPED_KERNEL) == 2

    def test_wide_id_space_uses_dict_fallback(self):
        # bits-per-id × max itemset length > 64 forces the dict-probe
        # enumeration; answers must not depend on the lookup strategy
        n_items = 300  # 9 bits per id
        vocab = ItemVocabulary(Item("f", str(i)) for i in range(n_items))
        base = (0, 37, 99, 150, 201, 255, 280, 299)  # length 8 → 72 bits
        rng = random.Random(5)
        counts: dict[frozenset[int], int] = {frozenset(base): 5}
        # every subset present, with supports monotone in size
        for size in range(1, len(base)):
            for _ in range(40):
                subset = frozenset(rng.sample(base, size))
                counts.setdefault(subset, 5 + (len(base) - size) * 7)
        for item in base:
            counts[frozenset({item})] = 60
        its = FrequentItemsets(counts, vocab, 100, 0.01, len(base))
        table = generate_rule_table(its, min_lift=0.0)
        legacy = generate_rules_legacy(its, min_lift=0.0)
        assert_tables_equal_rules(table, legacy)
        # incomplete subsets above were possible: skips must agree too
        assert table.n_skipped_lookups >= 0


class TestRoundTripProperty:
    @staticmethod
    def _random_rules(rng: random.Random, n_rules: int, n_items: int = 12):
        """(vocabulary, rules) with rule ids minted by that vocabulary."""
        vocab = ItemVocabulary(Item(f"F{k % 3}", f"v{k}") for k in range(n_items))
        rules = []
        for _ in range(n_rules):
            size = rng.randint(2, 5)
            ids = rng.sample(range(n_items), size)
            cut = rng.randint(1, size - 1)
            ant, cons = frozenset(ids[:cut]), frozenset(ids[cut:])
            rules.append(
                AssociationRule(
                    antecedent=vocab.items_of(ant),
                    consequent=vocab.items_of(cons),
                    antecedent_ids=ant,
                    consequent_ids=cons,
                    support=rng.random(),
                    confidence=rng.random(),
                    lift=rng.random() * 10,
                    leverage=rng.random() - 0.5,
                    conviction=math.inf if rng.random() < 0.2 else rng.random() * 5,
                )
            )
        return vocab, rules

    @given(seed=st.integers(0, 2**31), n_rules=st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_from_rules_to_rules_round_trip(self, seed, n_rules):
        vocab, rules = self._random_rules(random.Random(seed), n_rules)
        table = RuleTable.from_rules(rules, vocabulary=vocab)
        assert table.to_rules() == rules  # order and every field preserved

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_select_concat_consistency(self, seed):
        rng = random.Random(seed)
        vocab, rules = self._random_rules(rng, 20)
        table = RuleTable.from_rules(rules, vocabulary=vocab)
        cut = rng.randint(0, len(rules))
        left = table.select(np.arange(cut))
        right = table.select(np.arange(cut, len(rules)))
        rejoined = RuleTable.concat([left, right])
        assert rejoined.to_rules() == rules
        # canonical sort is idempotent and a permutation
        once = table.sort_canonical()
        assert sorted(once.rule_keys()) == sorted(table.rule_keys())
        assert once.sort_canonical().to_rules() == once.to_rules()


class TestCondensation:
    def test_condense_config_validation(self):
        with pytest.raises(ValueError):
            CondenseConfig(min_kulczynski=-0.1)
        with pytest.raises(ValueError):
            CondenseConfig(max_imbalance=1.5)
        with pytest.raises(ValueError):
            CondenseConfig(min_jaccard=0.0)

    def test_condense_off_by_default(self, pai_db):
        kw = as_item("SM Util = 0%")
        kw_id = pai_db.vocabulary.get_id(kw)
        its = itemsets_of(pai_db)
        table = generate_rule_table(
            its, min_lift=PAPER.min_lift, keyword_ids=(kw_id,)
        )
        kept_plain, report_plain = prune_rule_table(table, kw)
        kept_default, report_default = prune_rule_table(table, kw, condense=False)
        assert kept_plain.to_rules() == kept_default.to_rules()
        assert 5 not in report_plain.pruned_by_condition
        assert 6 not in report_plain.pruned_by_condition

    def test_condensed_rulebook_shrinks_serving_index(self, pai_db):
        kw = as_item("SM Util = 0%")
        kw_id = pai_db.vocabulary.get_id(kw)
        its = itemsets_of(pai_db)
        table = generate_rule_table(
            its, min_lift=PAPER.min_lift, keyword_ids=(kw_id,)
        )
        kept, _ = prune_rule_table(table, kw)
        aggressive = CondenseConfig(
            min_kulczynski=0.4, max_imbalance=0.9, min_jaccard=0.3
        )
        condensed, report = prune_rule_table(
            table, kw, condense=True, condense_config=aggressive
        )
        assert len(condensed) < len(kept)
        assert (
            report.pruned_by_condition.get(5, 0)
            + report.pruned_by_condition.get(6, 0)
            == len(kept) - len(condensed)
        )
        # condensation only ever removes rules, never rewrites them
        assert set(condensed.rule_keys()) <= set(kept.rule_keys())

        index_full = RuleIndex.from_rulebook(RuleBook(table=kept))
        index_condensed = RuleIndex.from_rulebook(RuleBook(table=condensed))
        assert len(index_condensed) < len(index_full)
        assert index_condensed.n_postings < index_full.n_postings

    def test_object_wrapper_condense_agrees(self, toy_db):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        table = generate_rule_table(its, min_lift=1.0)
        cfg = CondenseConfig(min_kulczynski=0.4, max_imbalance=0.9, min_jaccard=0.3)
        kept_t, report_t = prune_rule_table(
            table, "beer", condense=True, condense_config=cfg
        )
        kept_o, report_o = prune_rules(
            table.to_rules(), "beer", condense=True, condense_config=cfg
        )
        assert kept_t.to_rules() == kept_o
        assert report_t.pruned_by_condition == report_o.pruned_by_condition


class TestEngineThreading:
    def test_analyze_populates_rule_table_and_kernel_split(self, supercloud_table):
        from repro.traces import supercloud_preprocessor

        engine = MiningEngine(backend="serial", cache=False)
        result = engine.analyze(
            supercloud_preprocessor(),
            supercloud_table,
            {"underutil": "SM Util = 0%", "failure": "Failed"},
        )
        table = result.rule_table
        assert isinstance(table, RuleTable)
        union_keys = set()
        for ruleset in result.keyword_results.values():
            assert ruleset.table is not None
            assert len(ruleset.table) == len(ruleset)
            union_keys |= set(ruleset.table.rule_keys())
        # book-keeping: the result table is the dedup union of kept tables
        assert set(table.rule_keys()) == union_keys
        assert len(table) == len(union_keys)

        stats = result.stats
        assert stats.rules_skipped == 0
        assert stats.as_dict()["rules_skipped"] == 0
        generate_kernels = {k[0] for k in stats.stage("generate-rules").kernels}
        prune_kernels = {k[0] for k in stats.stage("prune").kernels}
        assert "rules-enumerate" in generate_kernels
        assert "rules-score" in generate_kernels
        assert "prune-masks" in prune_kernels
        assert not any(name.startswith("prune-") for name in generate_kernels)
        assert all(name.startswith("prune-") for name in prune_kernels)

    def test_stats_render_warns_on_skips(self):
        stats = EngineStats(backend="serial", rules_skipped=3)
        assert "3 candidate split(s) skipped" in stats.render()
        clean = EngineStats(backend="serial")
        assert "skipped" not in clean.render()

    def test_mine_keyword_rules_carries_table(self, toy_db):
        ruleset = mine_keyword_rules(
            toy_db, "beer", MiningConfig(min_support=0.2, max_len=4, min_lift=1.0)
        )
        assert ruleset.table is not None
        assert len(ruleset.table) == len(ruleset)
        assert set(ruleset.table.to_rules()) == set(ruleset.all_rules)


class TestRuleBookColumnar:
    def test_table_and_object_books_are_byte_identical(self, toy_db, tmp_path):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        table = generate_rule_table(its, min_lift=1.0)
        book_from_table = RuleBook(table=table, trace="toy")
        book_from_objects = RuleBook(rules=tuple(table.to_rules()), trace="toy")
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        book_from_table.save(a)
        book_from_objects.save(b)
        assert a.read_bytes() == b.read_bytes()
        # and load → save is byte-stable on top
        c = tmp_path / "c.jsonl"
        RuleBook.load(a).save(c)
        assert c.read_bytes() == a.read_bytes()

    def test_book_table_is_dense_and_canonical(self, toy_db):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        book = RuleBook(table=generate_rule_table(its, min_lift=1.0))
        table = book.table
        items = list(book.vocabulary())
        assert items == sorted(items)  # canonical id-space: sorted, dense
        used = set(table.ant_ids.tolist()) | set(table.cons_ids.tolist())
        assert used == set(range(len(items)))
        order = table.canonical_order()
        assert np.array_equal(order, np.arange(len(table)))

    def test_index_from_table_matches_index_from_objects(self, toy_db):
        its = itemsets_of(toy_db, min_support=0.2, max_len=4)
        book = RuleBook(table=generate_rule_table(its, min_lift=1.0))
        via_table = RuleIndex.from_rulebook(book)
        via_objects = RuleIndex(book.rules)
        assert via_table._wire == via_objects._wire
        transaction = ["bread", "milk", "diapers", "beer"]
        assert [m.rule_id for m in via_table.match(transaction)] == [
            m.rule_id for m in via_objects.match(transaction)
        ]
        assert via_table.match_wire(transaction) == via_objects.match_wire(transaction)
