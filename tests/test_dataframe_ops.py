"""Unit tests for group-by, joins, value counts and row concat."""

import pytest

from repro.dataframe import (
    ColumnTable,
    concat_rows,
    group_aggregate,
    inner_join,
    left_join,
    value_counts,
)


@pytest.fixture()
def jobs():
    return ColumnTable.from_dict(
        {
            "user": ["a", "b", "a", "c", "b", "a"],
            "runtime": [10.0, 20.0, 30.0, 5.0, None, 14.0],
            "gpus": [1, 2, 1, 4, 2, 1],
        }
    )


class TestGroupAggregate:
    def test_mean_and_count(self, jobs):
        out = group_aggregate(
            jobs, "user", {"mean_rt": ("runtime", "mean"), "n": ("runtime", "count")}
        )
        d = {u: (m, n) for u, m, n in zip(
            out["user"].to_list(), out["mean_rt"].to_list(), out["n"].to_list()
        )}
        assert d["a"] == (18.0, 3.0)
        assert d["b"] == (20.0, 1.0)  # NaN runtime not counted
        assert d["c"] == (5.0, 1.0)

    def test_groups_in_first_appearance_order(self, jobs):
        out = group_aggregate(jobs, "user", {"s": ("gpus", "sum")})
        assert out["user"].to_list() == ["a", "b", "c"]

    def test_sum_min_max(self, jobs):
        out = group_aggregate(
            jobs,
            "user",
            {"s": ("gpus", "sum"), "mn": ("gpus", "min"), "mx": ("gpus", "max")},
        )
        assert out["s"].to_list() == [3.0, 4.0, 4.0]
        assert out["mx"].to_list() == [1.0, 2.0, 4.0]

    def test_unknown_aggregation_rejected(self, jobs):
        with pytest.raises(ValueError, match="unknown aggregation"):
            group_aggregate(jobs, "user", {"x": ("gpus", "median!!")})

    def test_group_by_numeric_key(self, jobs):
        out = group_aggregate(jobs, "gpus", {"n": ("runtime", "count")})
        assert set(out["gpus"].to_list()) == {1.0, 2.0, 4.0}

    def test_na_keys_dropped(self):
        t = ColumnTable.from_dict({"k": ["x", None, "x"], "v": [1.0, 2.0, 3.0]})
        out = group_aggregate(t, "k", {"s": ("v", "sum")})
        assert out["k"].to_list() == ["x"]
        assert out["s"].to_list() == [4.0]


class TestValueCounts:
    def test_most_frequent_first(self, jobs):
        assert value_counts(jobs, "user") == [("a", 3), ("b", 2), ("c", 1)]

    def test_empty_table(self):
        t = ColumnTable.from_dict({"k": []})
        assert value_counts(t, "k") == []


class TestJoins:
    def test_inner_join_basic(self):
        left = ColumnTable.from_dict({"k": ["a", "b", "c"], "x": [1, 2, 3]})
        right = ColumnTable.from_dict({"k": ["b", "c", "d"], "y": [20, 30, 40]})
        out = inner_join(left, right, "k")
        assert out["k"].to_list() == ["b", "c"]
        assert out["y"].to_list() == [20.0, 30.0]

    def test_inner_join_duplicates_multiply(self):
        left = ColumnTable.from_dict({"k": ["a", "a"], "x": [1, 2]})
        right = ColumnTable.from_dict({"k": ["a", "a"], "y": [10, 20]})
        assert len(inner_join(left, right, "k")) == 4

    def test_left_join_fills_na(self):
        left = ColumnTable.from_dict({"k": ["a", "b"], "x": [1, 2]})
        right = ColumnTable.from_dict({"k": ["b"], "y": [9], "tag": ["hit"]})
        out = left_join(left, right, "k")
        assert out["y"].to_list() == [None, 9.0]
        assert out["tag"].to_list() == [None, "hit"]

    def test_left_join_duplicate_right_keys_rejected(self):
        left = ColumnTable.from_dict({"k": ["a"], "x": [1]})
        right = ColumnTable.from_dict({"k": ["a", "a"], "y": [1, 2]})
        with pytest.raises(ValueError, match="unique keys"):
            left_join(left, right, "k")

    def test_join_name_collision_gets_suffix(self):
        left = ColumnTable.from_dict({"k": ["a"], "v": [1]})
        right = ColumnTable.from_dict({"k": ["a"], "v": [2]})
        out = inner_join(left, right, "k")
        assert "v_right" in out.column_names

    def test_numeric_key_join(self):
        left = ColumnTable.from_dict({"k": [1, 2], "x": ["p", "q"]})
        right = ColumnTable.from_dict({"k": [2], "y": ["hit"]})
        out = inner_join(left, right, "k")
        assert out["x"].to_list() == ["q"]


class TestConcatRows:
    def test_stacks_tables(self):
        a = ColumnTable.from_dict({"x": [1], "y": ["u"]})
        b = ColumnTable.from_dict({"x": [2], "y": ["v"]})
        out = concat_rows([a, b])
        assert out["x"].to_list() == [1.0, 2.0]
        assert out["y"].to_list() == ["u", "v"]

    def test_schema_mismatch_rejected(self):
        a = ColumnTable.from_dict({"x": [1]})
        b = ColumnTable.from_dict({"y": [1]})
        with pytest.raises(ValueError):
            concat_rows([a, b])

    def test_empty_list(self):
        assert len(concat_rows([])) == 0


class TestDescribe:
    def test_numeric_summary(self, jobs):
        from repro.dataframe import describe

        out = describe(jobs)
        by_col = {r["column"]: r for r in out.iter_rows()}
        rt = by_col["runtime"]
        assert rt["kind"] == "num"
        assert rt["n"] == 6.0
        assert rt["n_missing"] == 1.0
        assert rt["min"] == 5.0 and rt["max"] == 30.0

    def test_categorical_summary(self, jobs):
        from repro.dataframe import describe

        out = describe(jobs)
        by_col = {r["column"]: r for r in out.iter_rows()}
        user = by_col["user"]
        assert user["cardinality"] == 3.0
        assert user["mode"] == "a"

    def test_boolean_summary(self):
        from repro.dataframe import ColumnTable, describe

        t = ColumnTable.from_dict({"flag": [True, True, False, False]})
        out = describe(t)
        assert out.row(0)["mean"] == 0.5

    def test_empty_table(self):
        from repro.dataframe import ColumnTable, describe

        assert len(describe(ColumnTable())) == 0
