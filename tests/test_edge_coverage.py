"""Edge-case coverage for paths the main suites exercise only indirectly."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    FCFSScheduler,
    JobRequest,
    NodeSpec,
    build_nodes,
)
from repro.cluster.accounting import busy_gpu_timeline
from repro.core import MiningConfig
from repro.core.fpgrowth import FPTree, fpgrowth
from repro.core import TransactionDatabase
from repro.dataframe import ColumnTable
from repro.preprocess import FeatureSpec, TransactionEncoder
from repro.traces import (
    PAIConfig,
    generate_pai,
    load_trace,
    save_trace,
    generate_supercloud,
    SuperCloudConfig,
)
from repro.analysis import misc_study


class TestFPTreeInternals:
    def test_single_path_detection(self):
        tree = FPTree()
        tree.insert([0, 1, 2], 3)
        tree.insert([0, 1], 2)
        path = tree.single_path()
        assert path == [(0, 5), (1, 5), (2, 3)]

    def test_branching_tree_is_not_single_path(self):
        tree = FPTree()
        tree.insert([0, 1], 1)
        tree.insert([0, 2], 1)
        assert tree.single_path() is None

    def test_prefix_paths(self):
        tree = FPTree()
        tree.insert([0, 1, 2], 2)
        tree.insert([0, 2], 1)
        base = tree.prefix_paths(2)
        assert sorted(base) == [([0], 1), ([0, 1], 2)]

    def test_empty_tree(self):
        tree = FPTree()
        assert tree.is_empty()
        assert tree.single_path() == []
        assert tree.prefix_paths(0) == []

    def test_single_path_shortcut_matches_general_case(self):
        # a database whose conditional trees are chains exercises the
        # shortcut; compare against a permuted copy that breaks chains
        db = TransactionDatabase.from_itemsets(
            [["a", "b", "c", "d"]] * 5 + [["a", "b", "c"]] * 3 + [["a"]] * 2
        )
        result = fpgrowth(db, 0.2)
        # brute-force expectations on the chain structure
        assert result[frozenset({0, 1, 2, 3})] == 5
        assert result[frozenset({0, 1, 2})] == 8
        assert result[frozenset({0})] == 10


class TestSchedulerResourceDimensions:
    def _node(self, n_cpus=8, mem=32.0):
        return build_nodes(
            ClusterSpec.of((NodeSpec("n", "V100", 4, n_cpus, mem), 1))
        )

    def test_cpu_bound_placement(self):
        jobs = [
            JobRequest(job_id=0, user="u", submit_time=0.0, runtime=10.0,
                       n_gpus=1, n_cpus=8, mem_gb=1.0, gpu_type="V100"),
            JobRequest(job_id=1, user="u", submit_time=0.0, runtime=10.0,
                       n_gpus=1, n_cpus=1, mem_gb=1.0, gpu_type="V100"),
        ]
        placements, _ = FCFSScheduler(self._node(n_cpus=8)).run(jobs)
        # GPUs are free but CPUs are not: second job waits
        assert placements[1].start_time == 10.0

    def test_memory_bound_placement(self):
        jobs = [
            JobRequest(job_id=0, user="u", submit_time=0.0, runtime=10.0,
                       n_gpus=1, n_cpus=1, mem_gb=32.0, gpu_type="V100"),
            JobRequest(job_id=1, user="u", submit_time=0.0, runtime=10.0,
                       n_gpus=1, n_cpus=1, mem_gb=1.0, gpu_type="V100"),
        ]
        placements, _ = FCFSScheduler(self._node(mem=32.0)).run(jobs)
        assert placements[1].start_time == 10.0


class TestTimelineGangJobs:
    def test_gang_counts_all_gpus(self):
        nodes = build_nodes(
            ClusterSpec.of((NodeSpec("n", "V100", 2, 32, 128), 3))
        )
        jobs = [
            JobRequest(job_id=0, user="u", submit_time=0.0, runtime=100.0,
                       n_gpus=6, n_cpus=1, mem_gb=1.0, gpu_type="V100")
        ]
        placements, _ = FCFSScheduler(nodes).run(jobs)
        _, busy = busy_gpu_timeline(placements, resolution_s=50.0)
        assert busy.max() == 6.0


class TestLoaderAllTraces:
    @pytest.mark.parametrize("trace", ["pai", "supercloud"])
    def test_roundtrip(self, tmp_path, trace):
        from repro.traces import get_trace

        definition = get_trace(trace)
        table = definition.generate_scaled(n_jobs=300, use_scheduler=False)
        path = tmp_path / f"{trace}.csv"
        save_trace(table, path)
        loaded = load_trace(path, trace=trace)
        assert len(loaded) == 300
        # the trace's own preprocessor accepts the loaded table
        result = definition.make_preprocessor().run(loaded)
        assert len(result.database) == 300


class TestEncoderLabelKindEdges:
    def test_label_with_missing_values(self):
        table = ColumnTable.from_dict({"tier": ["Freq User", None, "Rare User"]})
        db = TransactionEncoder(
            [FeatureSpec("tier", kind="label")]
        ).fit_transform(table)
        assert len(db.transaction(1)) == 0  # NA contributes no item

    def test_label_kind_requires_categorical(self):
        table = ColumnTable.from_dict({"x": [1.0, 2.0]})
        with pytest.raises(TypeError):
            TransactionEncoder([FeatureSpec("x", kind="label")]).fit_transform(table)


class TestPaiMiscStudySmoke:
    def test_pai_misc_tables_exist(self):
        table = generate_pai(PAIConfig(n_jobs=5000))
        tables = misc_study("pai", table=table, config=MiningConfig())
        assert {"t4_queue", "non_t4_queue", "recsys", "nlp"} <= set(tables)
        # the RecSys analysis found rules on the labelled subset
        assert tables["recsys"].rows


class TestTinyScaleGeneration:
    @pytest.mark.parametrize("n_jobs", [1, 5])
    def test_generators_survive_tiny_scales(self, n_jobs):
        table = generate_supercloud(
            SuperCloudConfig(n_jobs=n_jobs, use_scheduler=False)
        )
        assert len(table) == n_jobs
        # preprocessing also survives degenerate quantiles
        from repro.traces import supercloud_preprocessor

        result = supercloud_preprocessor().run(table)
        assert len(result.database) == n_jobs
